//! Mega-scenario generator: deep protocol stacks as [`ModuleLib`]
//! values with balanced compose plans.
//!
//! Each scenario registers a handful of module *templates* (a
//! translator cell, a pipeline stage cell, an arbiter, a client) and
//! stamps out hundreds of instances by injective renaming — exactly
//! the workload the hash-consed derivation store exists for. The
//! scenario also carries a **balanced binary compose plan**: a
//! bottom-up sequence of `compose(left, right, internal)` steps whose
//! `internal` label sets hide every channel at the *smallest* subtree
//! that contains all of its users. Balance is what makes incremental
//! recompilation fast: editing one leaf of an `n`-leaf stack
//! invalidates only the `⌈log₂ n⌉` spine nodes above it, so a re-run
//! against a warm store recomputes `O(log n)` of the `n − 1` steps.
//!
//! Three topologies:
//!
//! * [`ModuleScenario::translator_chain`] — `n` protocol translators
//!   in series, neighbor `i` handing to `i+1` on channel `c{i+1}`;
//! * [`ModuleScenario::handshake_mesh`] — a `stages × lanes` pipeline
//!   where every stage's lanes rendezvous on a barrier label before
//!   passing tokens downstream (multi-way synchronization);
//! * [`ModuleScenario::arbiter_tree`] — `2^depth` clients fanned into
//!   a binary tree of request-merging arbiters.
//!
//! Every template is a **one-shot acyclic cell**: a single token flows
//! from a marked source place to a sink, and each interior place has
//! exactly one producer and one consumer. That shape is closed under
//! the Definition 4.10 contraction the compose plan applies level by
//! level — the splice's virtual duplicate replaces the transition it
//! duplicates (whose input place loses its only producer and is
//! reduced away), so no label ever ends up on two transitions of one
//! operand. Cyclic cells do not survive this: their duplicates stay
//! live alongside the originals, and re-synchronizing the pair at the
//! next level produces the self-loops the contraction rejects.
//!
//! A second shape constraint governs which *channels* the plans hide:
//! a hidden channel's merged transition must have a single non-sink
//! output, so the contraction spawns one successor duplicate and the
//! displaced original dies. Channels in these families connect a
//! producer transition whose other outputs are sinks to a consumer
//! whose input place has one reader, which preserves that invariant
//! level over level. Multi-output hides (the mesh barriers, a grant
//! path threaded back down through an arbiter) leave two live
//! transitions sharing a label, and re-synchronizing such a pair is
//! exactly the shape [`cpn_core`]'s contraction refuses — so the mesh
//! keeps its barriers visible (they still *synchronize* lanes
//! pairwise at every compose node) and the arbiter tree models the
//! request fan-in half of the protocol.

use cpn_core::{CoreError, ModuleLib};
use cpn_petri::{Bounded, Budget, NetId, PetriNet};
use std::collections::{BTreeMap, BTreeSet};

/// One node of the balanced compose plan: compose slot `left` with
/// slot `right`, hiding `internal`. Slots `0..leaves` are the leaf
/// instances; step `k` of the plan defines slot `leaves + k`.
#[derive(Clone, Debug)]
pub struct PlanStep {
    /// Left operand slot.
    pub left: usize,
    /// Right operand slot.
    pub right: usize,
    /// Labels whose users all lie inside this subtree, hidden here.
    pub internal: BTreeSet<String>,
}

/// A generated module stack: library, instantiated leaves, and the
/// balanced compose plan over them.
pub struct ModuleScenario {
    /// Scenario family and size, e.g. `translator_chain/256`.
    pub name: String,
    /// The module library (templates + the derivation store the plan
    /// runs against).
    pub lib: ModuleLib<String>,
    /// Instantiated leaf nets, in compose order.
    pub leaves: Vec<NetId>,
    /// Bottom-up balanced compose steps (`leaves.len() - 1` of them).
    pub plan: Vec<PlanStep>,
    /// Labels left visible at the top of the stack.
    pub externals: BTreeSet<String>,
}

impl ModuleScenario {
    /// Number of leaf instances.
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Height of the spine invalidated by a single-leaf edit: the
    /// number of plan steps whose subtree contains any given leaf.
    #[must_use]
    pub fn spine_len(&self, leaf: usize) -> usize {
        let n = self.leaves.len();
        let mut count = 0;
        // Recompute the same recursion ranges the plan was built from.
        fn walk(lo: usize, hi: usize, leaf: usize, count: &mut usize) {
            if hi - lo <= 1 {
                return;
            }
            let mid = lo + (hi - lo) / 2;
            *count += 1;
            if leaf < mid {
                walk(lo, mid, leaf, count);
            } else {
                walk(mid, hi, leaf, count);
            }
        }
        walk(0, n, leaf, &mut count);
        count
    }

    /// Runs the compose plan over the given leaf ids (normally
    /// `&self.leaves`, or a copy with edited entries) and returns the
    /// top-of-stack id. Steps that exhaust the budget return the
    /// partial immediately.
    ///
    /// # Errors
    ///
    /// Any error of the underlying algebra operators.
    pub fn run(&mut self, leaves: &[NetId], budget: &Budget) -> Result<Bounded<NetId>, CoreError> {
        assert_eq!(leaves.len(), self.leaves.len(), "leaf count mismatch");
        let mut slots: Vec<NetId> = leaves.to_vec();
        if self.plan.is_empty() {
            return Ok(Bounded::Complete(slots[0]));
        }
        let store = self.lib.store_mut();
        for step in &self.plan {
            match store.compose(slots[step.left], slots[step.right], &step.internal, budget)? {
                Bounded::Complete(id) => slots.push(id),
                exhausted @ Bounded::Exhausted { .. } => return Ok(exhausted),
            }
        }
        Ok(Bounded::Complete(*slots.last().expect("nonempty plan")))
    }

    /// A structurally edited variant of leaf `leaf` (one extra initial
    /// token on its first place): same interface labels, different
    /// `NetId` — the "one-line edit" of an incremental-recompile
    /// experiment. The edited net is interned in the scenario's store.
    pub fn edited_leaf(&mut self, leaf: usize) -> NetId {
        let store = self.lib.store_mut();
        let net = store
            .net(self.leaves[leaf])
            .expect("leaf id is interned in the scenario store");
        let mut edited: PetriNet<String> = (*net).clone();
        let p = edited.place_ids().next().expect("modules have places");
        let tokens = edited.initial_marking().tokens(p);
        edited.set_initial(p, tokens + 1);
        let (id, _) = store.intern(edited);
        assert_ne!(id, self.leaves[leaf], "edit must change the identity");
        id
    }

    /// `n` translators in series: instance `i` receives on `c{i}` and
    /// emits on `c{i+1}`; every interior channel is hidden at the
    /// smallest subtree containing both endpoints. Externals: `c0`
    /// (stack input) and `c{n}` (stack output).
    #[must_use]
    pub fn translator_chain(n: usize) -> ModuleScenario {
        assert!(n >= 1);
        let mut lib: ModuleLib<String> = ModuleLib::new();
        let mut cell: PetriNet<String> = PetriNet::new();
        let p = cell.add_place("start");
        let q = cell.add_place("mid");
        let r = cell.add_place("done");
        cell.add_transition([p], "in".to_owned(), [q])
            .expect("valid template");
        cell.add_transition([q], "out".to_owned(), [r])
            .expect("valid template");
        cell.set_initial(p, 1);
        lib.register(
            "translator",
            BTreeSet::from(["in".to_owned()]),
            BTreeSet::from(["out".to_owned()]),
            cell,
        )
        .expect("template registers");

        let mut leaves = Vec::with_capacity(n);
        let mut leaf_labels = Vec::with_capacity(n);
        for i in 0..n {
            let map: BTreeMap<String, String> = BTreeMap::from([
                ("in".to_owned(), format!("c{i}")),
                ("out".to_owned(), format!("c{}", i + 1)),
            ]);
            let inst = lib.instantiate("translator", &map).expect("chain instance");
            leaves.push(inst.id);
            leaf_labels.push(BTreeSet::from([format!("c{i}"), format!("c{}", i + 1)]));
        }
        let externals = BTreeSet::from(["c0".to_owned(), format!("c{n}")]);
        let plan = balanced_plan(&leaf_labels, &externals);
        ModuleScenario {
            name: format!("translator_chain/{n}"),
            lib,
            leaves,
            plan,
            externals,
        }
    }

    /// A `stages × lanes` pipelined handshake mesh. Cell `(s, k)`
    /// accepts `r{s}l{k}`, rendezvouses with every lane of its stage
    /// on the barrier `b{s}` (a `lanes`-way synchronization), then
    /// passes downstream on `r{s+1}l{k}`. The lane channels are hidden
    /// bottom-up; the barriers synchronize at every compose node but
    /// stay visible (hiding a multi-output rendezvous is outside the
    /// contraction-closed shape — see the module docs). Externals: the
    /// stage-0 inputs, the stage-`stages` outputs, and the barriers.
    #[must_use]
    pub fn handshake_mesh(stages: usize, lanes: usize) -> ModuleScenario {
        assert!(stages >= 1 && lanes >= 1);
        let mut lib: ModuleLib<String> = ModuleLib::new();
        let mut cell: PetriNet<String> = PetriNet::new();
        let p = cell.add_place("ready");
        let q = cell.add_place("synced");
        let w = cell.add_place("passing");
        let d = cell.add_place("done");
        cell.add_transition([p], "req".to_owned(), [q])
            .expect("valid template");
        cell.add_transition([q], "sync".to_owned(), [w])
            .expect("valid template");
        cell.add_transition([w], "pass".to_owned(), [d])
            .expect("valid template");
        cell.set_initial(p, 1);
        lib.register(
            "stagecell",
            BTreeSet::from(["req".to_owned()]),
            BTreeSet::from(["sync".to_owned(), "pass".to_owned()]),
            cell,
        )
        .expect("template registers");

        let mut leaves = Vec::new();
        let mut leaf_labels = Vec::new();
        let mut externals = BTreeSet::new();
        for s in 0..stages {
            for k in 0..lanes {
                let map: BTreeMap<String, String> = BTreeMap::from([
                    ("req".to_owned(), format!("r{s}l{k}")),
                    ("sync".to_owned(), format!("b{s}")),
                    ("pass".to_owned(), format!("r{}l{k}", s + 1)),
                ]);
                let inst = lib.instantiate("stagecell", &map).expect("mesh instance");
                leaves.push(inst.id);
                leaf_labels.push(BTreeSet::from([
                    format!("r{s}l{k}"),
                    format!("b{s}"),
                    format!("r{}l{k}", s + 1),
                ]));
            }
        }
        for k in 0..lanes {
            externals.insert(format!("r0l{k}"));
            externals.insert(format!("r{stages}l{k}"));
        }
        for s in 0..stages {
            externals.insert(format!("b{s}"));
        }
        let plan = balanced_plan(&leaf_labels, &externals);
        ModuleScenario {
            name: format!("handshake_mesh/{stages}x{lanes}"),
            lib,
            leaves,
            plan,
            externals,
        }
    }

    /// `2^depth` clients fanned into a binary tree of request-merging
    /// arbiters. Each arbiter collects its two children's requests in
    /// order and issues one upstream request `r{id}`; the root's
    /// upstream request stays external. (The grant fan-out half of the
    /// protocol is *not* hidden down the tree: a grant path threaded
    /// back out through an arbiter is a multi-output hide, which the
    /// contraction rejects — see the module docs.) Modules are laid
    /// out in DFS post-order so every tree channel is hidden at the
    /// smallest covering subtree.
    #[must_use]
    pub fn arbiter_tree(depth: usize) -> ModuleScenario {
        let mut lib: ModuleLib<String> = ModuleLib::new();

        let mut client: PetriNet<String> = PetriNet::new();
        let p = client.add_place("quiet");
        let d = client.add_place("done");
        client
            .add_transition([p], "req".to_owned(), [d])
            .expect("valid template");
        client.set_initial(p, 1);
        lib.register(
            "client",
            BTreeSet::new(),
            BTreeSet::from(["req".to_owned()]),
            client,
        )
        .expect("client registers");

        // One-shot serializer: left child's request, then the right
        // child's, then one upstream request into a sink. Each channel
        // transition's only non-chain output is a sink, so hiding the
        // tree channels stays contraction-closed level over level.
        let mut arb: PetriNet<String> = PetriNet::new();
        let idle = arb.add_place("idle");
        let got_l = arb.add_place("got_l");
        let got_r = arb.add_place("got_r");
        let sent = arb.add_place("sent");
        arb.add_transition([idle], "rl".to_owned(), [got_l])
            .expect("valid template");
        arb.add_transition([got_l], "rr".to_owned(), [got_r])
            .expect("valid template");
        arb.add_transition([got_r], "ru".to_owned(), [sent])
            .expect("valid template");
        arb.set_initial(idle, 1);
        lib.register(
            "arbiter",
            BTreeSet::from(["rl".to_owned(), "rr".to_owned()]),
            BTreeSet::from(["ru".to_owned()]),
            arb,
        )
        .expect("arbiter registers");

        // DFS post-order over a perfect binary tree; node ids number
        // the channels (`r{id}` between node and parent).
        let mut leaves = Vec::new();
        let mut leaf_labels = Vec::new();
        let mut next_id = 0usize;
        fn emit(
            lib: &mut ModuleLib<String>,
            leaves: &mut Vec<NetId>,
            leaf_labels: &mut Vec<BTreeSet<String>>,
            next_id: &mut usize,
            depth: usize,
        ) -> usize {
            // Children first (post-order), then this node.
            if depth == 0 {
                let id = *next_id;
                *next_id += 1;
                let map: BTreeMap<String, String> =
                    BTreeMap::from([("req".to_owned(), format!("r{id}"))]);
                let inst = lib.instantiate("client", &map).expect("client instance");
                leaves.push(inst.id);
                leaf_labels.push(BTreeSet::from([format!("r{id}")]));
                return id;
            }
            let l = emit(lib, leaves, leaf_labels, next_id, depth - 1);
            let r = emit(lib, leaves, leaf_labels, next_id, depth - 1);
            let id = *next_id;
            *next_id += 1;
            let map: BTreeMap<String, String> = BTreeMap::from([
                ("rl".to_owned(), format!("r{l}")),
                ("rr".to_owned(), format!("r{r}")),
                ("ru".to_owned(), format!("r{id}")),
            ]);
            let inst = lib.instantiate("arbiter", &map).expect("arbiter instance");
            leaves.push(inst.id);
            leaf_labels.push(BTreeSet::from([
                format!("r{l}"),
                format!("r{r}"),
                format!("r{id}"),
            ]));
            id
        }
        let root = emit(&mut lib, &mut leaves, &mut leaf_labels, &mut next_id, depth);
        let externals = BTreeSet::from([format!("r{root}")]);
        let plan = balanced_plan(&leaf_labels, &externals);
        ModuleScenario {
            name: format!("arbiter_tree/{depth}"),
            lib,
            leaves,
            plan,
            externals,
        }
    }
}

/// Builds the balanced plan: recursive halving over the leaf order,
/// hiding each label at the first (lowest) node whose range covers
/// every leaf that uses it.
fn balanced_plan(leaf_labels: &[BTreeSet<String>], externals: &BTreeSet<String>) -> Vec<PlanStep> {
    let n = leaf_labels.len();
    let mut span: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for (i, labels) in leaf_labels.iter().enumerate() {
        for l in labels {
            span.entry(l.as_str())
                .and_modify(|(lo, hi)| {
                    *lo = (*lo).min(i);
                    *hi = (*hi).max(i);
                })
                .or_insert((i, i));
        }
    }
    let mut plan = Vec::new();
    fn build(
        lo: usize,
        hi: usize,
        n: usize,
        span: &BTreeMap<&str, (usize, usize)>,
        externals: &BTreeSet<String>,
        plan: &mut Vec<PlanStep>,
    ) -> usize {
        if hi - lo == 1 {
            return lo;
        }
        let mid = lo + (hi - lo) / 2;
        let left = build(lo, mid, n, span, externals, plan);
        let right = build(mid, hi, n, span, externals, plan);
        let internal: BTreeSet<String> = span
            .iter()
            .filter(|(l, (first, last))| {
                *first >= lo && *last < hi          // all users inside
                    && *first < mid && *last >= mid // not hidden below
                    && !externals.contains(**l)
            })
            .map(|(l, _)| (*l).to_owned())
            .collect();
        plan.push(PlanStep {
            left,
            right,
            internal,
        });
        n + plan.len() - 1
    }
    if n > 1 {
        build(0, n, n, &span, externals, &mut plan);
    }
    plan
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn big() -> Budget {
        Budget::new(usize::MAX, usize::MAX)
    }

    #[test]
    fn chain_plan_is_balanced_and_completes() {
        let mut sc = ModuleScenario::translator_chain(8);
        assert_eq!(sc.plan.len(), 7);
        let leaves = sc.leaves.clone();
        let top = match sc.run(&leaves, &big()).unwrap() {
            Bounded::Complete(id) => id,
            other => panic!("chain compose exhausted: {other:?}"),
        };
        // Only the externals survive at the top of the stack.
        let net = sc.lib.store().net(top).unwrap();
        assert_eq!(net.alphabet(), sc.externals, "interior channels all hidden");
    }

    #[test]
    fn one_leaf_edit_recomputes_only_the_spine() {
        let n = 16;
        let mut sc = ModuleScenario::translator_chain(n);
        let leaves = sc.leaves.clone();
        sc.run(&leaves, &big()).unwrap();

        let edited = sc.edited_leaf(0);
        let mut patched = leaves.clone();
        patched[0] = edited;
        sc.lib.store_mut().reset_counters();
        sc.run(&patched, &big()).unwrap();

        let spine = sc.spine_len(0);
        assert_eq!(spine, 4, "16 leaves -> 4 spine levels");
        let stats = sc.lib.store().stats();
        // Untouched compose nodes replay from the memo (1 hit each);
        // each spine node recomputes compose + parallel + hide +
        // reduce (4 misses each).
        assert_eq!(stats.hits, (sc.plan.len() - spine) as u64);
        assert_eq!(stats.misses, 4 * spine as u64);
    }

    #[test]
    fn mesh_completes_with_visible_barriers() {
        let mut sc = ModuleScenario::handshake_mesh(3, 2);
        let leaves = sc.leaves.clone();
        let top = match sc.run(&leaves, &big()).unwrap() {
            Bounded::Complete(id) => id,
            other => panic!("mesh compose exhausted: {other:?}"),
        };
        let net = sc.lib.store().net(top).unwrap();
        // Lane channels hidden; stage-0/stage-N channels and the
        // barriers survive.
        assert_eq!(net.alphabet(), sc.externals);
        assert!(sc.externals.contains("b0"), "barriers stay external");
    }

    #[test]
    fn arbiter_tree_completes_with_external_root() {
        let mut sc = ModuleScenario::arbiter_tree(2);
        assert_eq!(sc.leaf_count(), 7, "4 clients + 3 arbiters");
        let leaves = sc.leaves.clone();
        let top = match sc.run(&leaves, &big()).unwrap() {
            Bounded::Complete(id) => id,
            other => panic!("tree compose exhausted: {other:?}"),
        };
        let net = sc.lib.store().net(top).unwrap();
        assert_eq!(net.alphabet(), sc.externals);
    }

    #[test]
    fn instances_share_the_template_storage() {
        let sc = ModuleScenario::translator_chain(32);
        let stats = sc.lib.store().stats();
        // 32 instances from one template: each is a distinct rename
        // (distinct channel names) but the nets pool in one store.
        assert_eq!(stats.nets, sc.leaf_count() + 1);
    }
}
