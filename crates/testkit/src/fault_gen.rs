//! Domain generator: fault-injection picks.
//!
//! The fault *mutators* live in `cpn-sim::fault` (testkit cannot depend
//! on the simulator without a cycle); what the property harness needs
//! from this side is a shrinkable description of *which* fault to
//! inject: a class index into the taxonomy and a derivation stream for
//! the mutation's own randomness. Shrinking moves both toward zero, so
//! minimized counterexamples name the first class and the first trial
//! that still fail.

use crate::gen::Strategy;
use crate::rng::TestRng;

/// A shrinkable fault pick: which taxonomy class, and which seeded
/// trial of it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawFault {
    /// Index into the consumer's fault-class taxonomy.
    pub class: usize,
    /// Trial stream for the mutation's randomness.
    pub trial: u64,
}

/// Generates [`RawFault`]s over a taxonomy of `classes` entries.
#[derive(Clone, Debug)]
pub struct FaultStrategy {
    classes: usize,
    max_trial: u64,
}

impl FaultStrategy {
    /// Picks over `classes` fault classes and trials `0..max_trial`.
    pub fn new(classes: usize, max_trial: u64) -> Self {
        assert!(classes > 0 && max_trial > 0);
        FaultStrategy { classes, max_trial }
    }
}

impl Strategy for FaultStrategy {
    type Value = RawFault;

    fn generate(&self, rng: &mut TestRng) -> RawFault {
        RawFault {
            class: rng.below(self.classes),
            trial: rng.below(self.max_trial as usize) as u64,
        }
    }

    fn shrink(&self, value: &RawFault) -> Vec<RawFault> {
        let mut out = Vec::new();
        if value.class > 0 {
            out.push(RawFault {
                class: value.class - 1,
                ..value.clone()
            });
        }
        if value.trial > 0 {
            out.push(RawFault {
                trial: value.trial / 2,
                ..value.clone()
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_in_range_and_shrinks_toward_zero() {
        let s = FaultStrategy::new(8, 16);
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..100 {
            let f = s.generate(&mut rng);
            assert!(f.class < 8 && f.trial < 16);
            for smaller in s.shrink(&f) {
                assert!(
                    smaller.class < f.class || smaller.trial < f.trial,
                    "shrink must make progress"
                );
            }
        }
        assert!(s.shrink(&RawFault { class: 0, trial: 0 }).is_empty());
    }
}
