//! Generic generation strategies with integrated shrinking.
//!
//! A [`Strategy`] couples a generator (`rng → value`) with a shrinker
//! (`value → smaller candidate values`). Shrink candidates are returned
//! roughly most-aggressive-first and in a deterministic order, which is
//! what makes seed replay reproduce the *identical* minimized
//! counterexample.

use crate::rng::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A value generator with integrated shrinking.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Smaller candidate values, most aggressive first. The default has
    /// no shrinking.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// A constant strategy (never shrinks).
pub fn just<T: Clone + Debug>(value: T) -> Just<T> {
    Just(value)
}

/// See [`just`].
#[derive(Clone, Debug)]
pub struct Just<T>(T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A uniform `usize` in the half-open range; shrinks toward the lower
/// bound.
pub fn usize_in(range: Range<usize>) -> UsizeIn {
    assert!(range.start < range.end, "empty range");
    UsizeIn(range)
}

/// See [`usize_in`].
#[derive(Clone, Debug)]
pub struct UsizeIn(Range<usize>);

impl Strategy for UsizeIn {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.0.clone())
    }

    fn shrink(&self, &value: &usize) -> Vec<usize> {
        shrink_toward(self.0.start, value)
    }
}

/// A uniform `u32` in the half-open range; shrinks toward the lower
/// bound.
pub fn u32_in(range: Range<u32>) -> U32In {
    assert!(range.start < range.end, "empty range");
    U32In(range)
}

/// See [`u32_in`].
#[derive(Clone, Debug)]
pub struct U32In(Range<u32>);

impl Strategy for U32In {
    type Value = u32;

    fn generate(&self, rng: &mut TestRng) -> u32 {
        rng.gen_range_u32(self.0.clone())
    }

    fn shrink(&self, &value: &u32) -> Vec<u32> {
        shrink_toward(self.0.start as usize, value as usize)
            .into_iter()
            .map(|v| v as u32)
            .collect()
    }
}

/// Candidates between `lo` and `value`: the minimum itself, the halfway
/// point, and the predecessor.
fn shrink_toward(lo: usize, value: usize) -> Vec<usize> {
    let mut out = Vec::new();
    if value > lo {
        out.push(lo);
        let mid = lo + (value - lo) / 2;
        if mid != lo && mid != value {
            out.push(mid);
        }
        if value - 1 != lo {
            out.push(value - 1);
        }
    }
    out
}

/// A uniform boolean; `true` shrinks to `false`.
pub fn any_bool() -> AnyBool {
    AnyBool
}

/// See [`any_bool`].
#[derive(Clone, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool()
    }

    fn shrink(&self, &value: &bool) -> Vec<bool> {
        if value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// A vector of `elem`-generated values with length in `len`; shrinks by
/// dropping elements (front first), then by shrinking each element.
pub fn vec_of<S: Strategy>(elem: S, len: RangeInclusive<usize>) -> VecOf<S> {
    assert!(len.start() <= len.end(), "empty length range");
    VecOf { elem, len }
}

/// See [`vec_of`].
#[derive(Clone, Debug)]
pub struct VecOf<S> {
    elem: S,
    len: RangeInclusive<usize>,
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(*self.len.start()..self.len.end() + 1);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        if value.len() > *self.len.start() {
            for i in 0..value.len() {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        for (i, x) in value.iter().enumerate() {
            for candidate in self.elem.shrink(x) {
                let mut v = value.clone();
                v[i] = candidate;
                out.push(v);
            }
        }
        out
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }

    fn shrink(&self, (a, b): &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = self
            .0
            .shrink(a)
            .into_iter()
            .map(|sa| (sa, b.clone()))
            .collect();
        out.extend(self.1.shrink(b).into_iter().map(|sb| (a.clone(), sb)));
        out
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }

    fn shrink(&self, (a, b, c): &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = self
            .0
            .shrink(a)
            .into_iter()
            .map(|sa| (sa, b.clone(), c.clone()))
            .collect();
        out.extend(
            self.1
                .shrink(b)
                .into_iter()
                .map(|sb| (a.clone(), sb, c.clone())),
        );
        out.extend(
            self.2
                .shrink(c)
                .into_iter()
                .map(|sc| (a.clone(), b.clone(), sc)),
        );
        out
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }

    fn shrink(&self, (a, b, c, d): &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = self
            .0
            .shrink(a)
            .into_iter()
            .map(|sa| (sa, b.clone(), c.clone(), d.clone()))
            .collect();
        out.extend(
            self.1
                .shrink(b)
                .into_iter()
                .map(|sb| (a.clone(), sb, c.clone(), d.clone())),
        );
        out.extend(
            self.2
                .shrink(c)
                .into_iter()
                .map(|sc| (a.clone(), b.clone(), sc, d.clone())),
        );
        out.extend(
            self.3
                .shrink(d)
                .into_iter()
                .map(|sd| (a.clone(), b.clone(), c.clone(), sd)),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usize_shrinks_toward_minimum() {
        let s = usize_in(2..20);
        assert_eq!(s.shrink(&2), Vec::<usize>::new());
        let c = s.shrink(&10);
        assert!(c.contains(&2) && c.contains(&6) && c.contains(&9), "{c:?}");
    }

    #[test]
    fn vec_generation_respects_length() {
        let s = vec_of(usize_in(0..5), 1..=3);
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn vec_shrink_never_below_min_len() {
        let s = vec_of(usize_in(0..5), 2..=4);
        for candidate in s.shrink(&vec![1, 2]) {
            assert!(candidate.len() >= 2, "{candidate:?}");
        }
    }

    #[test]
    fn tuple_shrinks_componentwise() {
        let s = (usize_in(0..10), any_bool());
        let c = s.shrink(&(4, true));
        assert!(c.contains(&(0, true)));
        assert!(c.contains(&(4, false)));
    }

    #[test]
    fn just_is_constant() {
        let s = just("fixed");
        let mut rng = TestRng::seed_from_u64(0);
        assert_eq!(s.generate(&mut rng), "fixed");
        assert!(s.shrink(&"fixed").is_empty());
    }
}
