//! The shrinking property-test harness.
//!
//! A property is a function from a generated value to a [`PropResult`]:
//! `Ok(())` passes, [`PropFail::Discard`] skips the input (the
//! `prop_assume!` path), [`PropFail::Fail`] is a counterexample. The
//! harness generates `cases` inputs from a [`Strategy`], and on the
//! first failure shrinks it greedily with the strategy's
//! [`shrink`](Strategy::shrink) candidates before panicking with the
//! minimized input **and the case seed**.
//!
//! # Determinism and replay
//!
//! Every case seed is derived from a base seed and the case index with
//! [`mix_seed`]. The base seed defaults to a hash
//! of the property name, so a test binary produces the same inputs on
//! every machine and every run — failures are reproducible by simply
//! re-running the test. Two environment variables override this:
//!
//! * `CPN_TESTKIT_SEED=<seed>` (decimal or `0x…` hex) — run **only**
//!   that case seed. A failure report prints the exact value to export;
//!   replaying it regenerates and re-shrinks the identical
//!   counterexample.
//! * `CPN_TESTKIT_CASES=<n>` — override the number of cases.

use crate::gen::Strategy;
use crate::rng::{mix_seed, TestRng};
use std::fmt::Debug;

/// Why a single case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PropFail {
    /// The input does not satisfy the property's preconditions; the
    /// harness discards it and draws a fresh one.
    Discard,
    /// The property is violated; the message describes how.
    Fail(String),
}

/// Result of one property evaluation.
pub type PropResult = Result<(), PropFail>;

/// Harness configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of passing cases required (default 96).
    pub cases: u32,
    /// Upper bound on accepted shrink steps (default 2048).
    pub max_shrink_steps: u32,
    /// Run only this case seed (set via `CPN_TESTKIT_SEED`).
    pub replay_seed: Option<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 96,
            max_shrink_steps: 2048,
            replay_seed: None,
        }
    }
}

impl Config {
    /// The default configuration with environment overrides applied.
    pub fn from_env() -> Self {
        let mut config = Config::default();
        if let Ok(s) = std::env::var("CPN_TESTKIT_CASES") {
            match s.trim().parse::<u32>() {
                Ok(n) => config.cases = n,
                Err(_) => panic!("CPN_TESTKIT_CASES={s:?} is not a u32"),
            }
        }
        if let Ok(s) = std::env::var("CPN_TESTKIT_SEED") {
            config.replay_seed = parse_seed(&s);
            if config.replay_seed.is_none() {
                panic!("CPN_TESTKIT_SEED={s:?} is not a decimal or 0x-hex u64");
            }
        }
        config
    }

    /// The same configuration with a different case count.
    pub fn with_cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse::<u64>().ok()
    }
}

/// FNV-1a over the property name: the deterministic base seed.
fn name_seed(name: &str) -> u64 {
    cpn_petri::hash::fnv1a_64(name.as_bytes())
}

/// Outcome of running one case seed to completion (including shrinking).
enum CaseOutcome {
    Pass,
    Discard,
    /// `(shrunk value rendered, shrink steps, message)`
    Fail(String, u32, String),
}

fn run_case<S: Strategy>(
    strategy: &S,
    prop: &dyn Fn(&S::Value) -> PropResult,
    seed: u64,
    max_shrink_steps: u32,
) -> CaseOutcome {
    let mut rng = TestRng::seed_from_u64(seed);
    let value = strategy.generate(&mut rng);
    match prop(&value) {
        Ok(()) => CaseOutcome::Pass,
        Err(PropFail::Discard) => CaseOutcome::Discard,
        Err(PropFail::Fail(first_msg)) => {
            // Greedy deterministic shrink: repeatedly replace the
            // counterexample with its first shrink candidate that still
            // fails. Candidate order is fixed by the strategy, so a
            // replayed seed shrinks to the identical value.
            let mut current = value;
            let mut message = first_msg;
            let mut steps = 0u32;
            'outer: while steps < max_shrink_steps {
                for candidate in strategy.shrink(&current) {
                    if let Err(PropFail::Fail(msg)) = prop(&candidate) {
                        current = candidate;
                        message = msg;
                        steps += 1;
                        continue 'outer;
                    }
                }
                break;
            }
            CaseOutcome::Fail(format!("{current:#?}"), steps, message)
        }
    }
}

/// Checks a property with an explicit configuration.
///
/// # Panics
///
/// Panics with the shrunk counterexample and its replay seed when the
/// property fails.
pub fn check_with<S: Strategy>(
    name: &str,
    config: &Config,
    strategy: &S,
    prop: impl Fn(&S::Value) -> PropResult,
) {
    let fail = |seed: u64, passed: u32, rendered: String, steps: u32, message: String| -> ! {
        panic!(
            "\n[cpn-testkit] property '{name}' failed after {passed} passing case(s).\n\
             [cpn-testkit] case seed: {seed} — replay with CPN_TESTKIT_SEED={seed}\n\
             [cpn-testkit] counterexample ({steps} shrink step(s)):\n{rendered}\n\
             [cpn-testkit] {message}\n"
        );
    };

    if let Some(seed) = config.replay_seed {
        match run_case(strategy, &prop, seed, config.max_shrink_steps) {
            CaseOutcome::Pass | CaseOutcome::Discard => return,
            CaseOutcome::Fail(rendered, steps, message) => fail(seed, 0, rendered, steps, message),
        }
    }

    let base = name_seed(name);
    let mut passed = 0u32;
    let mut attempts = 0u64;
    let max_attempts = u64::from(config.cases) * 20;
    while passed < config.cases {
        if attempts >= max_attempts {
            panic!(
                "[cpn-testkit] property '{name}' discarded too many inputs: \
                 {passed}/{} passed in {attempts} attempts — loosen the \
                 generator or the prop_assume! conditions",
                config.cases
            );
        }
        let seed = mix_seed(base, attempts);
        attempts += 1;
        match run_case(strategy, &prop, seed, config.max_shrink_steps) {
            CaseOutcome::Pass => passed += 1,
            CaseOutcome::Discard => {}
            CaseOutcome::Fail(rendered, steps, message) => {
                fail(seed, passed, rendered, steps, message)
            }
        }
    }
}

/// Checks a property with [`Config::from_env`].
///
/// # Panics
///
/// Panics with the shrunk counterexample and its replay seed when the
/// property fails.
pub fn check<S: Strategy>(name: &str, strategy: &S, prop: impl Fn(&S::Value) -> PropResult) {
    check_with(name, &Config::from_env(), strategy, prop);
}

/// Asserts a condition inside a property, with an optional formatted
/// message; on failure the enclosing property returns a counterexample.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::PropFail::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property (both sides shown on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Discards the current input unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::PropFail::Discard);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{usize_in, vec_of};

    #[test]
    fn passing_property_completes() {
        check("small_is_small", &usize_in(0..10), |&x| {
            prop_assert!(x < 10);
            Ok(())
        });
    }

    #[test]
    fn discards_are_redrawn() {
        check("assume_even", &usize_in(0..100), |&x| {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "CPN_TESTKIT_SEED=")]
    fn failure_reports_replay_seed() {
        check_with(
            "always_fails",
            &Config::default().with_cases(5),
            &usize_in(0..100),
            |_| {
                prop_assert!(false, "forced failure");
                Ok(())
            },
        );
    }

    #[test]
    fn shrinking_minimizes_vectors() {
        // A vector with any element ≥ 3 fails; the minimal counterexample
        // under our candidate order is the single element [3].
        let strategy = vec_of(usize_in(0..10), 0..=6);
        let mut rng = TestRng::seed_from_u64(0);
        // Find a failing input, then shrink it the way the harness does.
        let failing = loop {
            let v = strategy.generate(&mut rng);
            if v.iter().any(|&x| x >= 3) {
                break v;
            }
        };
        let prop = |v: &Vec<usize>| -> PropResult {
            prop_assert!(v.iter().all(|&x| x < 3), "element >= 3");
            Ok(())
        };
        let mut current = failing;
        'outer: loop {
            for candidate in strategy.shrink(&current) {
                if prop(&candidate).is_err() {
                    current = candidate;
                    continue 'outer;
                }
            }
            break;
        }
        assert_eq!(current, vec![3]);
    }

    #[test]
    fn too_many_discards_reported() {
        let result = std::panic::catch_unwind(|| {
            check_with(
                "starved",
                &Config::default().with_cases(10),
                &usize_in(0..100),
                |_| Err(PropFail::Discard),
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("discarded too many inputs"), "{msg}");
    }

    #[test]
    fn name_seed_is_stable_fnv() {
        assert_eq!(name_seed(""), 0xcbf29ce484222325);
        assert_ne!(name_seed("a"), name_seed("b"));
    }

    #[test]
    fn parse_seed_accepts_decimal_and_hex() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0x2A"), Some(42));
        assert_eq!(parse_seed(" 0X2a "), Some(42));
        assert_eq!(parse_seed("nope"), None);
    }
}
