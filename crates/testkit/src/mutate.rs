//! Seeded document mutation for parser robustness testing.
//!
//! [`DocMutator`] takes a well-formed text document and produces
//! adversarial variants — truncations, byte flips, garbage splices,
//! token duplication, and pathological brace floods. Mutants are plain
//! `String`s (invalid UTF-8 produced by a byte flip is repaired
//! lossily, since the parsers under test take `&str`), and every
//! mutant is a pure function of the mutator's seed, so a failing case
//! replays from the harness seed alone.

use crate::rng::TestRng;

/// The kind of corruption a mutant was produced by (for diagnostics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationKind {
    /// The document cut off mid-stream.
    Truncated,
    /// One or more bytes flipped in place.
    ByteFlipped,
    /// A run of random bytes spliced into the middle.
    GarbageSpliced,
    /// A random chunk duplicated in place (confuses bracket matching).
    ChunkDoubled,
    /// A flood of opening braces inserted (nesting-depth attack).
    BraceFlood,
}

/// A corrupted document together with how it was corrupted.
#[derive(Clone, Debug)]
pub struct Mutant {
    /// The corrupted text.
    pub text: String,
    /// How the corruption was produced.
    pub kind: MutationKind,
}

/// Deterministic corpus of corrupted variants of a base document.
#[derive(Debug)]
pub struct DocMutator {
    base: String,
    rng: TestRng,
}

impl DocMutator {
    /// A mutator over `base`, seeded for replayable mutant streams.
    pub fn new(base: impl Into<String>, seed: u64) -> Self {
        DocMutator {
            base: base.into(),
            rng: TestRng::seed_from_u64(seed),
        }
    }

    /// The next mutant in the stream (uniform over the mutation kinds).
    pub fn next_mutant(&mut self) -> Mutant {
        match self.rng.below(5) {
            0 => self.truncate(),
            1 => self.flip_bytes(),
            2 => self.splice_garbage(),
            3 => self.double_chunk(),
            _ => self.brace_flood(),
        }
    }

    fn truncate(&mut self) -> Mutant {
        let cut = self.rng.below(self.base.len().max(1));
        let bytes = &self.base.as_bytes()[..cut];
        // Trim a trailing partial UTF-8 sequence left by the byte-level
        // cut, so truncation exercises the parser rather than the lossy
        // decoder.
        let valid = match std::str::from_utf8(bytes) {
            Ok(s) => s,
            Err(e) => {
                let (head, _) = bytes.split_at(e.valid_up_to());
                // A cut can only invalidate the final character.
                std::str::from_utf8(head).unwrap_or("")
            }
        };
        Mutant {
            text: valid.to_owned(),
            kind: MutationKind::Truncated,
        }
    }

    fn flip_bytes(&mut self) -> Mutant {
        let mut bytes = self.base.clone().into_bytes();
        if !bytes.is_empty() {
            for _ in 0..self.rng.gen_range(1..4) {
                let i = self.rng.below(bytes.len());
                bytes[i] ^= (self.rng.next_u64() as u8) | 1;
            }
        }
        Mutant {
            text: String::from_utf8_lossy(&bytes).into_owned(),
            kind: MutationKind::ByteFlipped,
        }
    }

    fn splice_garbage(&mut self) -> Mutant {
        let mut bytes = self.base.clone().into_bytes();
        let at = self.rng.below(bytes.len().max(1));
        let garbage: Vec<u8> = (0..self.rng.gen_range(1..32))
            .map(|_| self.rng.next_u64() as u8)
            .collect();
        bytes.splice(at..at, garbage);
        Mutant {
            text: String::from_utf8_lossy(&bytes).into_owned(),
            kind: MutationKind::GarbageSpliced,
        }
    }

    fn double_chunk(&mut self) -> Mutant {
        let bytes = self.base.as_bytes();
        let text = if bytes.is_empty() {
            String::new()
        } else {
            let start = self.rng.below(bytes.len());
            let end = start + self.rng.below(bytes.len() - start) + 1;
            let end = end.min(bytes.len());
            let mut out = bytes[..end].to_vec();
            out.extend_from_slice(&bytes[start..end]);
            out.extend_from_slice(&bytes[end..]);
            String::from_utf8_lossy(&out).into_owned()
        };
        Mutant {
            text,
            kind: MutationKind::ChunkDoubled,
        }
    }

    fn brace_flood(&mut self) -> Mutant {
        let depth = self.rng.gen_range(100..100_000);
        let at = self.rng.below(self.base.len().max(1));
        let mut bytes = self.base.clone().into_bytes();
        bytes.splice(at..at, std::iter::repeat_n(b'{', depth));
        Mutant {
            text: String::from_utf8_lossy(&bytes).into_owned(),
            kind: MutationKind::BraceFlood,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"net cycle {
        places { p* q }
        transition "a" { pre: p; post: q }
    }"#;

    #[test]
    fn mutants_are_deterministic_per_seed() {
        let mut a = DocMutator::new(DOC, 42);
        let mut b = DocMutator::new(DOC, 42);
        for _ in 0..50 {
            let (ma, mb) = (a.next_mutant(), b.next_mutant());
            assert_eq!(ma.text, mb.text);
            assert_eq!(ma.kind, mb.kind);
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = DocMutator::new(DOC, 1);
        let mut b = DocMutator::new(DOC, 2);
        let differs = (0..20).any(|_| a.next_mutant().text != b.next_mutant().text);
        assert!(differs);
    }

    #[test]
    fn every_kind_appears_in_a_short_stream() {
        let mut m = DocMutator::new(DOC, 7);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(format!("{:?}", m.next_mutant().kind));
        }
        assert_eq!(seen.len(), 5, "kinds seen: {seen:?}");
    }

    #[test]
    fn truncation_yields_valid_utf8_prefix() {
        let mut m = DocMutator::new("places { þorn }", 3);
        for _ in 0..100 {
            // `text` is a String, so validity is type-enforced; check
            // the repair left no replacement chars on Truncated cases.
            let mutant = m.truncate();
            assert!(!mutant.text.contains('\u{FFFD}'));
        }
    }
}
