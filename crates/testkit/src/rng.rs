//! In-tree pseudo-random number generation.
//!
//! Two tiny, well-studied generators replace the external `rand` crate:
//!
//! * [`SplitMix64`] — a one-word state mixer (Steele, Lea & Flood,
//!   OOPSLA 2014). Used for seeding and for deriving independent
//!   streams from a base seed.
//! * [`TestRng`] — xoshiro256\*\* (Blackman & Vigna, 2018), seeded
//!   through SplitMix64 exactly as its authors recommend. This is the
//!   workhorse generator of the simulator and the property harness.
//!
//! Both are fully deterministic given a seed, have no global state and
//! allocate nothing, which is what makes every test in the workspace
//! replayable from a single `u64`.

/// SplitMix64: one `u64` of state, one multiply-xorshift output mix.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from the given seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Mixes a seed and a stream index into an independent-looking sub-seed
/// (used by the harness to give every test case its own seed).
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut sm = SplitMix64::seed_from_u64(seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F));
    sm.next_u64()
}

/// xoshiro256\*\*: 256 bits of state, excellent statistical quality,
/// ~1 ns per draw. The default generator everywhere in the workspace.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the full 256-bit state from one word via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::seed_from_u64(seed);
        TestRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `0..n` (multiply-shift range reduction).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// A uniform value in the half-open range (`rand`-style helper).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: core::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.below(range.end - range.start)
    }

    /// A uniform `u32` in the half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range_u32(&mut self, range: core::ops::Range<u32>) -> u32 {
        assert!(range.start < range.end, "empty range");
        range.start + self.below((range.end - range.start) as usize) as u32
    }

    /// `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn gen_ratio(&mut self, num: usize, den: usize) -> bool {
        self.below(den) < num
    }

    /// A uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniformly chosen element of the slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }

    /// An independent generator split off from this one (advances the
    /// parent's state).
    pub fn fork(&mut self) -> TestRng {
        TestRng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut sm = SplitMix64::seed_from_u64(1234567);
        let v: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(v[0], 6457827717110365317);
        assert_eq!(v[1], 3203168211198807973);
        assert_eq!(v[2], 9817491932198370423);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = TestRng::seed_from_u64(42);
        let mut b = TestRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_in_range_and_covers() {
        let mut rng = TestRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let x = rng.below(5);
            assert!(x < 5);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&b| b), "all residues hit: {seen:?}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = TestRng::seed_from_u64(11);
        for _ in 0..200 {
            let x = rng.gen_range(3..9);
            assert!((3..9).contains(&x));
        }
    }

    #[test]
    fn forks_diverge() {
        let mut rng = TestRng::seed_from_u64(1);
        let mut f1 = rng.fork();
        let mut f2 = rng.fork();
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn mix_seed_spreads_streams() {
        let a = mix_seed(99, 0);
        let b = mix_seed(99, 1);
        assert_ne!(a, b);
        assert_eq!(a, mix_seed(99, 0));
    }
}
