//! Domain generator: signal transition graphs.
//!
//! Builds STGs on top of [`RawNet`] structure:
//! one declared input (`DATA`), three outputs (`s0..s2`), a generated
//! edge kind per transition and an optional guard on the first
//! transition — the exact shape the `.cpn` round-trip suite exercises.

use crate::gen::Strategy;
use crate::net_gen::{NetStrategy, RawNet};
use crate::rng::TestRng;
use cpn_stg::{Edge, Guard, Signal, SignalDir, Stg};

/// A raw STG description the harness can shrink.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawStg {
    /// Underlying net structure (label index selects the output signal).
    pub net: RawNet,
    /// Edge-kind index per transition (modulo 6: rise, fall, toggle,
    /// stable, unstable, don't-care).
    pub edges: Vec<usize>,
    /// Whether transition 0 carries a `DATA`-high guard.
    pub guard_on: bool,
}

/// The edge kind for a raw index.
pub fn edge_of(i: usize) -> Edge {
    match i % 6 {
        0 => Edge::Rise,
        1 => Edge::Fall,
        2 => Edge::Toggle,
        3 => Edge::Stable,
        4 => Edge::Unstable,
        _ => Edge::DontCare,
    }
}

impl RawStg {
    /// Builds the STG: one input `DATA`, outputs `s0..s2`, places
    /// `pl{i}`, one signal transition per raw transition.
    pub fn build(&self) -> Stg {
        let mut stg = Stg::new();
        let data = stg.add_signal("DATA", SignalDir::Input);
        let sigs: Vec<Signal> = (0..3)
            .map(|i| stg.add_signal(format!("s{i}"), SignalDir::Output))
            .collect();
        let ps: Vec<_> = (0..self.net.places)
            .map(|i| stg.add_place(format!("pl{i}")))
            .collect();
        for (i, t) in self.net.transitions.iter().enumerate() {
            let edge = edge_of(self.edges[i % self.edges.len()]);
            let tid = stg
                .add_signal_transition(
                    t.pre.iter().map(|&x| ps[x]),
                    (sigs[t.label % 3].clone(), edge),
                    t.post.iter().map(|&x| ps[x]),
                )
                .expect("generated transition is valid");
            if self.guard_on && i == 0 {
                stg.set_guard(tid, Guard::new().require(data.clone(), true));
            }
        }
        for (i, &m) in self.net.marking.iter().enumerate() {
            stg.set_initial(ps[i], m);
        }
        stg
    }
}

/// Generates [`RawStg`]s.
#[derive(Clone, Debug)]
pub struct StgStrategy {
    net: NetStrategy,
}

impl StgStrategy {
    /// STGs over nets with up to `max_places`/`max_transitions` and
    /// multiset markings up to 2 tokens per place.
    pub fn new(max_places: usize, max_transitions: usize) -> Self {
        StgStrategy {
            net: NetStrategy::new(max_places, max_transitions, 3).max_tokens(2),
        }
    }
}

impl Strategy for StgStrategy {
    type Value = RawStg;

    fn generate(&self, rng: &mut TestRng) -> RawStg {
        let net = self.net.generate(rng);
        let n_edges = rng.gen_range(1..6);
        let edges = (0..n_edges).map(|_| rng.below(6)).collect();
        let guard_on = rng.gen_bool();
        RawStg {
            net,
            edges,
            guard_on,
        }
    }

    fn shrink(&self, value: &RawStg) -> Vec<RawStg> {
        let mut out = Vec::new();
        if value.guard_on {
            out.push(RawStg {
                guard_on: false,
                ..value.clone()
            });
        }
        for net in self.net.shrink(&value.net) {
            out.push(RawStg {
                net,
                ..value.clone()
            });
        }
        for (i, &e) in value.edges.iter().enumerate() {
            if e > 0 {
                let mut v = value.clone();
                v.edges[i] = 0;
                out.push(v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_stgs_build() {
        let s = StgStrategy::new(5, 5);
        let mut rng = TestRng::seed_from_u64(23);
        for _ in 0..50 {
            let raw = s.generate(&mut rng);
            let stg = raw.build();
            assert_eq!(stg.net().transition_count(), raw.net.transitions.len());
            assert_eq!(stg.signals().len(), 4);
        }
    }

    #[test]
    fn shrinks_still_build() {
        let s = StgStrategy::new(5, 5);
        let mut rng = TestRng::seed_from_u64(31);
        for _ in 0..20 {
            let raw = s.generate(&mut rng);
            for c in s.shrink(&raw) {
                c.build();
            }
        }
    }
}
