//! A CIP module: one vertex of the CIP graph — a labeled Petri net over
//! signal transitions and abstract channel events.

use crate::label::{ChanOp, Channel, CipLabel};
use cpn_petri::{PetriError, PetriNet, PlaceId, TransitionId};
use cpn_stg::{Edge, Signal, SignalDir};
use std::collections::{BTreeMap, BTreeSet};

/// One interface process of a CIP (Definition 3.1's vertex).
///
/// Construction mirrors [`cpn_stg::Stg`] but adds channel events; signal
/// declarations matter for the eventual expansion (channel handshake
/// wires are added automatically with the correct directions).
#[derive(Clone, Debug)]
pub struct Module {
    name: String,
    net: PetriNet<CipLabel>,
    signals: BTreeMap<Signal, SignalDir>,
}

impl Module {
    /// Creates an empty module with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            net: PetriNet::new(),
            signals: BTreeMap::new(),
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a signal.
    pub fn add_signal(&mut self, name: impl AsRef<str>, dir: SignalDir) -> Signal {
        let sig = Signal::new(name);
        self.signals.insert(sig.clone(), dir);
        sig
    }

    /// Adds a place.
    pub fn add_place(&mut self, name: impl Into<String>) -> PlaceId {
        self.net.add_place(name)
    }

    /// Sets the initial marking of a place.
    pub fn set_initial(&mut self, place: PlaceId, tokens: u32) {
        self.net.set_initial(place, tokens);
    }

    /// Adds a plain signal transition.
    ///
    /// # Errors
    ///
    /// Net-level errors (unknown place, degenerate transition); the
    /// signal must have been declared.
    pub fn add_signal_transition(
        &mut self,
        preset: impl IntoIterator<Item = PlaceId>,
        signal: &Signal,
        edge: Edge,
        postset: impl IntoIterator<Item = PlaceId>,
    ) -> Result<TransitionId, PetriError> {
        if !self.signals.contains_key(signal) {
            return Err(PetriError::Precondition(format!(
                "signal {signal} not declared in module {}",
                self.name
            )));
        }
        self.net
            .add_transition(preset, CipLabel::Signal(signal.clone(), edge), postset)
    }

    /// Adds a send event `c!` / `c!v`.
    ///
    /// # Errors
    ///
    /// Net-level errors.
    pub fn add_send(
        &mut self,
        preset: impl IntoIterator<Item = PlaceId>,
        channel: impl Into<Channel>,
        value: Option<usize>,
        postset: impl IntoIterator<Item = PlaceId>,
    ) -> Result<TransitionId, PetriError> {
        self.net.add_transition(
            preset,
            CipLabel::Chan(channel.into(), ChanOp::Send(value)),
            postset,
        )
    }

    /// Adds a receive event `c?` (any value).
    ///
    /// # Errors
    ///
    /// Net-level errors.
    pub fn add_recv(
        &mut self,
        preset: impl IntoIterator<Item = PlaceId>,
        channel: impl Into<Channel>,
        postset: impl IntoIterator<Item = PlaceId>,
    ) -> Result<TransitionId, PetriError> {
        self.net.add_transition(
            preset,
            CipLabel::Chan(channel.into(), ChanOp::Recv(None)),
            postset,
        )
    }

    /// Adds a selective receive `c?v`: fires only when value `v` arrives,
    /// so behaviour can branch on the received value.
    ///
    /// # Errors
    ///
    /// Net-level errors.
    pub fn add_recv_case(
        &mut self,
        preset: impl IntoIterator<Item = PlaceId>,
        channel: impl Into<Channel>,
        value: usize,
        postset: impl IntoIterator<Item = PlaceId>,
    ) -> Result<TransitionId, PetriError> {
        self.net.add_transition(
            preset,
            CipLabel::Chan(channel.into(), ChanOp::Recv(Some(value))),
            postset,
        )
    }

    /// Adds a dummy ε transition.
    ///
    /// # Errors
    ///
    /// Net-level errors.
    pub fn add_dummy(
        &mut self,
        preset: impl IntoIterator<Item = PlaceId>,
        postset: impl IntoIterator<Item = PlaceId>,
    ) -> Result<TransitionId, PetriError> {
        self.net.add_transition(preset, CipLabel::Dummy, postset)
    }

    /// The underlying net.
    pub fn net(&self) -> &PetriNet<CipLabel> {
        &self.net
    }

    /// Declared signals.
    pub fn signals(&self) -> &BTreeMap<Signal, SignalDir> {
        &self.signals
    }

    /// Channels this module sends on.
    pub fn sends(&self) -> BTreeSet<Channel> {
        self.net
            .alphabet()
            .iter()
            .filter_map(|l| match l {
                CipLabel::Chan(c, ChanOp::Send(_)) => Some(c.clone()),
                _ => None,
            })
            .collect()
    }

    /// Channels this module receives on.
    pub fn receives(&self) -> BTreeSet<Channel> {
        self.net
            .alphabet()
            .iter()
            .filter_map(|l| match l {
                CipLabel::Chan(c, ChanOp::Recv(_)) => Some(c.clone()),
                _ => None,
            })
            .collect()
    }

    /// Values sent on a channel (None entries mean a plain `c!`).
    pub fn sent_values(&self, channel: &Channel) -> BTreeSet<Option<usize>> {
        self.net
            .alphabet()
            .iter()
            .filter_map(|l| match l {
                CipLabel::Chan(c, ChanOp::Send(v)) if c == channel => Some(*v),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_introspect() {
        let mut m = Module::new("tx");
        let d = m.add_signal("d", SignalDir::Output);
        let p = m.add_place("p");
        let q = m.add_place("q");
        m.add_signal_transition([p], &d, Edge::Rise, [q]).unwrap();
        m.add_send([q], "cmd", Some(1), [p]).unwrap();
        m.add_recv([p], "resp", [p]).unwrap();
        m.set_initial(p, 1);

        assert_eq!(m.name(), "tx");
        assert_eq!(m.sends(), BTreeSet::from([Channel::new("cmd")]));
        assert_eq!(m.receives(), BTreeSet::from([Channel::new("resp")]));
        assert_eq!(
            m.sent_values(&Channel::new("cmd")),
            BTreeSet::from([Some(1)])
        );
        assert_eq!(m.net().transition_count(), 3);
    }

    #[test]
    fn undeclared_signal_rejected() {
        let mut m = Module::new("tx");
        let p = m.add_place("p");
        let err = m
            .add_signal_transition([p], &Signal::new("ghost"), Edge::Rise, [p])
            .unwrap_err();
        assert!(matches!(err, PetriError::Precondition(_)));
    }

    #[test]
    fn recv_case_labels_value() {
        let mut m = Module::new("rx");
        let p = m.add_place("p");
        let q = m.add_place("q");
        m.add_recv_case([p], "cmd", 2, [q]).unwrap();
        let tid = m.net().transitions().next().unwrap().0;
        let label = m.net().label_of(tid).clone();
        assert_eq!(label.to_string(), "cmd?2");
    }
}
