//! The CIP action alphabet: `A = A_S ∪ A_Σ` (Definition 3.1).

use cpn_petri::{Interner, Sym};
use cpn_stg::{Edge, Signal};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// The process-wide channel-name interner: every [`Channel`] ever
/// created registers its name here once, so channel *identity* is a
/// dense [`Sym`] and equality/hashing are integer operations.
fn channel_names() -> &'static Mutex<Interner<Arc<str>>> {
    static NAMES: OnceLock<Mutex<Interner<Arc<str>>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Interner::new()))
}

/// An abstract communication channel `σ ∈ Σ`.
///
/// Identity is the interned symbol of the channel name
/// (process-global): equality and hashing compare the [`Sym`], not the
/// string. Ordering still compares the resolved *name* — symbol
/// assignment depends on construction order (nondeterministic across
/// test threads), and the name order is the canonical one. The two are
/// consistent: names and symbols are in bijection.
#[derive(Clone)]
pub struct Channel {
    sym: Sym,
    name: Arc<str>,
}

impl Channel {
    /// Creates a channel with the given name, interning it in the
    /// process-wide channel symbol table.
    pub fn new(name: impl AsRef<str>) -> Self {
        let name: Arc<str> = Arc::from(name.as_ref());
        let mut table = channel_names().lock().unwrap_or_else(|e| e.into_inner());
        let sym = table.intern(&name);
        // Share the canonical Arc so equal channels alias one buffer.
        let name = table.resolve(sym).clone();
        Channel { sym, name }
    }

    /// The channel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The interned channel symbol (process-global).
    pub fn sym(&self) -> Sym {
        self.sym
    }
}

impl PartialEq for Channel {
    fn eq(&self, other: &Self) -> bool {
        self.sym == other.sym
    }
}

impl Eq for Channel {}

impl Hash for Channel {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.sym.hash(state);
    }
}

impl PartialOrd for Channel {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Channel {
    fn cmp(&self, other: &Self) -> Ordering {
        // By name, not by symbol: deterministic across interning orders.
        self.name.cmp(&other.name)
    }
}

impl fmt::Debug for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Channel({})", self.name)
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for Channel {
    fn from(s: &str) -> Self {
        Channel::new(s)
    }
}

/// A channel operation: send (`c!` or `c!v`) or receive (`c?`).
///
/// Values are small indices into the channel's declared value set; a
/// selective receive `Recv(Some(v))` accepts only value `v` (used to
/// route behaviour on the received value).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChanOp {
    /// `c!` (None) or `c!v` (Some(v)).
    Send(Option<usize>),
    /// `c?` (None accepts any value) or a selective `c?v`.
    Recv(Option<usize>),
}

impl fmt::Display for ChanOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChanOp::Send(None) => f.write_str("!"),
            ChanOp::Send(Some(v)) => write!(f, "!{v}"),
            ChanOp::Recv(None) => f.write_str("?"),
            ChanOp::Recv(Some(v)) => write!(f, "?{v}"),
        }
    }
}

/// The CIP label type: signal transitions, channel events, or ε
/// (Definition 3.1: `A = A_S ∪ A_Σ`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CipLabel {
    /// A plain signal transition, as in an STG.
    Signal(Signal, Edge),
    /// An abstract channel event.
    Chan(Channel, ChanOp),
    /// Dummy ε.
    Dummy,
}

impl CipLabel {
    /// Whether this is a channel event.
    pub fn is_channel(&self) -> bool {
        matches!(self, CipLabel::Chan(..))
    }

    /// The channel, if this is a channel event.
    pub fn channel(&self) -> Option<&Channel> {
        match self {
            CipLabel::Chan(c, _) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Debug for CipLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for CipLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CipLabel::Signal(s, e) => write!(f, "{s}{e}"),
            CipLabel::Chan(c, op) => write!(f, "{c}{op}"),
            CipLabel::Dummy => f.write_str("ε"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_display() {
        assert_eq!(
            CipLabel::Chan(Channel::new("cmd"), ChanOp::Send(Some(2))).to_string(),
            "cmd!2"
        );
        assert_eq!(
            CipLabel::Chan(Channel::new("cmd"), ChanOp::Recv(None)).to_string(),
            "cmd?"
        );
        assert_eq!(
            CipLabel::Chan(Channel::new("go"), ChanOp::Send(None)).to_string(),
            "go!"
        );
    }

    #[test]
    fn signal_and_dummy_display() {
        assert_eq!(
            CipLabel::Signal(Signal::new("a0"), Edge::Rise).to_string(),
            "a0+"
        );
        assert_eq!(CipLabel::Dummy.to_string(), "ε");
    }

    #[test]
    fn accessors() {
        let l = CipLabel::Chan(Channel::new("c"), ChanOp::Recv(Some(1)));
        assert!(l.is_channel());
        assert_eq!(l.channel().unwrap().name(), "c");
        assert!(!CipLabel::Dummy.is_channel());
    }

    #[test]
    fn satisfies_label_trait() {
        fn takes<L: cpn_petri::Label>(_: L) {}
        takes(CipLabel::Dummy);
    }

    #[test]
    fn channel_identity_is_the_interned_symbol() {
        let a = Channel::new("sym_id_chan");
        let b = Channel::new("sym_id_chan");
        let c = Channel::new("sym_id_chan_other");
        assert_eq!(a, b);
        assert_eq!(a.sym(), b.sym());
        assert_ne!(a, c);
        assert_ne!(a.sym(), c.sym());
    }

    #[test]
    fn channel_order_is_by_name_not_interning_order() {
        // Intern in reverse lexicographic order: the later symbol must
        // still sort after by *name*.
        let z = Channel::new("zzz_order_probe");
        let a = Channel::new("aaa_order_probe");
        assert!(a < z, "ordering must follow names, not symbol assignment");
        let mut v = vec![z.clone(), a.clone()];
        v.sort();
        assert_eq!(v, vec![a, z]);
    }
}
