//! The CIP action alphabet: `A = A_S ∪ A_Σ` (Definition 3.1).

use cpn_stg::{Edge, Signal};
use std::fmt;
use std::sync::Arc;

/// An abstract communication channel `σ ∈ Σ`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Channel(Arc<str>);

impl Channel {
    /// Creates a channel with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Channel(Arc::from(name.as_ref()))
    }

    /// The channel name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Channel({})", self.0)
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Channel {
    fn from(s: &str) -> Self {
        Channel::new(s)
    }
}

/// A channel operation: send (`c!` or `c!v`) or receive (`c?`).
///
/// Values are small indices into the channel's declared value set; a
/// selective receive `Recv(Some(v))` accepts only value `v` (used to
/// route behaviour on the received value).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChanOp {
    /// `c!` (None) or `c!v` (Some(v)).
    Send(Option<usize>),
    /// `c?` (None accepts any value) or a selective `c?v`.
    Recv(Option<usize>),
}

impl fmt::Display for ChanOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChanOp::Send(None) => f.write_str("!"),
            ChanOp::Send(Some(v)) => write!(f, "!{v}"),
            ChanOp::Recv(None) => f.write_str("?"),
            ChanOp::Recv(Some(v)) => write!(f, "?{v}"),
        }
    }
}

/// The CIP label type: signal transitions, channel events, or ε
/// (Definition 3.1: `A = A_S ∪ A_Σ`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CipLabel {
    /// A plain signal transition, as in an STG.
    Signal(Signal, Edge),
    /// An abstract channel event.
    Chan(Channel, ChanOp),
    /// Dummy ε.
    Dummy,
}

impl CipLabel {
    /// Whether this is a channel event.
    pub fn is_channel(&self) -> bool {
        matches!(self, CipLabel::Chan(..))
    }

    /// The channel, if this is a channel event.
    pub fn channel(&self) -> Option<&Channel> {
        match self {
            CipLabel::Chan(c, _) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Debug for CipLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for CipLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CipLabel::Signal(s, e) => write!(f, "{s}{e}"),
            CipLabel::Chan(c, op) => write!(f, "{c}{op}"),
            CipLabel::Dummy => f.write_str("ε"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_display() {
        assert_eq!(
            CipLabel::Chan(Channel::new("cmd"), ChanOp::Send(Some(2))).to_string(),
            "cmd!2"
        );
        assert_eq!(
            CipLabel::Chan(Channel::new("cmd"), ChanOp::Recv(None)).to_string(),
            "cmd?"
        );
        assert_eq!(
            CipLabel::Chan(Channel::new("go"), ChanOp::Send(None)).to_string(),
            "go!"
        );
    }

    #[test]
    fn signal_and_dummy_display() {
        assert_eq!(
            CipLabel::Signal(Signal::new("a0"), Edge::Rise).to_string(),
            "a0+"
        );
        assert_eq!(CipLabel::Dummy.to_string(), "ε");
    }

    #[test]
    fn accessors() {
        let l = CipLabel::Chan(Channel::new("c"), ChanOp::Recv(Some(1)));
        assert!(l.is_channel());
        assert_eq!(l.channel().unwrap().name(), "c");
        assert!(!CipLabel::Dummy.is_channel());
    }

    #[test]
    fn satisfies_label_trait() {
        fn takes<L: cpn_petri::Label>(_: L) {}
        takes(CipLabel::Dummy);
    }
}
