//! Delay-insensitive data encodings for channel values (Section 3).
//!
//! A value is transmitted by raising a *set* of wires; the paper requires
//! that "no encoding covers another" — the codes form an **antichain**
//! under set inclusion, so a complete code can never be mistaken for a
//! prefix of a different one. Dual-rail is the classical instance; the
//! paper explicitly allows general m-wire encodings, so one-hot and
//! m-of-n constructions are provided too.

use cpn_stg::Signal;
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// An encoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EncodingError {
    /// Two codes are ordered by inclusion (Section 3's validity rule).
    CodeCovers {
        /// Index of the covering value.
        covering: usize,
        /// Index of the covered value.
        covered: usize,
    },
    /// A code refers to a wire index out of range.
    WireOutOfRange(usize),
    /// A value index out of range for this encoding.
    ValueOutOfRange(usize),
    /// An empty code (a value must raise at least one wire).
    EmptyCode(usize),
}

impl fmt::Display for EncodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodingError::CodeCovers { covering, covered } => {
                write!(f, "code of value {covering} covers code of value {covered}")
            }
            EncodingError::WireOutOfRange(w) => write!(f, "wire index {w} out of range"),
            EncodingError::ValueOutOfRange(v) => write!(f, "value index {v} out of range"),
            EncodingError::EmptyCode(v) => write!(f, "value {v} has an empty code"),
        }
    }
}

impl Error for EncodingError {}

/// A data encoding: named wires plus one wire-set code per value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataEncoding {
    wires: Vec<Signal>,
    codes: Vec<BTreeSet<usize>>,
}

impl DataEncoding {
    /// Builds an encoding from wire names and per-value codes, validating
    /// the antichain property.
    ///
    /// # Errors
    ///
    /// [`EncodingError`] on empty codes, out-of-range wires, or covering
    /// codes.
    pub fn new(wires: Vec<Signal>, codes: Vec<BTreeSet<usize>>) -> Result<Self, EncodingError> {
        for (v, code) in codes.iter().enumerate() {
            if code.is_empty() {
                return Err(EncodingError::EmptyCode(v));
            }
            for &w in code {
                if w >= wires.len() {
                    return Err(EncodingError::WireOutOfRange(w));
                }
            }
        }
        for i in 0..codes.len() {
            for j in 0..codes.len() {
                if i != j && codes[i].is_superset(&codes[j]) {
                    return Err(EncodingError::CodeCovers {
                        covering: i,
                        covered: j,
                    });
                }
            }
        }
        Ok(DataEncoding { wires, codes })
    }

    /// The classical dual-rail encoding of `bits`-bit values: two wires
    /// per bit (`{prefix}{i}_t` / `{prefix}{i}_f`), codes for all
    /// `2^bits` values.
    pub fn dual_rail(prefix: &str, bits: usize) -> Self {
        assert!(bits > 0 && bits < 16, "sensible dual-rail width");
        let mut wires = Vec::with_capacity(2 * bits);
        for i in 0..bits {
            wires.push(Signal::new(format!("{prefix}{i}_t")));
            wires.push(Signal::new(format!("{prefix}{i}_f")));
        }
        let codes = (0..(1usize << bits))
            .map(|v| {
                (0..bits)
                    .map(|i| 2 * i + usize::from((v >> i) & 1 == 0))
                    .collect()
            })
            .collect();
        DataEncoding::new(wires, codes).expect("dual-rail is an antichain")
    }

    /// One-hot over `n` values: wire `i` alone encodes value `i`.
    pub fn one_hot(prefix: &str, n: usize) -> Self {
        assert!(n > 0);
        let wires = (0..n)
            .map(|i| Signal::new(format!("{prefix}{i}")))
            .collect();
        let codes = (0..n).map(|i| BTreeSet::from([i])).collect();
        DataEncoding::new(wires, codes).expect("one-hot is an antichain")
    }

    /// The m-of-n encoding: every m-subset of n wires is a code, in
    /// lexicographic order. Encodes `C(n, m)` values with `n` wires.
    pub fn m_of_n(prefix: &str, m: usize, n: usize) -> Self {
        assert!(m > 0 && m <= n && n < 24, "sensible m-of-n shape");
        let wires: Vec<Signal> = (0..n)
            .map(|i| Signal::new(format!("{prefix}{i}")))
            .collect();
        let mut codes = Vec::new();
        let mut pick: Vec<usize> = (0..m).collect();
        loop {
            codes.push(pick.iter().copied().collect::<BTreeSet<usize>>());
            // next combination
            let mut i = m;
            loop {
                if i == 0 {
                    return DataEncoding::new(wires, codes)
                        .expect("equal-size codes are an antichain");
                }
                i -= 1;
                if pick[i] != i + n - m {
                    break;
                }
            }
            pick[i] += 1;
            for j in (i + 1)..m {
                pick[j] = pick[j - 1] + 1;
            }
        }
    }

    /// The wires of the encoding.
    pub fn wires(&self) -> &[Signal] {
        &self.wires
    }

    /// Number of encodable values.
    pub fn value_count(&self) -> usize {
        self.codes.len()
    }

    /// The wires raised for a value.
    ///
    /// # Errors
    ///
    /// [`EncodingError::ValueOutOfRange`] for bad indices.
    pub fn code(&self, value: usize) -> Result<Vec<Signal>, EncodingError> {
        let code = self
            .codes
            .get(value)
            .ok_or(EncodingError::ValueOutOfRange(value))?;
        Ok(code.iter().map(|&w| self.wires[w].clone()).collect())
    }

    /// Decodes a set of raised wires back to a value (None if the set is
    /// not exactly a code).
    pub fn decode(&self, raised: &BTreeSet<Signal>) -> Option<usize> {
        self.codes.iter().position(|code| {
            let wires: BTreeSet<Signal> = code.iter().map(|&w| self.wires[w].clone()).collect();
            &wires == raised
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_rail_two_bits() {
        let e = DataEncoding::dual_rail("d", 2);
        assert_eq!(e.wires().len(), 4);
        assert_eq!(e.value_count(), 4);
        // Value 0 = both false rails; value 3 = both true rails.
        let c0: BTreeSet<String> = e
            .code(0)
            .unwrap()
            .iter()
            .map(|s| s.name().to_owned())
            .collect();
        assert_eq!(c0, BTreeSet::from(["d0_f".to_owned(), "d1_f".to_owned()]));
        let c3: BTreeSet<String> = e
            .code(3)
            .unwrap()
            .iter()
            .map(|s| s.name().to_owned())
            .collect();
        assert_eq!(c3, BTreeSet::from(["d0_t".to_owned(), "d1_t".to_owned()]));
    }

    #[test]
    fn one_hot_codes() {
        let e = DataEncoding::one_hot("w", 3);
        assert_eq!(e.value_count(), 3);
        assert_eq!(e.code(1).unwrap().len(), 1);
        assert_eq!(e.code(1).unwrap()[0].name(), "w1");
    }

    #[test]
    fn two_of_four_counts() {
        let e = DataEncoding::m_of_n("w", 2, 4);
        assert_eq!(e.value_count(), 6); // C(4,2)
        for v in 0..6 {
            assert_eq!(e.code(v).unwrap().len(), 2);
        }
    }

    #[test]
    fn covering_codes_rejected() {
        let wires = vec![Signal::new("a"), Signal::new("b")];
        let err = DataEncoding::new(wires, vec![BTreeSet::from([0]), BTreeSet::from([0, 1])])
            .unwrap_err();
        assert_eq!(
            err,
            EncodingError::CodeCovers {
                covering: 1,
                covered: 0
            }
        );
    }

    #[test]
    fn empty_code_rejected() {
        let err = DataEncoding::new(vec![Signal::new("a")], vec![BTreeSet::new()]).unwrap_err();
        assert_eq!(err, EncodingError::EmptyCode(0));
    }

    #[test]
    fn wire_range_checked() {
        let err = DataEncoding::new(vec![Signal::new("a")], vec![BTreeSet::from([3])]).unwrap_err();
        assert_eq!(err, EncodingError::WireOutOfRange(3));
    }

    #[test]
    fn decode_roundtrip() {
        let e = DataEncoding::dual_rail("d", 2);
        for v in 0..4 {
            let raised: BTreeSet<Signal> = e.code(v).unwrap().into_iter().collect();
            assert_eq!(e.decode(&raised), Some(v));
        }
        assert_eq!(e.decode(&BTreeSet::new()), None);
    }

    #[test]
    fn value_out_of_range() {
        let e = DataEncoding::one_hot("w", 2);
        assert_eq!(e.code(5), Err(EncodingError::ValueOutOfRange(5)));
    }
}
