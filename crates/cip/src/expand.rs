//! Automatic expansion of abstract channel events into handshake
//! signalling (Section 3 of the paper).
//!
//! A send `c!v` becomes, for the 4-phase protocol,
//!
//! ```text
//! (… r_j+ …) → a_c+ → (… r_j− …) → a_c−      for all r_j ∈ code(v)
//! ```
//!
//! exactly as printed in the paper, where `code(v)` is the wire set of
//! the channel's data encoding (a lone request wire for control-only
//! channels). The receiver side mirrors the sequence with the wire
//! directions flipped: per-wire *trackers* follow the incoming rails, and
//! one completion transition per value emits the acknowledge when the
//! value's full code is high — the antichain property of the encoding
//! ("no code covers another") guarantees the completion is unambiguous.
//!
//! Because both sides are generated from the same channel spec, the
//! rendez-vous of the abstract model is preserved by construction — the
//! "correctness is ensured" claim of Section 3 — which the tests verify
//! by composing expanded systems and checking liveness and
//! receptiveness.

use crate::graph::{CipError, CipGraph, Link};
use crate::label::{ChanOp, Channel, CipLabel};
use crate::module::Module;
use cpn_petri::{Bounded, Budget, Meter, PlaceId, ReachabilityOptions, Sym, Verdict};
use cpn_stg::{Edge, Signal, SignalDir, Stg, StgError, StgLabel};
use std::collections::{BTreeMap, BTreeSet};

/// The handshake protocol channel events expand to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HandshakeProtocol {
    /// 4-phase return-to-zero: `r+ a+ r- a-`.
    FourPhase,
    /// 2-phase transition signalling: `r~ a~` (control-only channels).
    TwoPhase,
}

/// A per-module receptiveness verdict list: module name paired with
/// `Holds` / `Fails(report)` / `Unknown(budget spent)`.
pub type ModuleVerdicts = Vec<(String, Verdict<cpn_core::ReceptivenessReport<StgLabel>>)>;

/// The result of expanding a CIP: one STG per module, ready for the
/// circuit algebra.
#[derive(Clone, Debug)]
pub struct ExpandedSystem {
    names: Vec<String>,
    stgs: Vec<Stg>,
}

impl ExpandedSystem {
    /// The expanded module STGs, in module order.
    pub fn stgs(&self) -> &[Stg] {
        &self.stgs
    }

    /// Module names, in module order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Composes every module STG into the global system (Section 5.1's
    /// circuit-algebra composition, pairwise-folded).
    ///
    /// # Errors
    ///
    /// [`StgError`] on output collisions (cannot happen for validated
    /// CIPs) or net errors.
    pub fn compose_all(&self) -> Result<Stg, StgError> {
        match self.compose_all_bounded(&Budget::unlimited())? {
            Bounded::Complete(stg) => Ok(stg),
            // Unreachable: an unlimited budget is never exhausted.
            Bounded::Exhausted { partial, .. } => Ok(partial),
        }
    }

    /// Budget-aware pairwise fold: composes module STGs left to right,
    /// charging the places (as states) and transitions of the growing
    /// composition against `budget`.
    ///
    /// On exhaustion the partial value is the composition of the module
    /// prefix folded so far — still a well-formed STG, usable for
    /// partial diagnostics — together with the exploration statistics.
    ///
    /// # Errors
    ///
    /// [`StgError`] on output collisions (cannot happen for validated
    /// CIPs) or net errors.
    pub fn compose_all_bounded(&self, budget: &Budget) -> Result<Bounded<Stg>, StgError> {
        let mut meter = Meter::new(budget);
        let mut iter = self.stgs.iter();
        let Some(first) = iter.next() else {
            return Ok(meter.finish(Stg::new()));
        };
        let mut acc = first.clone();
        let mut charged = (0usize, 0usize);
        let charge = |meter: &mut Meter, stg: &Stg, charged: &mut (usize, usize)| -> bool {
            let mut ok = true;
            while charged.0 < stg.net().place_count() {
                ok &= meter.take_state();
                charged.0 += 1;
            }
            while charged.1 < stg.net().transition_count() {
                ok &= meter.take_transition();
                charged.1 += 1;
            }
            ok
        };
        charge(&mut meter, &acc, &mut charged);
        for stg in iter {
            if meter.is_stopped() {
                break;
            }
            acc = acc.compose(stg)?;
            charge(&mut meter, &acc, &mut charged);
        }
        Ok(meter.finish(acc))
    }

    /// Pairwise receptiveness verification (Propositions 5.5/5.6): each
    /// module is checked against the composition of all the others.
    ///
    /// Returns, per module, the failures in which that module is the
    /// producer. An empty report everywhere means the expanded system is
    /// consistent.
    ///
    /// # Errors
    ///
    /// Reachability budget and composition errors.
    pub fn verify_receptiveness(
        &self,
        options: &ReachabilityOptions,
    ) -> Result<Vec<(String, cpn_core::ReceptivenessReport<StgLabel>)>, CipError> {
        let budget = Budget::states(options.max_states);
        let mut out = Vec::new();
        for (name, verdict) in self.verify_receptiveness_bounded(&budget)? {
            match verdict {
                Verdict::Holds => out.push((
                    name,
                    cpn_core::ReceptivenessReport {
                        failures: Vec::new(),
                    },
                )),
                Verdict::Fails(report) => out.push((name, report)),
                Verdict::Unknown(info) => {
                    return Err(CipError::Inner(Box::new(
                        cpn_petri::PetriError::StateBudgetExceeded {
                            budget: info.budget.max_states,
                        },
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Budget-aware pairwise receptiveness: like
    /// [`verify_receptiveness`](Self::verify_receptiveness), but instead
    /// of failing hard when the composed state space outgrows the
    /// budget, the affected module gets [`Verdict::Unknown`] carrying
    /// the partial exploration statistics; every other module still gets
    /// its definite verdict.
    ///
    /// # Errors
    ///
    /// Composition errors only — budget exhaustion is a verdict, not an
    /// error.
    pub fn verify_receptiveness_bounded(
        &self,
        budget: &Budget,
    ) -> Result<ModuleVerdicts, CipError> {
        let mut out = Vec::new();
        for i in 0..self.stgs.len() {
            let module = &self.stgs[i];
            // Compose the rest.
            let mut rest: Option<Stg> = None;
            for (j, stg) in self.stgs.iter().enumerate() {
                if j == i {
                    continue;
                }
                rest = Some(match rest {
                    None => stg.clone(),
                    Some(acc) => acc.compose(stg).map_err(inner)?,
                });
            }
            let Some(rest) = rest else {
                out.push((self.names[i].clone(), Verdict::Holds));
                continue;
            };
            let outs = |stg: &Stg| -> BTreeSet<StgLabel> {
                stg.net()
                    .alphabet()
                    .iter()
                    .filter(|l| {
                        l.signal_name().is_some_and(|s| {
                            stg.signals().get(s).copied().unwrap_or(SignalDir::Input)
                                != SignalDir::Input
                        })
                    })
                    .cloned()
                    .collect()
            };
            let verdict = cpn_core::check_receptiveness_bounded(
                module.net(),
                rest.net(),
                &outs(module),
                &outs(&rest),
                budget,
            )
            .map_err(inner)?;
            out.push((self.names[i].clone(), verdict));
        }
        Ok(out)
    }

    /// Compositional reduction of one module against the rest of the
    /// expanded system (Section 6's derivation shape: the translator is
    /// reduced against the composition of its environment modules).
    /// Composes every *other* module STG, then runs
    /// [`Stg::reduce_against`] — compose, dead-removal, single-pass
    /// engine projection onto the module's own signals, cleanup — so the
    /// whole derivation executes on the contraction engine.
    ///
    /// # Errors
    ///
    /// [`CipError::UnknownModule`] for an out-of-range index;
    /// composition, reachability-budget and hiding (divergence) errors
    /// via [`CipError::Inner`].
    pub fn reduce_module_against_rest(
        &self,
        i: usize,
        options: &ReachabilityOptions,
        hide_budget: usize,
    ) -> Result<Stg, CipError> {
        let Some(module) = self.stgs.get(i) else {
            return Err(CipError::UnknownModule(i));
        };
        let mut rest: Option<Stg> = None;
        for (j, stg) in self.stgs.iter().enumerate() {
            if j == i {
                continue;
            }
            rest = Some(match rest {
                None => stg.clone(),
                Some(acc) => acc.compose(stg).map_err(inner)?,
            });
        }
        let Some(rest) = rest else {
            // Nothing to reduce against: the module is the whole system.
            return Ok(module.clone());
        };
        module
            .reduce_against(&rest, options, hide_budget)
            .map_err(inner)
    }
}

fn inner(e: impl std::error::Error + Send + Sync + 'static) -> CipError {
    CipError::Inner(Box::new(e))
}

/// The role a module plays on a channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Role {
    Sender,
    Receiver,
}

/// Per-channel wire bundle derived from the spec.
#[derive(Clone, Debug)]
struct ChannelWires {
    /// Request/data wires, indexed by the encoding's wire order (a lone
    /// `c_req` wire for control channels).
    data: Vec<Signal>,
    /// Codes per value (a single full set for control channels).
    codes: Vec<BTreeSet<usize>>,
    /// The acknowledge wire `c_ack`.
    ack: Signal,
}

/// The channel tables of a graph: wire bundles per channel symbol and
/// the role each `(module index, channel)` pair plays.
type ChannelTables = (BTreeMap<Sym, ChannelWires>, BTreeMap<(usize, Sym), Role>);

impl CipGraph {
    /// Expands every module, mapping channel events to handshake
    /// signalling per the protocol.
    ///
    /// # Errors
    ///
    /// Validation errors ([`CipGraph::validate`] is run first), plus:
    /// data channels under [`HandshakeProtocol::TwoPhase`] and plain
    /// sends (`c!` without a value) on data channels are rejected.
    pub fn expand(&self, protocol: HandshakeProtocol) -> Result<ExpandedSystem, CipError> {
        self.validate()?;
        let (wires, roles) = self.channel_tables(protocol)?;

        let mut stgs = Vec::new();
        let mut names = Vec::new();
        for (mi, module) in self.modules().iter().enumerate() {
            stgs.push(expand_module(module, mi, &wires, &roles, protocol)?);
            names.push(module.name().to_owned());
        }
        Ok(ExpandedSystem { names, stgs })
    }

    /// [`CipGraph::expand`] with per-module memoization: modules whose
    /// expansion fingerprint (net, place/transition numbering, signal
    /// declarations, channel wire bundles and roles, protocol) is
    /// already in `cache` reuse the cached STG instead of re-running
    /// the expansion — re-expanding a large system after a one-module
    /// edit only pays for the edited module.
    ///
    /// # Errors
    ///
    /// Exactly those of [`CipGraph::expand`]; errors are never cached.
    pub fn expand_cached(
        &self,
        protocol: HandshakeProtocol,
        cache: &mut ExpandCache,
    ) -> Result<ExpandedSystem, CipError> {
        self.validate()?;
        let (wires, roles) = self.channel_tables(protocol)?;

        let mut stgs = Vec::new();
        let mut names = Vec::new();
        for (mi, module) in self.modules().iter().enumerate() {
            let key = module_fingerprint(module, mi, &wires, &roles, protocol);
            match cache.map.get(&key) {
                Some(stg) => {
                    cache.hits += 1;
                    stgs.push(Stg::clone(stg));
                }
                None => {
                    let stg = expand_module(module, mi, &wires, &roles, protocol)?;
                    cache.misses += 1;
                    cache.map.insert(key, std::sync::Arc::new(stg.clone()));
                    stgs.push(stg);
                }
            }
            names.push(module.name().to_owned());
        }
        Ok(ExpandedSystem { names, stgs })
    }

    /// Wire bundles per channel (keyed by the channel's interned
    /// symbol, so expansion-time lookups are integer-keyed) and the
    /// role each module plays on each channel.
    fn channel_tables(&self, protocol: HandshakeProtocol) -> Result<ChannelTables, CipError> {
        let mut wires: BTreeMap<Sym, ChannelWires> = BTreeMap::new();
        let mut roles: BTreeMap<(usize, Sym), Role> = BTreeMap::new();
        for e in self.edges() {
            if let Link::Channel(spec) = &e.link {
                let bundle = match &spec.encoding {
                    None => ChannelWires {
                        data: vec![Signal::new(format!("{}_req", spec.channel))],
                        codes: vec![BTreeSet::from([0])],
                        ack: Signal::new(format!("{}_ack", spec.channel)),
                    },
                    Some(enc) => {
                        if protocol == HandshakeProtocol::TwoPhase {
                            return Err(CipError::ChannelMismatch(format!(
                                "data channel {} cannot use 2-phase signalling",
                                spec.channel
                            )));
                        }
                        ChannelWires {
                            data: enc.wires().to_vec(),
                            codes: (0..enc.value_count())
                                .map(|v| {
                                    enc.code(v)
                                        .expect("validated value")
                                        .iter()
                                        .map(|w| {
                                            enc.wires()
                                                .iter()
                                                .position(|x| x == w)
                                                .expect("own wire")
                                        })
                                        .collect()
                                })
                                .collect(),
                            ack: Signal::new(format!("{}_ack", spec.channel)),
                        }
                    }
                };
                wires.insert(spec.channel.sym(), bundle);
                roles.insert((e.from, spec.channel.sym()), Role::Sender);
                roles.insert((e.to, spec.channel.sym()), Role::Receiver);
            }
        }
        Ok((wires, roles))
    }
}

/// Memo of per-module expansions, keyed on a 128-bit FNV fingerprint
/// of everything the (private) module expander reads: the module net's structural
/// [`NetId`](cpn_petri::NetId) *plus* its as-built numbering (place
/// names in `PlaceId` order, transition labels and arc lists in
/// `TransitionId` order — generated STG place names embed transition
/// indices, so isomorphic-but-renumbered modules must not share an
/// entry), the signal declarations, the wire bundle and role of every
/// channel the module touches, and the protocol.
///
/// Shareable across [`CipGraph`]s: a fingerprint hit from a different
/// graph is sound because the fingerprint covers the full input of the
/// pure function `expand_module`.
#[derive(Debug, Default)]
pub struct ExpandCache {
    map: std::collections::HashMap<u128, std::sync::Arc<Stg>>,
    hits: u64,
    misses: u64,
}

impl ExpandCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Distinct module expansions resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// See [`ExpandCache`] for what the fingerprint must cover and why.
fn module_fingerprint(
    module: &Module,
    mi: usize,
    wires: &BTreeMap<Sym, ChannelWires>,
    roles: &BTreeMap<(usize, Sym), Role>,
    protocol: HandshakeProtocol,
) -> u128 {
    use cpn_petri::hash::Fnv128;

    let mut h = Fnv128::new();
    h.write(&[match protocol {
        HandshakeProtocol::FourPhase => 4,
        HandshakeProtocol::TwoPhase => 2,
    }]);
    let net = module.net();
    h.write(&net.net_id().as_u128().to_le_bytes());
    // As-built numbering on top of the structural id (see type docs).
    let m0 = net.initial_marking();
    for (pid, place) in net.places() {
        h.write_len_prefixed(place.name().as_bytes());
        h.write_u32(m0.tokens(pid));
    }
    for (tid, t) in net.transitions() {
        h.write_len_prefixed(net.label_of(tid).to_string().as_bytes());
        h.write_u64(t.preset().len() as u64);
        for p in t.preset() {
            h.write_u64(p.index() as u64);
        }
        h.write_u64(t.postset().len() as u64);
        for p in t.postset() {
            h.write_u64(p.index() as u64);
        }
    }
    for (s, dir) in module.signals() {
        h.write_len_prefixed(s.name().as_bytes());
        h.write(&[match dir {
            SignalDir::Input => 0xA0,
            SignalDir::Output => 0xA1,
            SignalDir::Internal => 0xA2,
        }]);
    }
    let mut channels: BTreeSet<Channel> = module.sends();
    channels.extend(module.receives());
    for c in &channels {
        h.write_len_prefixed(c.name().as_bytes());
        h.write(&[match roles[&(mi, c.sym())] {
            Role::Sender => 0xB0,
            Role::Receiver => 0xB1,
        }]);
        let bundle = &wires[&c.sym()];
        h.write_u64(bundle.data.len() as u64);
        for w in &bundle.data {
            h.write_len_prefixed(w.name().as_bytes());
        }
        h.write_u64(bundle.codes.len() as u64);
        for code in &bundle.codes {
            h.write_u64(code.len() as u64);
            for &wi in code {
                h.write_u64(wi as u64);
            }
        }
        h.write_len_prefixed(bundle.ack.name().as_bytes());
    }
    h.finish()
}

fn expand_module(
    module: &Module,
    mi: usize,
    wires: &BTreeMap<Sym, ChannelWires>,
    roles: &BTreeMap<(usize, Sym), Role>,
    protocol: HandshakeProtocol,
) -> Result<Stg, CipError> {
    let mut stg = Stg::new();

    // Original signal declarations.
    for (s, &dir) in module.signals() {
        stg.try_add_signal(s.name(), dir).map_err(inner)?;
    }

    // Channel wires this module touches, with role-dependent directions.
    let mut my_channels: BTreeSet<Channel> = module.sends();
    my_channels.extend(module.receives());
    for c in &my_channels {
        let bundle = &wires[&c.sym()];
        let role = roles[&(mi, c.sym())];
        let (data_dir, ack_dir) = match role {
            Role::Sender => (SignalDir::Output, SignalDir::Input),
            Role::Receiver => (SignalDir::Input, SignalDir::Output),
        };
        for w in &bundle.data {
            stg.try_add_signal(w.name(), data_dir).map_err(inner)?;
        }
        stg.try_add_signal(bundle.ack.name(), ack_dir)
            .map_err(inner)?;
    }

    // Copy places.
    let mut place_map: BTreeMap<PlaceId, PlaceId> = BTreeMap::new();
    let m0 = module.net().initial_marking();
    for (old, place) in module.net().places() {
        let new = stg.add_place(place.name().to_owned());
        stg.set_initial(new, m0.tokens(old));
        place_map.insert(old, new);
    }

    // Receiver-side wire trackers (once per received channel).
    // tracker[(channel sym, wire)] = (low place, high place)
    let mut tracker: BTreeMap<(Sym, usize), (PlaceId, PlaceId)> = BTreeMap::new();
    if protocol == HandshakeProtocol::FourPhase {
        for c in &module.receives() {
            let bundle = &wires[&c.sym()];
            for (wi, w) in bundle.data.iter().enumerate() {
                let lo = stg.add_place(format!("{c}.{w}.lo"));
                let hi = stg.add_place(format!("{c}.{w}.hi"));
                stg.set_initial(lo, 1);
                stg.add_signal_transition([lo], (w.clone(), Edge::Rise), [hi])
                    .map_err(inner)?;
                stg.add_signal_transition([hi], (w.clone(), Edge::Fall), [lo])
                    .map_err(inner)?;
                tracker.insert((c.sym(), wi), (lo, hi));
            }
        }
    }

    // Transitions.
    for (tid, t) in module.net().transitions() {
        let pre: Vec<PlaceId> = t.preset().iter().map(|p| place_map[p]).collect();
        let post: Vec<PlaceId> = t.postset().iter().map(|p| place_map[p]).collect();
        match module.net().label_of(tid) {
            CipLabel::Signal(s, e) => {
                stg.add_signal_transition(pre, (s.clone(), *e), post)
                    .map_err(inner)?;
            }
            CipLabel::Dummy => {
                stg.add_dummy(pre, post).map_err(inner)?;
            }
            CipLabel::Chan(c, op) => {
                let bundle = &wires[&c.sym()];
                match (op, protocol) {
                    (ChanOp::Send(v), HandshakeProtocol::FourPhase) => {
                        let value = match (v, bundle.codes.len()) {
                            (Some(v), _) => *v,
                            (None, 1) => 0,
                            (None, _) => {
                                return Err(CipError::ChannelMismatch(format!(
                                    "plain send on data channel {c} needs a value"
                                )))
                            }
                        };
                        expand_send_4ph(&mut stg, tid.index(), &pre, &post, bundle, value)
                            .map_err(inner)?;
                    }
                    (ChanOp::Recv(sel), HandshakeProtocol::FourPhase) => {
                        let values: Vec<usize> = match sel {
                            Some(v) => vec![*v],
                            None => (0..bundle.codes.len()).collect(),
                        };
                        expand_recv_4ph(
                            &mut stg,
                            tid.index(),
                            &pre,
                            &post,
                            c,
                            bundle,
                            &values,
                            &tracker,
                        )
                        .map_err(inner)?;
                    }
                    (ChanOp::Send(_), HandshakeProtocol::TwoPhase) => {
                        let req = bundle.data[0].clone();
                        let mid = stg.add_place(format!("t{}.2ph", tid.index()));
                        stg.add_signal_transition(pre, (req, Edge::Toggle), [mid])
                            .map_err(inner)?;
                        stg.add_signal_transition([mid], (bundle.ack.clone(), Edge::Toggle), post)
                            .map_err(inner)?;
                    }
                    (ChanOp::Recv(_), HandshakeProtocol::TwoPhase) => {
                        let req = bundle.data[0].clone();
                        let mid = stg.add_place(format!("t{}.2ph", tid.index()));
                        stg.add_signal_transition(pre, (req, Edge::Toggle), [mid])
                            .map_err(inner)?;
                        stg.add_signal_transition([mid], (bundle.ack.clone(), Edge::Toggle), post)
                            .map_err(inner)?;
                    }
                }
            }
        }
    }

    Ok(stg)
}

/// Sender side, 4-phase: fork to the code wires, raise them, wait for
/// ack+, lower them, wait for ack−.
fn expand_send_4ph(
    stg: &mut Stg,
    tid: usize,
    pre: &[PlaceId],
    post: &[PlaceId],
    bundle: &ChannelWires,
    value: usize,
) -> Result<(), StgError> {
    let code: Vec<usize> = bundle.codes[value].iter().copied().collect();
    let ack = bundle.ack.clone();

    // Rise phase.
    let mut hi_places = Vec::new();
    if code.len() == 1 {
        let w = bundle.data[code[0]].clone();
        let hi = stg.add_place(format!("t{tid}.hi"));
        stg.add_signal_transition(pre.iter().copied(), (w, Edge::Rise), [hi])?;
        hi_places.push(hi);
    } else {
        let mut ups = Vec::new();
        for &wi in &code {
            ups.push(stg.add_place(format!("t{tid}.up.{wi}")));
        }
        stg.add_dummy(pre.iter().copied(), ups.clone())?;
        for (k, &wi) in code.iter().enumerate() {
            let w = bundle.data[wi].clone();
            let hi = stg.add_place(format!("t{tid}.hi.{wi}"));
            stg.add_signal_transition([ups[k]], (w, Edge::Rise), [hi])?;
            hi_places.push(hi);
        }
    }

    // Ack+ joins the rises, forks the falls.
    let mut dn_places = Vec::new();
    for &wi in &code {
        dn_places.push(stg.add_place(format!("t{tid}.dn.{wi}")));
    }
    stg.add_signal_transition(hi_places, (ack.clone(), Edge::Rise), dn_places.clone())?;

    // Fall phase.
    let mut lo_places = Vec::new();
    for (k, &wi) in code.iter().enumerate() {
        let w = bundle.data[wi].clone();
        let lo = stg.add_place(format!("t{tid}.lo.{wi}"));
        stg.add_signal_transition([dn_places[k]], (w, Edge::Fall), [lo])?;
        lo_places.push(lo);
    }

    // Ack− completes the transaction.
    stg.add_signal_transition(lo_places, (ack, Edge::Fall), post.iter().copied())?;
    Ok(())
}

/// Receiver side, 4-phase: one completion (`ack+`) per accepted value,
/// reading the tracker high places of its code (self-loops), then `ack−`
/// once the code wires returned low.
#[allow(clippy::too_many_arguments)]
fn expand_recv_4ph(
    stg: &mut Stg,
    tid: usize,
    pre: &[PlaceId],
    post: &[PlaceId],
    channel: &Channel,
    bundle: &ChannelWires,
    values: &[usize],
    tracker: &BTreeMap<(Sym, usize), (PlaceId, PlaceId)>,
) -> Result<(), StgError> {
    let ack = bundle.ack.clone();
    for &v in values {
        let code: Vec<usize> = bundle.codes[v].iter().copied().collect();
        let mid = stg.add_place(format!("t{tid}.got.{v}"));
        // ack+ when the full code is high (read arcs on the trackers).
        let mut plus_pre: Vec<PlaceId> = pre.to_vec();
        let mut plus_post: Vec<PlaceId> = vec![mid];
        for &wi in &code {
            let (_, hi) = tracker[&(channel.sym(), wi)];
            plus_pre.push(hi);
            plus_post.push(hi);
        }
        stg.add_signal_transition(plus_pre, (ack.clone(), Edge::Rise), plus_post)?;
        // ack− once the code wires are low again.
        let mut minus_pre: Vec<PlaceId> = vec![mid];
        let mut minus_post: Vec<PlaceId> = post.to_vec();
        for &wi in &code {
            let (lo, _) = tracker[&(channel.sym(), wi)];
            minus_pre.push(lo);
            minus_post.push(lo);
        }
        stg.add_signal_transition(minus_pre, (ack.clone(), Edge::Fall), minus_post)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::DataEncoding;
    use crate::graph::ChannelSpec;

    fn control_pair() -> CipGraph {
        let mut tx = Module::new("tx");
        let p = tx.add_place("p");
        tx.add_send([p], "go", None, [p]).unwrap();
        tx.set_initial(p, 1);
        let mut rx = Module::new("rx");
        let r = rx.add_place("r");
        rx.add_recv([r], "go", [r]).unwrap();
        rx.set_initial(r, 1);
        let mut g = CipGraph::new();
        let a = g.add_module(tx);
        let b = g.add_module(rx);
        g.add_channel_edge(a, b, ChannelSpec::control("go"))
            .unwrap();
        g
    }

    #[test]
    fn four_phase_control_channel_is_live_and_safe() {
        let sys = control_pair().expand(HandshakeProtocol::FourPhase).unwrap();
        let composed = sys.compose_all().unwrap();
        let rep = composed.classical_report(&Default::default()).unwrap();
        assert!(
            rep.live,
            "expanded handshake must be live:\n{}",
            composed.net()
        );
        assert!(rep.safe);
    }

    #[test]
    fn four_phase_handshake_order() {
        let sys = control_pair().expand(HandshakeProtocol::FourPhase).unwrap();
        let composed = sys.compose_all().unwrap();
        let lang = composed.language(4, 100_000).unwrap();
        let seq: Vec<StgLabel> = vec![
            StgLabel::signal("go_req", Edge::Rise),
            StgLabel::signal("go_ack", Edge::Rise),
            StgLabel::signal("go_req", Edge::Fall),
            StgLabel::signal("go_ack", Edge::Fall),
        ];
        assert!(lang.contains(&seq), "r+ a+ r- a- must be a trace: {lang}");
        // The paper's order is enforced: ack before request is impossible.
        assert!(!lang.contains(&[StgLabel::signal("go_ack", Edge::Rise)][..]));
    }

    #[test]
    fn two_phase_control_channel() {
        let sys = control_pair().expand(HandshakeProtocol::TwoPhase).unwrap();
        let composed = sys.compose_all().unwrap();
        let lang = composed.language(2, 10_000).unwrap();
        assert!(lang.contains(
            &[
                StgLabel::signal("go_req", Edge::Toggle),
                StgLabel::signal("go_ack", Edge::Toggle),
            ][..]
        ));
        let rep = composed.classical_report(&Default::default()).unwrap();
        assert!(rep.live && rep.safe);
    }

    fn data_pair(selective: bool) -> CipGraph {
        let mut tx = Module::new("tx");
        let p = tx.add_place("p");
        let q = tx.add_place("q");
        tx.add_send([p], "d", Some(1), [q]).unwrap();
        tx.add_send([q], "d", Some(0), [p]).unwrap();
        tx.set_initial(p, 1);
        let mut rx = Module::new("rx");
        let r = rx.add_place("r");
        if selective {
            let s = rx.add_place("s");
            rx.add_recv_case([r], "d", 1, [s]).unwrap();
            rx.add_recv_case([s], "d", 0, [r]).unwrap();
        } else {
            rx.add_recv([r], "d", [r]).unwrap();
        }
        rx.set_initial(r, 1);
        let mut g = CipGraph::new();
        let a = g.add_module(tx);
        let b = g.add_module(rx);
        g.add_channel_edge(
            a,
            b,
            ChannelSpec::data("d", DataEncoding::dual_rail("d", 1)),
        )
        .unwrap();
        g
    }

    #[test]
    fn dual_rail_data_channel_runs() {
        let sys = data_pair(false)
            .expand(HandshakeProtocol::FourPhase)
            .unwrap();
        // The fusion cross-product leaves dead duplicates (Section 5.2);
        // prune them before judging liveness.
        let composed = sys
            .compose_all()
            .unwrap()
            .remove_dead(&Default::default())
            .unwrap();
        let rep = composed.classical_report(&Default::default()).unwrap();
        assert!(rep.live, "dual-rail transaction loop must be live");
        assert!(rep.safe);
        // Value 1 raises the true rail first.
        let lang = composed.language(2, 100_000).unwrap();
        assert!(lang.contains(
            &[
                StgLabel::signal("d0_t", Edge::Rise),
                StgLabel::signal("d_ack", Edge::Rise),
            ][..]
        ));
        assert!(
            !lang.contains(&[StgLabel::signal("d0_f", Edge::Rise)][..]),
            "value 1 must not raise the false rail first"
        );
    }

    #[test]
    fn selective_receive_routes_on_value() {
        let sys = data_pair(true)
            .expand(HandshakeProtocol::FourPhase)
            .unwrap();
        let composed = sys
            .compose_all()
            .unwrap()
            .remove_dead(&Default::default())
            .unwrap();
        let rep = composed.classical_report(&Default::default()).unwrap();
        assert!(rep.live, "selective receive in phase with sender is live");
    }

    #[test]
    fn two_phase_data_rejected() {
        let err = data_pair(false)
            .expand(HandshakeProtocol::TwoPhase)
            .unwrap_err();
        assert!(matches!(err, CipError::ChannelMismatch(_)));
    }

    #[test]
    fn expanded_system_is_receptive() {
        let sys = control_pair().expand(HandshakeProtocol::FourPhase).unwrap();
        let reports = sys
            .verify_receptiveness(&ReachabilityOptions::default())
            .unwrap();
        for (name, rep) in &reports {
            assert!(rep.is_receptive(), "module {name}: {:?}", rep.failures);
        }
    }

    #[test]
    fn wire_directions_assigned_by_role() {
        let sys = control_pair().expand(HandshakeProtocol::FourPhase).unwrap();
        let tx = &sys.stgs()[0];
        let rx = &sys.stgs()[1];
        assert_eq!(tx.signals()[&Signal::new("go_req")], SignalDir::Output);
        assert_eq!(tx.signals()[&Signal::new("go_ack")], SignalDir::Input);
        assert_eq!(rx.signals()[&Signal::new("go_req")], SignalDir::Input);
        assert_eq!(rx.signals()[&Signal::new("go_ack")], SignalDir::Output);
    }

    #[test]
    fn plain_send_on_data_channel_rejected() {
        let mut tx = Module::new("tx");
        let p = tx.add_place("p");
        tx.add_send([p], "d", None, [p]).unwrap();
        tx.set_initial(p, 1);
        let mut rx = Module::new("rx");
        let r = rx.add_place("r");
        rx.add_recv([r], "d", [r]).unwrap();
        let mut g = CipGraph::new();
        let a = g.add_module(tx);
        let b = g.add_module(rx);
        g.add_channel_edge(a, b, ChannelSpec::data("d", DataEncoding::one_hot("w", 2)))
            .unwrap();
        let err = g.expand(HandshakeProtocol::FourPhase).unwrap_err();
        assert!(matches!(err, CipError::ChannelMismatch(_)));
    }

    /// Structural equality of STGs for the cache tests: same canonical
    /// net bytes, same signal declarations.
    fn assert_stgs_equivalent(a: &Stg, b: &Stg, what: &str) {
        assert_eq!(
            cpn_petri::canonical_form(a.net()),
            cpn_petri::canonical_form(b.net()),
            "{what}: nets differ"
        );
        assert_eq!(a.signals(), b.signals(), "{what}: signals differ");
    }

    #[test]
    fn expand_cached_matches_expand() {
        for protocol in [HandshakeProtocol::FourPhase, HandshakeProtocol::TwoPhase] {
            let g = control_pair();
            let plain = g.expand(protocol).unwrap();
            let mut cache = ExpandCache::new();
            let cached = g.expand_cached(protocol, &mut cache).unwrap();
            assert_eq!(plain.names(), cached.names());
            for (i, (a, b)) in plain.stgs().iter().zip(cached.stgs()).enumerate() {
                assert_stgs_equivalent(a, b, &format!("{protocol:?} module {i}"));
            }
            assert_eq!(cache.stats(), (0, 2), "first expansion misses per module");
        }
    }

    #[test]
    fn re_expansion_hits_per_module() {
        let g = control_pair();
        let mut cache = ExpandCache::new();
        let first = g
            .expand_cached(HandshakeProtocol::FourPhase, &mut cache)
            .unwrap();
        let second = g
            .expand_cached(HandshakeProtocol::FourPhase, &mut cache)
            .unwrap();
        assert_eq!(cache.stats(), (2, 2), "second expansion is all hits");
        for (i, (a, b)) in first.stgs().iter().zip(second.stgs()).enumerate() {
            assert_stgs_equivalent(a, b, &format!("replay module {i}"));
        }
        // The two protocols never share entries.
        let _ = g
            .expand_cached(HandshakeProtocol::TwoPhase, &mut cache)
            .unwrap();
        assert_eq!(cache.stats(), (2, 4));
    }

    #[test]
    fn one_module_edit_re_expands_only_that_module() {
        // Build the same two-module system twice; the second build
        // edits rx (one extra internal place) and must only pay for rx.
        let build = |edit_rx: bool| {
            let mut tx = Module::new("tx");
            let p = tx.add_place("p");
            tx.add_send([p], "go", None, [p]).unwrap();
            tx.set_initial(p, 1);
            let mut rx = Module::new("rx");
            let r = rx.add_place("r");
            rx.add_recv([r], "go", [r]).unwrap();
            rx.set_initial(r, 1);
            if edit_rx {
                rx.add_place("scratch");
            }
            let mut g = CipGraph::new();
            let a = g.add_module(tx);
            let b = g.add_module(rx);
            g.add_channel_edge(a, b, ChannelSpec::control("go"))
                .unwrap();
            g
        };
        let mut cache = ExpandCache::new();
        build(false)
            .expand_cached(HandshakeProtocol::FourPhase, &mut cache)
            .unwrap();
        assert_eq!(cache.stats(), (0, 2));
        build(true)
            .expand_cached(HandshakeProtocol::FourPhase, &mut cache)
            .unwrap();
        let (hits, misses) = cache.stats();
        assert_eq!(hits, 1, "untouched tx must hit");
        assert_eq!(misses, 3, "edited rx must re-expand");
    }
}
