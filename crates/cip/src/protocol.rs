//! The Section 6 design example at the **CIP level**: the same
//! sender / protocol-translator / receiver system, but specified with
//! abstract channels instead of hand-written 4-phase signalling.
//!
//! This is the paper's first remedy for the Figure 8 inconsistency
//! ("simply avoid such problems by using abstract communication instead
//! of signal-level communication"): the designer writes `cmd!rec`,
//! `out!start`, … and the expansion of Section 3 produces the handshake
//! wires with rendez-vous correctness by construction. The wire bundles
//! use the Table 1 dual-rail-style pair encoding, so the expanded system
//! speaks (a mechanically derived variant of) the same wire protocol as
//! the hand-written STGs in `cpn_stg::protocol`.

use crate::encoding::DataEncoding;
use crate::graph::{ChannelSpec, CipError, CipGraph};
use crate::module::Module;
use cpn_stg::{Edge, SignalDir};
use std::collections::BTreeSet;

/// Command values on the `cmd` channel (sender → translator), in Table
/// 1(a) order.
pub const CMD_VALUES: [&str; 4] = ["rec", "reset", "send0", "send1"];

/// Command values on the `out` channel (translator → receiver), in Table
/// 1(b) order.
pub const OUT_VALUES: [&str; 4] = ["start", "mute", "zero", "one"];

/// The Table 1(a) wire encoding of the `cmd` channel: wires
/// `a0, a1, b0, b1`; each command raises one `a` and one `b` wire.
pub fn cmd_encoding() -> DataEncoding {
    let wires = ["a0", "a1", "b0", "b1"]
        .iter()
        .map(|w| cpn_stg::Signal::new(*w))
        .collect();
    // rec={a0,b0}, reset={a0,b1}, send0={a1,b0}, send1={a1,b1}
    let codes = vec![
        BTreeSet::from([0, 2]),
        BTreeSet::from([0, 3]),
        BTreeSet::from([1, 2]),
        BTreeSet::from([1, 3]),
    ];
    DataEncoding::new(wires, codes).expect("Table 1(a) codes form an antichain")
}

/// The Table 1(b) wire encoding of the `out` channel: wires
/// `p0, p1, q0, q1`.
pub fn out_encoding() -> DataEncoding {
    let wires = ["p0", "p1", "q0", "q1"]
        .iter()
        .map(|w| cpn_stg::Signal::new(*w))
        .collect();
    let codes = vec![
        BTreeSet::from([0, 2]),
        BTreeSet::from([0, 3]),
        BTreeSet::from([1, 2]),
        BTreeSet::from([1, 3]),
    ];
    DataEncoding::new(wires, codes).expect("Table 1(b) codes form an antichain")
}

/// The CIP sender: on each environment toggle command, sends the
/// corresponding value on `cmd`.
pub fn sender() -> Module {
    let mut m = Module::new("sender");
    let idle = m.add_place("idle");
    m.set_initial(idle, 1);
    for (v, cmd) in CMD_VALUES.iter().enumerate() {
        let sig = m.add_signal(*cmd, SignalDir::Input);
        let got = m.add_place(format!("{cmd}.got"));
        m.add_signal_transition([idle], &sig, Edge::Toggle, [got])
            .expect("sender");
        m.add_send([got], "cmd", Some(v), [idle]).expect("sender");
    }
    m
}

/// The restricted CIP sender (Figure 9a): never sends `rec`.
pub fn sender_restricted() -> Module {
    let mut m = Module::new("sender_restricted");
    let idle = m.add_place("idle");
    m.set_initial(idle, 1);
    for (v, cmd) in CMD_VALUES.iter().enumerate().skip(1) {
        let sig = m.add_signal(*cmd, SignalDir::Input);
        let got = m.add_place(format!("{cmd}.got"));
        m.add_signal_transition([idle], &sig, Edge::Toggle, [got])
            .expect("sender");
        m.add_send([got], "cmd", Some(v), [idle]).expect("sender");
    }
    m
}

/// The CIP translator: first sends `start`; then routes commands. The
/// `rec` response abstracts the `DATA`/`STROBE` sampling as a free
/// choice among the four receiver commands (the signal-level model in
/// `cpn_stg::protocol` refines this with stable/unstable transitions and
/// boolean guards).
pub fn translator() -> Module {
    let mut m = Module::new("translator");
    let init = m.add_place("init");
    let wait = m.add_place("wait");
    m.set_initial(init, 1);
    m.add_send([init], "out", Some(0), [wait])
        .expect("translator"); // start

    // reset → start, send0 → zero, send1 → one.
    for (cmd_v, out_v) in [(1usize, 0usize), (2, 2), (3, 3)] {
        let got = m.add_place(format!("got{cmd_v}"));
        m.add_recv_case([wait], "cmd", cmd_v, [got])
            .expect("translator");
        m.add_send([got], "out", Some(out_v), [wait])
            .expect("translator");
    }
    // rec → sample the lines (abstracted as free choice over responses).
    let got_rec = m.add_place("got_rec");
    m.add_recv_case([wait], "cmd", 0, [got_rec])
        .expect("translator");
    for out_v in 0..OUT_VALUES.len() {
        let sel = m.add_place(format!("rec.sel{out_v}"));
        m.add_dummy([got_rec], [sel]).expect("translator");
        m.add_send([sel], "out", Some(out_v), [wait])
            .expect("translator");
    }
    m
}

/// The CIP receiver: each received value toggles the corresponding
/// environment wire.
pub fn receiver() -> Module {
    let mut m = Module::new("receiver");
    let wait = m.add_place("wait");
    m.set_initial(wait, 1);
    for (v, cmd) in OUT_VALUES.iter().enumerate() {
        let sig = m.add_signal(*cmd, SignalDir::Output);
        let got = m.add_place(format!("{cmd}.got"));
        m.add_recv_case([wait], "out", v, [got]).expect("receiver");
        m.add_signal_transition([got], &sig, Edge::Toggle, [wait])
            .expect("receiver");
    }
    m
}

/// Assembles the full CIP graph of Figure 4 (sender, translator,
/// receiver; channels `cmd` and `out` with the Table 1 encodings).
///
/// # Errors
///
/// Graph construction errors (none for the canonical assembly).
pub fn protocol_cip() -> Result<CipGraph, CipError> {
    let mut g = CipGraph::new();
    let s = g.add_module(sender());
    let t = g.add_module(translator());
    let r = g.add_module(receiver());
    g.add_channel_edge(s, t, ChannelSpec::data("cmd", cmd_encoding()))?;
    g.add_channel_edge(t, r, ChannelSpec::data("out", out_encoding()))?;
    g.validate()?;
    Ok(g)
}

/// Assembles the restricted variant (Figure 9a sender).
///
/// # Errors
///
/// Graph construction errors (none for the canonical assembly).
pub fn protocol_cip_restricted() -> Result<CipGraph, CipError> {
    let mut g = CipGraph::new();
    let s = g.add_module(sender_restricted());
    let t = g.add_module(translator());
    let r = g.add_module(receiver());
    g.add_channel_edge(s, t, ChannelSpec::data("cmd", cmd_encoding()))?;
    g.add_channel_edge(t, r, ChannelSpec::data("out", out_encoding()))?;
    g.validate()?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::HandshakeProtocol;
    use cpn_petri::ReachabilityOptions;

    #[test]
    fn cip_graph_validates() {
        protocol_cip().unwrap();
        protocol_cip_restricted().unwrap();
    }

    #[test]
    fn table_1_codes_are_antichains() {
        assert_eq!(cmd_encoding().value_count(), 4);
        assert_eq!(out_encoding().value_count(), 4);
        // rec raises a0 and b0 (Table 1a, first row).
        let rec: Vec<String> = cmd_encoding()
            .code(0)
            .unwrap()
            .iter()
            .map(|s| s.name().to_owned())
            .collect();
        assert_eq!(rec, vec!["a0", "b0"]);
    }

    #[test]
    fn expanded_protocol_is_live_and_safe() {
        let sys = protocol_cip()
            .unwrap()
            .expand(HandshakeProtocol::FourPhase)
            .unwrap();
        let composed = sys
            .compose_all()
            .unwrap()
            .remove_dead(&ReachabilityOptions::default())
            .unwrap();
        let rg = composed
            .net()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        let an = composed.net().analysis(&rg);
        assert!(an.safe, "expanded CIP protocol must be safe");
        assert!(
            an.deadlock_free,
            "expanded CIP protocol must be deadlock-free"
        );
        assert!(an.dead_transitions().is_empty());
        // Only the translator's one-shot initial `start` transmission
        // (ε fork, two wire rises, ack+, two falls, ack−) is transient.
        assert_eq!(an.non_live_transitions().len(), 7);
    }

    #[test]
    fn expanded_protocol_is_receptive() {
        let sys = protocol_cip()
            .unwrap()
            .expand(HandshakeProtocol::FourPhase)
            .unwrap();
        let reports = sys
            .verify_receptiveness(&ReachabilityOptions::default())
            .unwrap();
        for (name, rep) in &reports {
            assert!(
                rep.is_receptive(),
                "module {name} failures: {:?}",
                rep.failures
            );
        }
    }
}
