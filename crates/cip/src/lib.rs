//! Communicating Interface Processes (CIP): the high-level model of
//! Section 3 of de Jong & Lin (DAC 1994).
//!
//! A CIP is a graph `(V, E)` whose vertices are labeled Petri nets (one
//! per interface module) and whose edges carry either plain **signals**
//! or abstract **channels**. Module actions extend signal transitions
//! with rendez-vous channel events: `c!` / `c!v` (send, possibly with a
//! value) and `c?` (receive). Because the events are abstract, the
//! designer cannot mis-specify the low-level protocol — the events are
//! **expanded automatically** to handshake signalling:
//!
//! * control-only channels — 4-phase (`r+ a+ r- a-`) or 2-phase
//!   (`r~ a~`) request/acknowledge;
//! * data channels — an unordered code per value (dual-rail, one-hot,
//!   m-of-n): `(… r_j+ …) → a+ → (… r_j− …) → a−` exactly as Section 3
//!   prescribes, with the "no code covers another" validity check.
//!
//! After expansion each module is an ordinary STG and the whole algebra
//! of `cpn-core`/`cpn-stg` applies: composition, consistency
//! verification (receptiveness), and compositional reduction.
//!
//! # Example
//!
//! ```
//! use cpn_cip::{ChannelSpec, CipGraph, HandshakeProtocol, Module};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // One sender, one receiver, a control-only channel "go".
//! let mut tx = Module::new("tx");
//! let p = tx.add_place("p");
//! let q = tx.add_place("q");
//! tx.add_send([p], "go", None, [q])?;
//! tx.add_send([q], "go", None, [p])?;
//! tx.set_initial(p, 1);
//!
//! let mut rx = Module::new("rx");
//! let r = rx.add_place("r");
//! rx.add_recv([r], "go", [r])?;
//! rx.set_initial(r, 1);
//!
//! let mut cip = CipGraph::new();
//! let tx = cip.add_module(tx);
//! let rx = cip.add_module(rx);
//! cip.add_channel_edge(tx, rx, ChannelSpec::control("go"))?;
//! cip.validate()?;
//!
//! let system = cip.expand(HandshakeProtocol::FourPhase)?;
//! let composed = system.compose_all()?;
//! assert!(composed.net().transition_count() > 0);
//! # Ok(())
//! # }
//! ```

pub mod encoding;
pub mod expand;
pub mod graph;
pub mod label;
pub mod module;
pub mod protocol;

pub use encoding::DataEncoding;
pub use expand::{ExpandCache, ExpandedSystem, HandshakeProtocol, ModuleVerdicts};
pub use graph::{ChannelSpec, CipEdge, CipError, CipGraph, Link};
pub use label::{ChanOp, Channel, CipLabel};
pub use module::Module;
