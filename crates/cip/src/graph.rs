//! The CIP graph `(V, E)` (Definition 3.1): modules connected by edges
//! labeled with signals or abstract channels, with well-formedness
//! validation.

use crate::encoding::DataEncoding;
use crate::label::Channel;
use crate::module::Module;
use cpn_stg::{Signal, SignalDir};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors from CIP graph construction and validation.
#[derive(Debug)]
#[non_exhaustive]
pub enum CipError {
    /// A module index out of range.
    UnknownModule(usize),
    /// A channel edge references a channel neither endpoint uses as
    /// stated (sender must send, receiver must receive).
    ChannelMismatch(String),
    /// The same channel is declared on two edges.
    DuplicateChannel(String),
    /// A signal edge's source does not drive the signal, or its target
    /// does not read it.
    SignalMismatch(String),
    /// A module uses a channel no edge declares.
    UndeclaredChannel(String),
    /// A sent value index exceeds the channel's encoding.
    ValueOutOfRange {
        /// The channel.
        channel: String,
        /// The offending value.
        value: usize,
    },
    /// An underlying error (net, encoding, STG).
    Inner(Box<dyn Error + Send + Sync>),
}

impl fmt::Display for CipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CipError::UnknownModule(i) => write!(f, "unknown module index {i}"),
            CipError::ChannelMismatch(c) => {
                write!(f, "channel {c} endpoints do not send/receive as declared")
            }
            CipError::DuplicateChannel(c) => write!(f, "channel {c} declared twice"),
            CipError::SignalMismatch(s) => {
                write!(f, "signal edge {s} inconsistent with module directions")
            }
            CipError::UndeclaredChannel(c) => {
                write!(
                    f,
                    "channel {c} used by a module but not declared on any edge"
                )
            }
            CipError::ValueOutOfRange { channel, value } => {
                write!(
                    f,
                    "value {value} does not fit the encoding of channel {channel}"
                )
            }
            CipError::Inner(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CipError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CipError::Inner(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

/// What a channel carries: pure synchronization or encoded data.
#[derive(Clone, Debug)]
pub struct ChannelSpec {
    /// The channel.
    pub channel: Channel,
    /// The data encoding; `None` for control-only channels.
    pub encoding: Option<DataEncoding>,
}

impl ChannelSpec {
    /// A control-only channel (plain request/acknowledge).
    pub fn control(name: impl Into<Channel>) -> Self {
        ChannelSpec {
            channel: name.into(),
            encoding: None,
        }
    }

    /// A data channel with the given encoding.
    pub fn data(name: impl Into<Channel>, encoding: DataEncoding) -> Self {
        ChannelSpec {
            channel: name.into(),
            encoding: Some(encoding),
        }
    }
}

/// An edge of the CIP graph: a signal or a channel connecting two
/// modules (Definition 3.1's edge labels).
#[derive(Clone, Debug)]
pub struct CipEdge {
    /// Source module index.
    pub from: usize,
    /// Target module index.
    pub to: usize,
    /// The carried link.
    pub link: Link,
}

/// The label of a CIP edge.
#[derive(Clone, Debug)]
pub enum Link {
    /// A plain signal (source drives, target reads).
    Signal(Signal),
    /// An abstract channel with its expansion spec.
    Channel(ChannelSpec),
}

/// The CIP graph.
#[derive(Clone, Debug, Default)]
pub struct CipGraph {
    modules: Vec<Module>,
    edges: Vec<CipEdge>,
}

impl CipGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        CipGraph::default()
    }

    /// Adds a module, returning its index.
    pub fn add_module(&mut self, module: Module) -> usize {
        self.modules.push(module);
        self.modules.len() - 1
    }

    /// Adds a signal edge `from --s--> to`.
    ///
    /// # Errors
    ///
    /// [`CipError::UnknownModule`] on bad indices.
    pub fn add_signal_edge(
        &mut self,
        from: usize,
        to: usize,
        signal: Signal,
    ) -> Result<(), CipError> {
        self.check_idx(from)?;
        self.check_idx(to)?;
        self.edges.push(CipEdge {
            from,
            to,
            link: Link::Signal(signal),
        });
        Ok(())
    }

    /// Adds a channel edge `from --c--> to` (sender to receiver).
    ///
    /// # Errors
    ///
    /// [`CipError::UnknownModule`] / [`CipError::DuplicateChannel`].
    pub fn add_channel_edge(
        &mut self,
        from: usize,
        to: usize,
        spec: ChannelSpec,
    ) -> Result<(), CipError> {
        self.check_idx(from)?;
        self.check_idx(to)?;
        if self.channel_specs().any(|(c, _)| c == &spec.channel) {
            return Err(CipError::DuplicateChannel(spec.channel.name().to_owned()));
        }
        self.edges.push(CipEdge {
            from,
            to,
            link: Link::Channel(spec),
        });
        Ok(())
    }

    fn check_idx(&self, i: usize) -> Result<(), CipError> {
        if i >= self.modules.len() {
            return Err(CipError::UnknownModule(i));
        }
        Ok(())
    }

    /// The modules.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// The edges.
    pub fn edges(&self) -> &[CipEdge] {
        &self.edges
    }

    /// Iterates over declared channels with their specs.
    pub fn channel_specs(&self) -> impl Iterator<Item = (&Channel, &CipEdge)> {
        self.edges.iter().filter_map(|e| match &e.link {
            Link::Channel(spec) => Some((&spec.channel, e)),
            Link::Signal(_) => None,
        })
    }

    /// Validates the graph:
    ///
    /// * channel edges: the source sends on the channel, the target
    ///   receives, and no third module touches it;
    /// * every channel used by a module is declared on an edge;
    /// * sent values fit the channel's encoding;
    /// * signal edges: the source declares the signal as output/internal,
    ///   the target as input.
    ///
    /// # Errors
    ///
    /// The first violation found, as a [`CipError`].
    pub fn validate(&self) -> Result<(), CipError> {
        // Channel bookkeeping.
        let mut declared: BTreeMap<&Channel, &CipEdge> = BTreeMap::new();
        for (c, e) in self.channel_specs() {
            declared.insert(c, e);
        }
        for (mi, m) in self.modules.iter().enumerate() {
            for c in m.sends() {
                match declared.get(&c) {
                    None => return Err(CipError::UndeclaredChannel(c.name().to_owned())),
                    Some(e) if e.from != mi => {
                        return Err(CipError::ChannelMismatch(c.name().to_owned()))
                    }
                    _ => {}
                }
            }
            for c in m.receives() {
                match declared.get(&c) {
                    None => return Err(CipError::UndeclaredChannel(c.name().to_owned())),
                    Some(e) if e.to != mi => {
                        return Err(CipError::ChannelMismatch(c.name().to_owned()))
                    }
                    _ => {}
                }
            }
        }
        for (c, e) in &declared {
            let sender = &self.modules[e.from];
            let receiver = &self.modules[e.to];
            if !sender.sends().contains(c) || !receiver.receives().contains(c) {
                return Err(CipError::ChannelMismatch(c.name().to_owned()));
            }
            // Values fit the encoding.
            let spec = match &e.link {
                Link::Channel(s) => s,
                Link::Signal(_) => unreachable!("declared holds channel edges"),
            };
            let capacity = spec.encoding.as_ref().map_or(1, DataEncoding::value_count);
            for v in sender.sent_values(c).into_iter().flatten() {
                if v >= capacity {
                    return Err(CipError::ValueOutOfRange {
                        channel: c.name().to_owned(),
                        value: v,
                    });
                }
            }
        }
        // Signal edges.
        for e in &self.edges {
            if let Link::Signal(s) = &e.link {
                let src = self.modules[e.from].signals().get(s).copied();
                let dst = self.modules[e.to].signals().get(s).copied();
                let src_drives = matches!(src, Some(SignalDir::Output) | Some(SignalDir::Internal));
                let dst_reads = matches!(dst, Some(SignalDir::Input));
                if !src_drives || !dst_reads {
                    return Err(CipError::SignalMismatch(s.name().to_owned()));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx_rx() -> (Module, Module) {
        let mut tx = Module::new("tx");
        let p = tx.add_place("p");
        tx.add_send([p], "go", None, [p]).unwrap();
        tx.set_initial(p, 1);
        let mut rx = Module::new("rx");
        let r = rx.add_place("r");
        rx.add_recv([r], "go", [r]).unwrap();
        rx.set_initial(r, 1);
        (tx, rx)
    }

    #[test]
    fn valid_control_channel() {
        let (tx, rx) = tx_rx();
        let mut g = CipGraph::new();
        let a = g.add_module(tx);
        let b = g.add_module(rx);
        g.add_channel_edge(a, b, ChannelSpec::control("go"))
            .unwrap();
        g.validate().unwrap();
    }

    #[test]
    fn reversed_channel_edge_rejected() {
        let (tx, rx) = tx_rx();
        let mut g = CipGraph::new();
        let a = g.add_module(tx);
        let b = g.add_module(rx);
        g.add_channel_edge(b, a, ChannelSpec::control("go"))
            .unwrap();
        assert!(matches!(
            g.validate().unwrap_err(),
            CipError::ChannelMismatch(_)
        ));
    }

    #[test]
    fn undeclared_channel_rejected() {
        let (tx, rx) = tx_rx();
        let mut g = CipGraph::new();
        g.add_module(tx);
        g.add_module(rx);
        assert!(matches!(
            g.validate().unwrap_err(),
            CipError::UndeclaredChannel(_)
        ));
    }

    #[test]
    fn duplicate_channel_rejected() {
        let (tx, rx) = tx_rx();
        let mut g = CipGraph::new();
        let a = g.add_module(tx);
        let b = g.add_module(rx);
        g.add_channel_edge(a, b, ChannelSpec::control("go"))
            .unwrap();
        assert!(matches!(
            g.add_channel_edge(a, b, ChannelSpec::control("go")),
            Err(CipError::DuplicateChannel(_))
        ));
    }

    #[test]
    fn value_range_checked() {
        let mut tx = Module::new("tx");
        let p = tx.add_place("p");
        tx.add_send([p], "cmd", Some(9), [p]).unwrap();
        tx.set_initial(p, 1);
        let mut rx = Module::new("rx");
        let r = rx.add_place("r");
        rx.add_recv([r], "cmd", [r]).unwrap();

        let mut g = CipGraph::new();
        let a = g.add_module(tx);
        let b = g.add_module(rx);
        g.add_channel_edge(
            a,
            b,
            ChannelSpec::data("cmd", DataEncoding::one_hot("w", 4)),
        )
        .unwrap();
        assert!(matches!(
            g.validate().unwrap_err(),
            CipError::ValueOutOfRange { value: 9, .. }
        ));
    }

    #[test]
    fn signal_edge_directions_checked() {
        let mut a = Module::new("a");
        let s = a.add_signal("wire", SignalDir::Output);
        let p = a.add_place("p");
        a.add_signal_transition([p], &s, cpn_stg::Edge::Rise, [p])
            .unwrap();
        let mut b = Module::new("b");
        b.add_signal("wire", SignalDir::Input);

        let mut g = CipGraph::new();
        let ai = g.add_module(a);
        let bi = g.add_module(b);
        g.add_signal_edge(ai, bi, Signal::new("wire")).unwrap();
        g.validate().unwrap();

        // Reversed: b does not drive the wire.
        let mut g2 = CipGraph::new();
        let mut a2 = Module::new("a");
        a2.add_signal("wire", SignalDir::Output);
        let mut b2 = Module::new("b");
        b2.add_signal("wire", SignalDir::Input);
        let ai = g2.add_module(a2);
        let bi = g2.add_module(b2);
        g2.add_signal_edge(bi, ai, Signal::new("wire")).unwrap();
        assert!(matches!(
            g2.validate().unwrap_err(),
            CipError::SignalMismatch(_)
        ));
    }

    #[test]
    fn unknown_module_index() {
        let mut g = CipGraph::new();
        assert!(matches!(
            g.add_signal_edge(0, 1, Signal::new("x")),
            Err(CipError::UnknownModule(_))
        ));
    }
}
