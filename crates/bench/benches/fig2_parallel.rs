//! FIG2 — parallel composition `((a+b).c)* ‖ (a.d.a.e)*` (Definition
//! 4.7, Theorem 4.5, Figure 2) plus a synchronized-pipeline sweep.

use cpn_bench::{fig2_left, fig2_right, sync_pipeline};
use cpn_core::parallel;
use cpn_testkit::bench::{black_box, BenchGroup};
use cpn_trace::Language;

fn main() {
    let mut group = BenchGroup::new("fig2_parallel");

    let l = fig2_left();
    let r = fig2_right();
    group.bench("paper_example_construct", || {
        parallel(black_box(&l), black_box(&r))
    });
    group.bench("paper_example_law_depth5", || {
        let composed = parallel(&l, &r).unwrap();
        let lhs = Language::from_net(&composed, 5, 1_000_000).unwrap();
        let rhs = Language::from_net(&l, 5, 1_000_000)
            .unwrap()
            .parallel(&Language::from_net(&r, 5, 1_000_000).unwrap());
        assert!(lhs.eq_up_to(&rhs, 5));
    });

    for k in [2usize, 4, 8, 16] {
        let stages = sync_pipeline(k);
        group.bench(format!("pipeline_compose/{k}"), || {
            let mut acc = stages[0].clone();
            for s in &stages[1..] {
                acc = parallel(&acc, s).unwrap();
            }
            acc
        });
    }
    group.finish();
}
