//! Exploration-kernel scaling sweep: legacy cloned-map explorer vs the
//! compiled arena explorer vs the lock-free parallel explorer at 1, 2,
//! 4 and 8 threads, on the three workload families whose composed state
//! spaces stress the kernel differently:
//!
//! * `sync_pipeline(k)` — linear net, exactly `2^k` composed states
//!   (throughput / memory stress);
//! * `handshake_ring(s)` — linear net, linear state count with long
//!   BFS levels of width ~1 (parallel-overhead stress);
//! * `sync_mesh(3,3,t)` — token-shift torus with `C(t+8, 8)` states on
//!   nine places (frontier-width stress; the 10^7-state acceptance
//!   family at `t = 24` under `CPN_BENCH_FULL=1` stays at `t = 8`
//!   here to keep the harness's repeated timing loops bounded).
//!
//! Every timed closure re-asserts that all kernels report the same
//! state count, so the sweep doubles as a smoke check of the
//! bit-identity contract.

use cpn_core::parallel;
use cpn_petri::{Bounded, Budget, PetriNet};
use cpn_testkit::bench::BenchGroup;

fn compose_all(nets: &[PetriNet<String>]) -> PetriNet<String> {
    let mut acc = nets[0].clone();
    for n in &nets[1..] {
        acc = parallel(&acc, n).unwrap();
    }
    acc
}

fn states_of(b: &Bounded<cpn_petri::ReachabilityGraph>) -> usize {
    match b {
        Bounded::Complete(rg) => rg.state_count(),
        Bounded::Exhausted { partial, .. } => partial.state_count(),
    }
}

fn sweep(group: &mut BenchGroup, family: &str, net: &PetriNet<String>, expect_states: usize) {
    let budget = Budget::states(expect_states + 1);
    group.bench(format!("{family}/legacy"), || {
        let rg = net.reachability_bounded_legacy(&budget);
        assert_eq!(states_of(&rg), expect_states);
    });
    group.bench(format!("{family}/compiled"), || {
        let rg = net.reachability_bounded(&budget);
        assert_eq!(states_of(&rg), expect_states);
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench(format!("{family}/parallel-{threads}"), || {
            let rg = net.reachability_bounded_parallel(&budget, threads);
            assert_eq!(states_of(&rg), expect_states);
        });
    }
}

fn main() {
    let full = std::env::var("CPN_BENCH_FULL").is_ok_and(|v| v == "1");
    let mut group = BenchGroup::new("explore_kernel");
    // Quick mode keeps the sweep in CI-friendly territory (~4k states);
    // full mode reaches the 2^17-state acceptance point and beyond.
    let pipeline_ks: &[usize] = if full { &[12, 17, 20] } else { &[8, 12] };
    for &k in pipeline_ks {
        let net = compose_all(&cpn_bench::sync_pipeline(k));
        sweep(&mut group, &format!("sync_pipeline/{k}"), &net, 1 << k);
    }
    let ring_stages: &[usize] = if full { &[64, 512] } else { &[16, 64] };
    for &s in ring_stages {
        let (p, c, _, _) = cpn_bench::handshake_ring(s, 0);
        let net = parallel(&p, &c).unwrap();
        let expect = states_of(&net.reachability_bounded(&Budget::states(1 << 22)));
        sweep(&mut group, &format!("handshake_ring/{s}"), &net, expect);
    }
    let mesh_tokens: u32 = if full { 8 } else { 4 };
    let mesh_states = cpn_testkit::sync_mesh_states(3, 3, mesh_tokens) as usize;
    let mesh = cpn_testkit::sync_mesh(3, 3, mesh_tokens);
    sweep(
        &mut group,
        &format!("sync_mesh/3x3t{mesh_tokens}"),
        &mesh,
        mesh_states,
    );
    group.finish();
}
