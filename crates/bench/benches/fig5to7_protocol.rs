//! FIG5–FIG7 — constructing and validating the three protocol blocks
//! (sender, translator, receiver): classical STG checks (Definition 2.3)
//! and state-graph construction with consistency checking.

use cpn_petri::ReachabilityOptions;
use cpn_stg::protocol::{receiver, sender, translator};
use cpn_stg::StateGraph;
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;

fn bench_blocks(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5to7_protocol");
    let opts = ReachabilityOptions::default();

    group.bench_function("fig5_sender_build", |b| b.iter(sender));
    group.bench_function("fig6_receiver_build", |b| b.iter(receiver));
    group.bench_function("fig7_translator_build", |b| b.iter(translator));

    for (name, stg) in [
        ("fig5_sender", sender()),
        ("fig6_receiver", receiver()),
        ("fig7_translator", translator()),
    ] {
        group.bench_function(format!("{name}_classical_check"), |b| {
            b.iter(|| stg.classical_report(&opts).unwrap());
        });
        group.bench_function(format!("{name}_state_graph"), |b| {
            b.iter(|| {
                let sg = StateGraph::build(&stg, &BTreeMap::new(), 1_000_000).unwrap();
                assert!(sg.is_consistent());
                sg.state_count()
            });
        });
    }

    group.bench_function("full_system_compose_and_analyze", |b| {
        b.iter(|| {
            let system = sender()
                .compose(&translator())
                .unwrap()
                .compose(&receiver())
                .unwrap()
                .remove_dead(&opts)
                .unwrap();
            let rg = system.net().reachability(&opts).unwrap();
            system.net().analysis(&rg).safe
        });
    });
    group.finish();
}

criterion_group!(benches, bench_blocks);
criterion_main!(benches);
