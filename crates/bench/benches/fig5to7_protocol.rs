//! FIG5–FIG7 — constructing and validating the three protocol blocks
//! (sender, translator, receiver): classical STG checks (Definition 2.3)
//! and state-graph construction with consistency checking.

use cpn_petri::ReachabilityOptions;
use cpn_stg::protocol::{receiver, sender, translator};
use cpn_stg::StateGraph;
use cpn_testkit::bench::BenchGroup;
use std::collections::BTreeMap;

fn main() {
    let mut group = BenchGroup::new("fig5to7_protocol");
    let opts = ReachabilityOptions::default();

    group.bench("fig5_sender_build", sender);
    group.bench("fig6_receiver_build", receiver);
    group.bench("fig7_translator_build", translator);

    for (name, stg) in [
        ("fig5_sender", sender()),
        ("fig6_receiver", receiver()),
        ("fig7_translator", translator()),
    ] {
        group.bench(format!("{name}_classical_check"), || {
            stg.classical_report(&opts).unwrap()
        });
        group.bench(format!("{name}_state_graph"), || {
            let sg = StateGraph::build(&stg, &BTreeMap::new(), 1_000_000).unwrap();
            assert!(sg.is_consistent());
            sg.state_count()
        });
    }

    group.bench("full_system_compose_and_analyze", || {
        let system = sender()
            .compose(&translator())
            .unwrap()
            .compose(&receiver())
            .unwrap()
            .remove_dead(&opts)
            .unwrap();
        let rg = system.net().reachability(&opts).unwrap();
        system.net().analysis(&rg).safe
    });
    group.finish();
}
