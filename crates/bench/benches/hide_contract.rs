//! Contraction-engine scaling sweep: the legacy rebuild-per-contraction
//! hiding path vs the in-place [`NetEditor`] engine, on the two workload
//! families whose hide sets stress the engine differently:
//!
//! * `tau_ring(segments, taus)` — marked-graph rings with
//!   `segments * taus` distinct hidden labels (many small worklists,
//!   product-place churn);
//! * `cip_chain_workload(modules)` — 2-phase-expanded CIP pipelines with
//!   the interior request wires hidden (the Section 6 derivation shape).
//!
//! Every timed closure re-asserts the engines produce *equal* nets, so
//! the sweep doubles as a smoke check of the bit-identity contract.

use cpn_petri::{Budget, Label, PetriNet};
use cpn_testkit::bench::BenchGroup;
use std::collections::BTreeSet;

fn sweep<L: Label>(group: &mut BenchGroup, family: &str, net: &PetriNet<L>, hidden: &BTreeSet<L>) {
    let budget = Budget::new(usize::MAX, 1_000_000);
    let expect = cpn_core::hide_labels_bounded(net, hidden, &budget)
        .expect("workloads hide cleanly")
        .into_value();
    group.bench(format!("{family}/legacy"), || {
        let out = cpn_core::hide_labels_bounded_legacy(net, hidden, &budget)
            .expect("workloads hide cleanly")
            .into_value();
        assert_eq!(out, expect);
    });
    group.bench(format!("{family}/engine"), || {
        let out = cpn_core::hide_labels_bounded(net, hidden, &budget)
            .expect("workloads hide cleanly")
            .into_value();
        assert_eq!(out, expect);
    });
}

fn main() {
    let full = std::env::var("CPN_BENCH_FULL").is_ok_and(|v| v == "1");
    let mut group = BenchGroup::new("hide_contract");
    // (segments, taus): hide-set size = segments * taus.
    let rings: &[(usize, usize)] = if full {
        &[(4, 4), (8, 8), (16, 8), (16, 16)]
    } else {
        &[(4, 4), (8, 8)]
    };
    for &(segments, taus) in rings {
        let (net, hidden) = cpn_bench::tau_ring(segments, taus);
        sweep(
            &mut group,
            &format!("tau_ring/{segments}x{taus}"),
            &net,
            &hidden,
        );
    }
    let chains: &[usize] = if full { &[4, 8, 12] } else { &[4, 6] };
    for &modules in chains {
        let (net, hidden) = cpn_bench::cip_chain_workload(modules);
        sweep(&mut group, &format!("cip_chain/{modules}"), &net, &hidden);
    }
    group.finish();
}
