//! FIG1 — choice with root-unwinding (Definition 4.6, Figure 1).
//!
//! Benchmarks the construction of `N1 + N2` for cyclic operands (the
//! exact situation Figure 1 illustrates: loops back to the initial
//! places must not re-offer the choice), plus the law check
//! `L(N1+N2) = L(N1) ∪ L(N2)` at a fixed depth.

use cpn_bench::cycle_net;
use cpn_core::choice;
use cpn_testkit::bench::{black_box, BenchGroup};
use cpn_trace::Language;

fn main() {
    let mut group = BenchGroup::new("fig1_choice");
    static AB: [&str; 6] = ["a1", "a2", "a3", "a4", "a5", "a6"];
    static CD: [&str; 6] = ["c1", "c2", "c3", "c4", "c5", "c6"];
    for size in [2usize, 4, 6] {
        let n1 = cycle_net(&AB[..size]);
        let n2 = cycle_net(&CD[..size]);
        group.bench(format!("construct/{size}"), || {
            choice(black_box(&n1), black_box(&n2)).unwrap()
        });
        group.bench(format!("law_check_depth4/{size}"), || {
            let both = choice(&n1, &n2).unwrap();
            let lhs = Language::from_net(&both, 4, 1_000_000).unwrap();
            let rhs = Language::from_net(&n1, 4, 1_000_000)
                .unwrap()
                .union(&Language::from_net(&n2, 4, 1_000_000).unwrap());
            assert!(lhs.eq_up_to(&rhs, 4));
        });
    }
    group.finish();
}
