//! FIG3 — hiding as net contraction (Definition 4.10, Theorem 4.7,
//! Figure 3): the marked-graph collapse case scaled to chains of hidden
//! transitions, plus a conflict-rich contraction.

use cpn_bench::tau_chain;
use cpn_core::{hide_label, hide_relabel};
use cpn_petri::PetriNet;
use cpn_testkit::bench::{black_box, BenchGroup};
use std::collections::BTreeSet;

/// A net with conflicts on both sides of the hidden transition (the
/// general Figure 3(a/b) shape).
fn conflict_net() -> PetriNet<&'static str> {
    let mut net = PetriNet::new();
    let p1 = net.add_place("p1");
    let p2 = net.add_place("p2");
    let q1 = net.add_place("q1");
    let q2 = net.add_place("q2");
    let r = net.add_place("r");
    net.add_transition([p1, p2], "tau", [q1, q2]).unwrap();
    net.add_transition([p1], "e", [r]).unwrap(); // conflict on p1
    net.add_transition([q1], "g", [p1]).unwrap(); // successor
    net.add_transition([q2], "i", [p2]).unwrap(); // successor
    net.add_transition([r], "f", [p1]).unwrap();
    net.set_initial(p1, 1);
    net.set_initial(p2, 1);
    net
}

fn main() {
    let mut group = BenchGroup::new("fig3_hiding");

    for taus in [1usize, 4, 16, 64] {
        let net = tau_chain(taus);
        group.bench(format!("chain_contract/{taus}"), || {
            hide_label(black_box(&net), &"tau".to_owned(), 10_000).unwrap()
        });
        group.bench(format!("chain_relabel_hide_prime/{taus}"), || {
            hide_relabel(
                black_box(&net),
                &BTreeSet::from(["tau".to_owned()]),
                "eps".to_owned(),
            )
        });
    }

    let net = conflict_net();
    group.bench("conflict_contract", || {
        hide_label(black_box(&net), &"tau", 10_000).unwrap()
    });
    group.finish();
}
