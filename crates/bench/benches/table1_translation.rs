//! TAB1 — the Table 1 command/wire translation: encoding construction
//! and validity (antichain) checking, and the CIP channel expansion that
//! realizes the table mechanically.

use cpn_cip::protocol::{cmd_encoding, out_encoding, protocol_cip};
use cpn_cip::{DataEncoding, HandshakeProtocol};
use cpn_testkit::bench::{black_box, BenchGroup};

fn main() {
    let mut group = BenchGroup::new("table1_translation");

    group.bench("build_table_encodings", || {
        (black_box(cmd_encoding()), black_box(out_encoding()))
    });

    for bits in [1usize, 2, 4, 8] {
        group.bench(format!("dual_rail/{bits}"), || {
            DataEncoding::dual_rail("d", black_box(bits))
        });
    }
    for n in [4usize, 8, 12] {
        group.bench(format!("two_of_n/{n}"), || {
            DataEncoding::m_of_n("w", 2, black_box(n))
        });
    }

    let cip = protocol_cip().unwrap();
    group.bench("expand_protocol_cip", || {
        cip.expand(HandshakeProtocol::FourPhase).unwrap()
    });
    group.finish();
}
