//! TAB1 — the Table 1 command/wire translation: encoding construction
//! and validity (antichain) checking, and the CIP channel expansion that
//! realizes the table mechanically.

use cpn_cip::protocol::{cmd_encoding, out_encoding, protocol_cip};
use cpn_cip::{DataEncoding, HandshakeProtocol};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_translation");

    group.bench_function("build_table_encodings", |b| {
        b.iter(|| (black_box(cmd_encoding()), black_box(out_encoding())));
    });

    for bits in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("dual_rail", bits), &bits, |b, &bits| {
            b.iter(|| DataEncoding::dual_rail("d", black_box(bits)));
        });
    }
    for n in [4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::new("two_of_n", n), &n, |b, &n| {
            b.iter(|| DataEncoding::m_of_n("w", 2, black_box(n)));
        });
    }

    let cip = protocol_cip().unwrap();
    group.bench_function("expand_protocol_cip", |b| {
        b.iter(|| cip.expand(HandshakeProtocol::FourPhase).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
