//! FIG8 — detecting the inconsistent sender (Propositions 5.5/5.6):
//! exhaustive receptiveness checking on the consistent vs. inconsistent
//! composition, and the dynamic monitor's detection cost.

use cpn_petri::ReachabilityOptions;
use cpn_sim::monitor_composition;
use cpn_stg::protocol::{sender, sender_inconsistent, translator};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_inconsistency");
    group.sample_size(20);
    let opts = ReachabilityOptions::default();
    let tr = translator();

    let good = sender();
    group.bench_function("exhaustive_consistent", |b| {
        b.iter(|| {
            let rep = good.check_receptiveness(&tr, &opts).unwrap();
            assert!(rep.is_receptive());
        });
    });

    let bad = sender_inconsistent();
    group.bench_function("exhaustive_inconsistent", |b| {
        b.iter(|| {
            let rep = bad.check_receptiveness(&tr, &opts).unwrap();
            assert!(!rep.is_receptive());
        });
    });

    group.bench_function("dynamic_monitor_inconsistent", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            monitor_composition(
                bad.net(),
                tr.net(),
                &bad.output_labels(),
                &tr.output_labels(),
                seed,
                100_000,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
