//! FIG8 — detecting the inconsistent sender (Propositions 5.5/5.6):
//! exhaustive receptiveness checking on the consistent vs. inconsistent
//! composition, and the dynamic monitor's detection cost.

use cpn_petri::ReachabilityOptions;
use cpn_sim::monitor_composition;
use cpn_stg::protocol::{sender, sender_inconsistent, translator};
use cpn_testkit::bench::BenchGroup;

fn main() {
    let mut group = BenchGroup::new("fig8_inconsistency");
    let opts = ReachabilityOptions::default();
    let tr = translator();

    let good = sender();
    group.bench("exhaustive_consistent", || {
        let rep = good.check_receptiveness(&tr, &opts).unwrap();
        assert!(rep.is_receptive());
    });

    let bad = sender_inconsistent();
    group.bench("exhaustive_inconsistent", || {
        let rep = bad.check_receptiveness(&tr, &opts).unwrap();
        assert!(!rep.is_receptive());
    });

    let mut seed = 0u64;
    group.bench("dynamic_monitor_inconsistent", || {
        seed += 1;
        monitor_composition(
            bad.net(),
            tr.net(),
            &bad.output_labels(),
            &tr.output_labels(),
            seed,
            100_000,
        )
    });
    group.finish();
}
