//! ABL2 — Theorem 5.7: "for strongly-connected live-safe marked graphs,
//! the check for receptiveness … can be done structurally on the net in
//! polynomial time and space."
//!
//! Handshake rings of growing size: the structural check (difference
//! constraints + Bellman–Ford, no state space) vs the exhaustive
//! reachability-graph check.

use cpn_bench::wide_handshake;
use cpn_core::{check_receptiveness, check_receptiveness_structural_mg};
use cpn_petri::ReachabilityOptions;
use cpn_testkit::bench::BenchGroup;

fn main() {
    let mut group = BenchGroup::new("ablation_structural_vs_rg");
    let opts = ReachabilityOptions::with_max_states(8_000_000);

    // Wide (concurrent) handshakes: the composed state space grows
    // exponentially in the width, the structural check stays polynomial.
    for width in [2usize, 4, 6, 8] {
        let (p, cons, lo, ro) = wide_handshake(width, None);
        group.bench(format!("structural_mg/{width}"), || {
            let rep = check_receptiveness_structural_mg(&p, &cons, &lo, &ro).unwrap();
            assert!(rep.is_receptive());
        });
        group.bench(format!("exhaustive_rg/{width}"), || {
            let rep = check_receptiveness(&p, &cons, &lo, &ro, &opts).unwrap();
            assert!(rep.is_receptive());
        });
    }
    group.finish();
}
