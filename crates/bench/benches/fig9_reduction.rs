//! FIG9 — compositional synthesis (Section 5.2): deriving the
//! simplified translator and receiver from the restricted sender, and
//! the trace-containment (Theorem 5.1) certification.

use cpn_petri::ReachabilityOptions;
use cpn_stg::protocol::{receiver, sender_restricted, translator};
use cpn_testkit::bench::BenchGroup;

fn main() {
    let mut group = BenchGroup::new("fig9_reduction");
    let opts = ReachabilityOptions::default();

    let tr = translator();
    let env = sender_restricted();
    group.bench("reduce_translator", || {
        tr.reduce_against(&env, &opts, 10_000).unwrap()
    });

    let tr_red = tr.reduce_against(&env, &opts, 10_000).unwrap();
    let rx = receiver();
    group.bench("prune_receiver", || {
        rx.prune_against(&tr_red, &ReachabilityOptions::default())
            .unwrap()
    });

    group.bench("thm_5_1_containment_depth5", || {
        let reduced_lang = tr_red.language(5, 2_000_000).unwrap();
        let orig = tr.language(7, 2_000_000).unwrap();
        assert!(reduced_lang.subset_up_to(&orig.project(&tr_red.net().alphabet()), 5));
    });
    group.finish();
}
