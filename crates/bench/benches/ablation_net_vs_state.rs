//! ABL1 — "the methods operate at the Petri net level, which avoids
//! potential state space explosion problems encountered by state based
//! techniques" (Section 1).
//!
//! `k` independent cycles: the composed **net** grows linearly in `k`,
//! its **reachability graph** grows as `2^k`. Net-level composition cost
//! vs explicit state-space construction cost makes the claim measurable.

use cpn_core::parallel;
use cpn_petri::{PetriNet, ReachabilityOptions};
use cpn_testkit::bench::BenchGroup;

fn independent_cycles(k: usize) -> Vec<PetriNet<String>> {
    (0..k)
        .map(|i| {
            let mut net: PetriNet<String> = PetriNet::new();
            let p = net.add_place(format!("c{i}.p"));
            let q = net.add_place(format!("c{i}.q"));
            net.add_transition([p], format!("a{i}"), [q]).unwrap();
            net.add_transition([q], format!("b{i}"), [p]).unwrap();
            net.set_initial(p, 1);
            net
        })
        .collect()
}

fn compose_all(nets: &[PetriNet<String>]) -> PetriNet<String> {
    let mut acc = nets[0].clone();
    for n in &nets[1..] {
        acc = parallel(&acc, n).unwrap();
    }
    acc
}

fn main() {
    let mut group = BenchGroup::new("ablation_net_vs_state");
    for k in [4usize, 8, 12, 16] {
        let nets = independent_cycles(k);
        group.bench(format!("net_level_compose/{k}"), || compose_all(&nets));
        let composed = compose_all(&nets);
        group.bench(format!("state_space_build/{k}"), || {
            let rg = composed
                .reachability(&ReachabilityOptions::with_max_states(1 << 22))
                .unwrap();
            assert_eq!(rg.state_count(), 1usize << k);
            rg.state_count()
        });
    }
    group.finish();
}
