//! ABL1 — "the methods operate at the Petri net level, which avoids
//! potential state space explosion problems encountered by state based
//! techniques" (Section 1).
//!
//! `k` independent cycles: the composed **net** grows linearly in `k`,
//! its **reachability graph** grows as `2^k`. Net-level composition cost
//! vs explicit state-space construction cost makes the claim measurable.

use cpn_core::parallel;
use cpn_petri::{PetriNet, ReachabilityOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn independent_cycles(k: usize) -> Vec<PetriNet<String>> {
    (0..k)
        .map(|i| {
            let mut net: PetriNet<String> = PetriNet::new();
            let p = net.add_place(format!("c{i}.p"));
            let q = net.add_place(format!("c{i}.q"));
            net.add_transition([p], format!("a{i}"), [q]).unwrap();
            net.add_transition([q], format!("b{i}"), [p]).unwrap();
            net.set_initial(p, 1);
            net
        })
        .collect()
}

fn compose_all(nets: &[PetriNet<String>]) -> PetriNet<String> {
    let mut acc = nets[0].clone();
    for n in &nets[1..] {
        acc = parallel(&acc, n);
    }
    acc
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_net_vs_state");
    group.sample_size(10);
    for k in [4usize, 8, 12, 16] {
        let nets = independent_cycles(k);
        group.bench_with_input(BenchmarkId::new("net_level_compose", k), &k, |b, _| {
            b.iter(|| compose_all(&nets));
        });
        let composed = compose_all(&nets);
        group.bench_with_input(
            BenchmarkId::new("state_space_build", k),
            &k,
            |b, &k| {
                b.iter(|| {
                    let rg = composed
                        .reachability(&ReachabilityOptions::with_max_states(1 << 22))
                        .unwrap();
                    assert_eq!(rg.state_count(), 1usize << k);
                    rg.state_count()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
