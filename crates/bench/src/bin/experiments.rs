//! Regenerates every figure and table of the paper and prints the rows
//! recorded in `EXPERIMENTS.md`.
//!
//! Usage: `cargo run --release -p cpn-bench --bin experiments [id…]`
//! where `id` ∈ {fig1, fig2, fig3, table1, fig4, fig5, fig6, fig7,
//! fig8, fig9, expansion, abl1, abl2, props, ext1, faults}; no argument
//! runs everything. `faults` honours `--quick` (2 trials per class
//! instead of 8) for CI smoke runs.
//!
//! `bench` (never part of the default set) sweeps the exploration
//! kernels over the `sync_pipeline`/`handshake_ring`/`sync_mesh`
//! families (the mesh is the 10^7-state acceptance workload, with a
//! thread sweep over 1/2/4/8 workers and an out-of-core spill-tier row)
//! and the contraction engines over the `tau_ring`/`cip_chain`
//! families; with `--json` it writes the machine-readable
//! `BENCH_explore.json` (states per second per kernel, resident marking
//! bytes, host core count, thread scaling, spill-tier counters) and
//! `BENCH_hide.json` (seconds and allocation counts per hiding engine,
//! speedup and allocation ratios) and `BENCH_alphabet.json` (generic
//! label-level ops vs the interned symbol/bitset paths: hide/contract
//! allocations, sync-set computation, fused tracked composition,
//! language projection) and `BENCH_reduce.json` (explored states and
//! seconds for full / stubborn / reduced / reduced+stubborn exploration
//! of composed CIP chains) that CI uploads as artifacts.
//! `--quick` shrinks the sweeps for smoke runs; the default reaches the
//! 2^20-state and 10^7-state acceptance workloads.
//!
//! `smoke-parallel` (also never part of the default set) is the CI
//! acceptance check for the lock-free kernel: it asserts parallel/4 ≥
//! 2.0× compiled/1 on `sync_pipeline/20` when the host has ≥4 cores,
//! and prints an explicit skip otherwise.
//!
//! `serve` (also never part of the default set) boots an in-process
//! `cpn-serve` daemon over loopback TCP and measures cached-compile
//! round-trip latency/throughput, deadline-bounded degradation under an
//! explosive request with concurrent small ones, and drain time; with
//! `--json` it writes `BENCH_serve.json`.

use cpn_bench::{cycle_net, fig2_left, fig2_right, handshake_ring, tau_chain};
use cpn_petri::Label;
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper counting allocation calls, so the `bench`
/// sweep can report allocations per hiding pass (the contraction
/// engine's ≥5× allocation claim) without external tooling.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}
use cpn_cip::protocol::{protocol_cip, protocol_cip_restricted};
use cpn_cip::HandshakeProtocol;
use cpn_core::{
    check_receptiveness, check_receptiveness_structural_mg, choice, hide_label, parallel,
};
use cpn_petri::{PetriNet, ReachabilityOptions};
use cpn_sim::monitor_composition;
use cpn_stg::protocol::{
    receiver, sender, sender_inconsistent, sender_restricted, translator, RECEIVER_COMMANDS,
    SENDER_COMMANDS,
};
use cpn_stg::{StateGraph, Stg};
use cpn_trace::Language;
use std::collections::BTreeMap;
use std::time::Instant;

fn header(id: &str, title: &str) {
    println!("\n==================================================================");
    println!("{id}: {title}");
    println!("==================================================================");
}

fn stg_stats(stg: &Stg, opts: &ReachabilityOptions) -> (usize, usize, usize) {
    let rg = stg
        .net()
        .reachability(opts)
        .expect("protocol nets are bounded");
    (
        stg.net().place_count(),
        stg.net().transition_count(),
        rg.state_count(),
    )
}

fn fig1() {
    header("FIG1", "choice with root-unwinding (Def 4.6)");
    let n1 = cycle_net(&["a", "b"]);
    let n2 = cycle_net(&["c", "d"]);
    let both = choice(&n1, &n2).expect("safe operands");
    println!(
        "operands: {}p/{}t each; N1+N2: {}p/{}t",
        n1.place_count(),
        n1.transition_count(),
        both.place_count(),
        both.transition_count()
    );
    let lhs = Language::from_net(&both, 6, 1_000_000).unwrap();
    let rhs = Language::from_net(&n1, 6, 1_000_000)
        .unwrap()
        .union(&Language::from_net(&n2, 6, 1_000_000).unwrap());
    println!(
        "L(N1+N2) = L(N1) ∪ L(N2) up to depth 6: {}",
        lhs.eq_up_to(&rhs, 6)
    );
    println!(
        "committed choice (no branch switch after loop): {}",
        !lhs.contains(&["a", "b", "c"]) && !lhs.contains(&["c", "d", "a"])
    );
}

fn fig2() {
    header(
        "FIG2",
        "parallel composition ((a+b).c)* ‖ (a.d.a.e)* (Thm 4.5)",
    );
    let l = fig2_left();
    let r = fig2_right();
    let composed = parallel(&l, &r).unwrap();
    let rg = composed
        .reachability(&ReachabilityOptions::default())
        .unwrap();
    println!(
        "left {}p/{}t, right {}p/{}t -> composed {}p/{}t, {} states",
        l.place_count(),
        l.transition_count(),
        r.place_count(),
        r.transition_count(),
        composed.place_count(),
        composed.transition_count(),
        rg.state_count()
    );
    let lhs = Language::from_net(&composed, 6, 1_000_000).unwrap();
    let rhs = Language::from_net(&l, 6, 1_000_000)
        .unwrap()
        .parallel(&Language::from_net(&r, 6, 1_000_000).unwrap());
    println!(
        "L(N1‖N2) = L(N1)‖L(N2) up to depth 6: {}",
        lhs.eq_up_to(&rhs, 6)
    );
    println!(
        "a synchronizes: trace 'a c d a c e' in language: {}",
        lhs.contains(&["a", "c", "d", "a", "c", "e"])
    );
}

fn fig3() {
    header("FIG3", "hiding as net contraction (Def 4.10, Thm 4.7)");
    for taus in [1usize, 4, 16] {
        let net = tau_chain(taus);
        let hidden = hide_label(&net, &"tau".to_owned(), 100_000).unwrap();
        let opts = ReachabilityOptions::default();
        let states_before = net.reachability(&opts).unwrap().state_count();
        let states_after = hidden.reachability(&opts).unwrap().state_count();
        println!(
            "chain with {taus:>2} hidden transitions: {}p/{}t/{} states -> \
             {}p/{}t/{} states after contraction (ε states gone)",
            net.place_count(),
            net.transition_count(),
            states_before,
            hidden.place_count(),
            hidden.transition_count(),
            states_after,
        );
    }
    // Conflict case + oracle check.
    let mut net: PetriNet<&str> = PetriNet::new();
    let p0 = net.add_place("p0");
    let q0 = net.add_place("q0");
    let r = net.add_place("r");
    net.add_transition([p0], "tau", [q0]).unwrap();
    net.add_transition([p0], "x", [r]).unwrap();
    net.add_transition([q0], "a", [p0]).unwrap();
    net.add_transition([r], "y", [p0]).unwrap();
    net.set_initial(p0, 1);
    let hidden = hide_label(&net, &"tau", 100_000).unwrap();
    let lhs = Language::from_net(&hidden, 4, 1_000_000).unwrap();
    let rhs = Language::from_net(&net, 14, 1_000_000)
        .unwrap()
        .hide(&["tau"].into());
    println!(
        "conflict case: L(hide(N,tau)) = hide(L(N),tau) up to depth 4: {}",
        lhs.eq_up_to(&rhs.truncate(4), 4)
    );
}

fn table1() {
    header("TAB1", "translation tables (sender / receiver codes)");
    println!("(a) sender:   cmd~  -> wires        (b) receiver: wires -> cmd~");
    for i in 0..4 {
        let (sc, sa, sb) = SENDER_COMMANDS[i];
        let (rc, rp, rq) = RECEIVER_COMMANDS[i];
        println!("    {sc:<6} -> {sa}+ {sb}+          {rp}+ {rq}+ -> {rc}~");
    }
    let enc = cpn_cip::protocol::cmd_encoding();
    println!(
        "cmd encoding: {} wires, {} values, antichain-valid: yes (constructor enforces)",
        enc.wires().len(),
        enc.value_count()
    );
}

fn fig4() {
    header("FIG4", "block diagram: the CIP graph validates");
    let g = protocol_cip().unwrap();
    println!(
        "modules: {:?}; channel edges: {}",
        g.modules().iter().map(|m| m.name()).collect::<Vec<_>>(),
        g.channel_specs().count()
    );
    println!("validate(): ok");
}

fn fig567() {
    let opts = ReachabilityOptions::default();
    for (id, name, stg) in [
        ("FIG5", "sender protocol", sender()),
        ("FIG6", "receiver protocol", receiver()),
        ("FIG7", "protocol translator", translator()),
    ] {
        header(id, name);
        let (p, t, s) = stg_stats(&stg, &opts);
        let rep = stg.classical_report(&opts).unwrap();
        let rg = stg.net().reachability(&opts).unwrap();
        let analysis = stg.net().analysis(&rg);
        let sg = StateGraph::build(&stg, &BTreeMap::new(), 1_000_000).unwrap();
        println!("size: {p} places, {t} transitions, {s} reachable states");
        println!(
            "strongly-connected: {}, live: {}, safe: {}, consistent encoding: {}",
            rep.strongly_connected,
            rep.live,
            rep.safe,
            sg.is_consistent()
        );
        if !rep.live {
            println!(
                "  (deadlock-free: {}, dead: {}, non-live: {} — the one-shot initial \
                 `start` transmission; everything else is live)",
                analysis.deadlock_free,
                analysis.dead_transitions().len(),
                analysis.non_live_transitions().len()
            );
        }
        println!(
            "state graph: {} encoded states (guards restrict the rec branch), \
             USC conflicts: {}, CSC conflicts: {}",
            sg.state_count(),
            sg.usc_violations().len(),
            sg.csc_violations(&stg).len()
        );
    }
}

fn fig8() {
    header("FIG8", "inconsistent sender detection (Props 5.5/5.6)");
    let opts = ReachabilityOptions::default();
    let tr = translator();
    let good = sender().check_receptiveness(&tr, &opts).unwrap();
    println!(
        "consistent sender ‖ translator: receptive = {}",
        good.is_receptive()
    );
    let bad_stg = sender_inconsistent();
    let t0 = Instant::now();
    let bad = bad_stg.check_receptiveness(&tr, &opts).unwrap();
    let static_time = t0.elapsed();
    println!(
        "inconsistent sender ‖ translator: receptive = {} ({} failures, {:?})",
        bad.is_receptive(),
        bad.failures.len(),
        static_time
    );
    let mut labels: Vec<String> = bad.failures.iter().map(|f| f.label.to_string()).collect();
    labels.dedup();
    println!("failing outputs: {labels:?}");
    // Dynamic detection cost.
    let mut step_counts = Vec::new();
    for seed in 0..10u64 {
        if let Some(obs) = monitor_composition(
            bad_stg.net(),
            tr.net(),
            &bad_stg.output_labels(),
            &tr.output_labels(),
            seed,
            1_000_000,
        ) {
            step_counts.push(obs.steps);
        }
    }
    println!(
        "dynamic monitor: detected in {}/10 random walks, steps: {:?}",
        step_counts.len(),
        step_counts
    );
}

fn fig9() {
    header(
        "FIG9",
        "compositional synthesis: simplified translator & receiver",
    );
    let opts = ReachabilityOptions::default();
    let tr = translator();
    let tr_red = tr
        .reduce_against(&sender_restricted(), &opts, 10_000)
        .unwrap();
    let (p0, t0, s0) = stg_stats(&tr, &opts);
    let (p1, t1, s1) = stg_stats(&tr_red, &opts);
    println!("translator (Fig 7):      {p0:>3} places {t0:>3} transitions {s0:>4} states");
    println!("simplified (Fig 9b):     {p1:>3} places {t1:>3} transitions {s1:>4} states");
    println!(
        "DATA/STROBE interface removed: {}",
        !tr_red
            .signals()
            .keys()
            .any(|s| s.name() == "DATA" || s.name() == "STROBE")
    );
    let reduced_lang = tr_red.language(5, 2_000_000).unwrap();
    let orig = tr.language(7, 2_000_000).unwrap();
    println!(
        "Thm 5.1 containment (depth 5): {}",
        reduced_lang.subset_up_to(&orig.project(&tr_red.net().alphabet()), 5)
    );

    let rx = receiver();
    let rx_red = rx
        .prune_against(&tr_red, &ReachabilityOptions::default())
        .unwrap();
    let (p0, t0, s0) = stg_stats(&rx, &opts);
    let (p1, t1, s1) = stg_stats(&rx_red, &opts);
    println!("receiver (Fig 6):        {p0:>3} places {t0:>3} transitions {s0:>4} states");
    println!("simplified (Fig 9c):     {p1:>3} places {t1:>3} transitions {s1:>4} states");
    println!(
        "mute command removed: {}",
        !rx_red.signals().keys().any(|s| s.name() == "mute")
    );
}

fn expansion() {
    header("EXP3", "abstract channel expansion (Section 3)");
    let opts = ReachabilityOptions::default();
    for (name, g) in [
        ("full CIP", protocol_cip().unwrap()),
        ("restricted CIP", protocol_cip_restricted().unwrap()),
    ] {
        let sys = g.expand(HandshakeProtocol::FourPhase).unwrap();
        print!("{name}: ");
        for (n, stg) in sys.names().iter().zip(sys.stgs()) {
            print!(
                "{n} {}p/{}t  ",
                stg.net().place_count(),
                stg.net().transition_count()
            );
        }
        let composed = sys.compose_all().unwrap().remove_dead(&opts).unwrap();
        let rg = composed.net().reachability(&opts).unwrap();
        let analysis = composed.net().analysis(&rg);
        println!(
            "\n  composed: {} states, safe={}, deadlock-free={}",
            rg.state_count(),
            analysis.safe,
            analysis.deadlock_free
        );
        let receptive = sys
            .verify_receptiveness(&opts)
            .unwrap()
            .iter()
            .all(|(_, r)| r.is_receptive());
        println!("  rendez-vous preserved (every module receptive): {receptive}");
    }
}

fn abl1() {
    header(
        "ABL1",
        "net-level algebra vs state-space size (Section 1 claim)",
    );
    println!(
        "{:>3} {:>10} {:>12} {:>12}",
        "k", "net (p+t)", "states", "RG time"
    );
    for k in [4usize, 8, 12, 16, 18] {
        let nets: Vec<PetriNet<String>> = (0..k)
            .map(|i| {
                let mut net: PetriNet<String> = PetriNet::new();
                let p = net.add_place(format!("c{i}.p"));
                let q = net.add_place(format!("c{i}.q"));
                net.add_transition([p], format!("a{i}"), [q]).unwrap();
                net.add_transition([q], format!("b{i}"), [p]).unwrap();
                net.set_initial(p, 1);
                net
            })
            .collect();
        let mut acc = nets[0].clone();
        for n in &nets[1..] {
            acc = parallel(&acc, n).unwrap();
        }
        let t0 = Instant::now();
        let rg = acc
            .reachability(&ReachabilityOptions::with_max_states(1 << 22))
            .unwrap();
        println!(
            "{k:>3} {:>10} {:>12} {:>12?}",
            acc.place_count() + acc.transition_count(),
            rg.state_count(),
            t0.elapsed()
        );
    }
}

fn abl2() {
    header("ABL2", "structural (Thm 5.7) vs exhaustive receptiveness");
    println!("sequential rings (linear state space):");
    println!(
        "{:>7} {:>12} {:>14} {:>14} {:>9}",
        "stages", "RG states", "structural", "exhaustive", "agree"
    );
    let opts = ReachabilityOptions::with_max_states(8_000_000);
    for stages in [2usize, 8, 32, 128] {
        let (p, c, lo, ro) = handshake_ring(stages, 0);
        let t0 = Instant::now();
        let s = check_receptiveness_structural_mg(&p, &c, &lo, &ro).unwrap();
        let t_structural = t0.elapsed();
        let t0 = Instant::now();
        let e = check_receptiveness(&p, &c, &lo, &ro, &opts).unwrap();
        let t_exhaustive = t0.elapsed();
        let states = parallel(&p, &c)
            .unwrap()
            .reachability(&opts)
            .map(|rg| rg.state_count())
            .unwrap_or(0);
        println!(
            "{stages:>7} {states:>12} {t_structural:>14?} {t_exhaustive:>14?} {:>9}",
            s.is_receptive() == e.is_receptive()
        );
    }
    println!("wide concurrent handshakes (exponential state space):");
    println!(
        "{:>7} {:>12} {:>14} {:>14} {:>9}",
        "width", "RG states", "structural", "exhaustive", "agree"
    );
    for width in [2usize, 4, 6, 8, 9] {
        let (p, c, lo, ro) = cpn_bench::wide_handshake(width, None);
        let t0 = Instant::now();
        let s = check_receptiveness_structural_mg(&p, &c, &lo, &ro).unwrap();
        let t_structural = t0.elapsed();
        let t0 = Instant::now();
        let e = check_receptiveness(&p, &c, &lo, &ro, &opts).unwrap();
        let t_exhaustive = t0.elapsed();
        let states = parallel(&p, &c)
            .unwrap()
            .reachability(&opts)
            .map(|rg| rg.state_count())
            .unwrap_or(0);
        println!(
            "{width:>7} {states:>12} {t_structural:>14?} {t_exhaustive:>14?} {:>9}",
            s.is_receptive() == e.is_receptive()
        );
    }
}

fn props() {
    header("PROPS", "closure properties 5.2–5.4");
    let opts = ReachabilityOptions::default();
    // Safe nets closed under composition; liveness not (Props 5.2/5.3):
    // two live safe cycles that wait for each other in opposite order.
    let n1 = cycle_net(&["a", "b"]);
    let n2 = cycle_net(&["b", "a"]);
    let rep = cpn_core::closure_report(&n1, &n2, &opts).unwrap();
    println!("(a.b)* ‖ (b.a)*:  {rep}");
    println!("  -> Prop 5.2 (safety closed): {}", rep.composition_safe);
    println!(
        "  -> Prop 5.3 caveat (liveness NOT closed under ‖): {}",
        !rep.composition_live
    );
    // Marked graphs closed under composition (Prop 5.4).
    let n3 = cycle_net(&["a", "b"]);
    let n4 = cycle_net(&["b", "c"]);
    let rep = cpn_core::closure_report(&n3, &n4, &opts).unwrap();
    println!("(a.b)* ‖ (b.c)*:  {rep}");
    println!(
        "  -> Prop 5.4 (marked graphs closed under ‖): {}",
        rep.composition_marked_graph
    );
}

fn ext_arbiter() {
    header(
        "EXT1",
        "general-net arbiter (Section 5.1: \"arbiters cannot be modeled in these subclasses\")",
    );
    let opts = ReachabilityOptions::default();
    let a = cpn_stg::arbiter::arbiter();
    let rep = a.net().structural();
    println!(
        "class: {} (free-choice: {}, marked graph: {})",
        rep.class, rep.is_free_choice, rep.is_marked_graph
    );
    let cls = a.classical_report(&opts).unwrap();
    println!("live: {}, safe: {}", cls.live, cls.safe);
    let flows = cpn_petri::semiflows_p(a.net(), 100_000).unwrap();
    println!(
        "P-semiflows: {} (incl. the mutual-exclusion invariant over mutex+granted+done)",
        flows.len()
    );
    let env = cpn_stg::arbiter::client(1)
        .compose(&cpn_stg::arbiter::client(2))
        .unwrap();
    let rec = a.check_receptiveness(&env, &opts).unwrap();
    println!("arbiter ↔ two clients receptive: {}", rec.is_receptive());
}

fn faults(quick: bool) {
    header(
        "FLT",
        "fault-injection sensitivity: every detector vs every fault class",
    );
    let trials = if quick { 2 } else { 8 };
    let seed = 0xC1A0_u64;
    println!("seed: {seed:#x}, trials per (class, model): {trials}\n");
    let t0 = Instant::now();
    let report = cpn_sim::detector_sensitivity(seed, trials);
    println!("{report}");
    println!(
        "every fault detected or provably benign: {}  ({:?})",
        report.all_accounted(),
        t0.elapsed()
    );
}

/// One timed kernel run of the `bench` sweep.
struct KernelRun {
    kernel: &'static str,
    threads: usize,
    seconds: f64,
    states_per_sec: f64,
    resident_marking_bytes: usize,
    spill: Option<SpillRun>,
}

/// Spill-tier counters attached to an out-of-core kernel run.
struct SpillRun {
    resident_budget_bytes: usize,
    segments: usize,
    page_outs: u64,
    page_ins: u64,
    spilled_bytes: u64,
}

fn time_kernel(
    kernel: &'static str,
    threads: usize,
    states: usize,
    run: impl FnOnce() -> cpn_petri::Bounded<cpn_petri::ReachabilityGraph>,
) -> KernelRun {
    let t0 = Instant::now();
    let rg = run().into_value();
    let seconds = t0.elapsed().as_secs_f64();
    assert_eq!(rg.state_count(), states, "{kernel} state count");
    KernelRun {
        kernel,
        threads,
        seconds,
        states_per_sec: states as f64 / seconds,
        resident_marking_bytes: rg.resident_marking_bytes(),
        spill: None,
    }
}

/// Times the out-of-core spill explorer under a resident-payload budget
/// deliberately far below the workload's full arena footprint, so the
/// run proves the marking set genuinely lives (mostly) on disk.
fn time_spilled(
    states: usize,
    net: &PetriNet<String>,
    budget: &cpn_petri::Budget,
    resident_budget_bytes: usize,
) -> KernelRun {
    let compiled = net.compile();
    let m0 = net.initial_marking();
    let config = cpn_petri::SpillConfig {
        resident_payload_bytes: resident_budget_bytes,
        ..cpn_petri::SpillConfig::default()
    };
    let t0 = Instant::now();
    let sp = cpn_petri::reachability_bounded_spilled(&compiled, m0.as_slice(), budget, &config)
        .into_value();
    let seconds = t0.elapsed().as_secs_f64();
    assert_eq!(sp.state_count(), states, "spilled state count");
    let stats = sp.spill_stats();
    KernelRun {
        kernel: "spilled",
        threads: 1,
        seconds,
        states_per_sec: states as f64 / seconds,
        resident_marking_bytes: sp.resident_bytes(),
        spill: Some(SpillRun {
            resident_budget_bytes,
            segments: stats.segments,
            page_outs: stats.page_outs,
            page_ins: stats.page_ins,
            spilled_bytes: stats.spilled_bytes,
        }),
    }
}

/// Modeled per-state marking bytes of the legacy cloned-map explorer:
/// one `Marking` (24-byte `Vec` header + 4 bytes per place) in the state
/// vector, a second clone as the `HashMap` key, plus ~32 bytes of table
/// bucket overhead per entry.
fn legacy_marking_model(places: usize, states: usize) -> usize {
    states * (2 * (24 + 4 * places) + 32)
}

fn bench_explore(quick: bool, json: bool) {
    header(
        "BENCH",
        "exploration kernel sweep (legacy / compiled / parallel / spilled)",
    );
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("host cores: {host_cores} (parallel rows beyond that run oversubscribed)");
    let compose_all = |nets: &[PetriNet<String>]| {
        let mut acc = nets[0].clone();
        for n in &nets[1..] {
            acc = parallel(&acc, n).unwrap();
        }
        acc
    };
    let pipeline_ks: &[usize] = if quick { &[12, 14] } else { &[17, 20] };
    let ring_stages: &[usize] = if quick { &[64] } else { &[512] };
    // The mesh is the 10^7-state acceptance workload: a w×h token-shift
    // torus whose state count is the closed form C(tokens+wh-1, wh-1)
    // on only w*h places, so even ten million markings fit a few
    // hundred MB of arena — and a few MB once delta-spilled.
    let (mesh_tokens, spill_budget) = if quick { (8, 16 << 10) } else { (24, 32 << 20) };
    let mesh_states = cpn_testkit::sync_mesh_states(3, 3, mesh_tokens) as usize;
    // (family, states, net, with_legacy): legacy is skipped on the mesh
    // — two cloned `Marking`s plus HashMap buckets per state put the
    // 10^7 run in multi-GB / multi-minute territory for a kernel that
    // exists only as a baseline.
    let mut nets: Vec<(String, usize, PetriNet<String>, bool)> = Vec::new();
    for &k in pipeline_ks {
        let net = compose_all(&cpn_bench::sync_pipeline(k));
        nets.push((format!("sync_pipeline/{k}"), 1 << k, net, true));
    }
    for &s in ring_stages {
        let (p, c, _, _) = handshake_ring(s, 0);
        let net = parallel(&p, &c).unwrap();
        let states = net
            .reachability_bounded(&cpn_petri::Budget::states(1 << 22))
            .into_value()
            .state_count();
        nets.push((format!("handshake_ring/{s}"), states, net, true));
    }
    nets.push((
        format!("sync_mesh/3x3t{mesh_tokens}"),
        mesh_states,
        cpn_testkit::sync_mesh(3, 3, mesh_tokens),
        false,
    ));

    let mut rows = Vec::new();
    for (family, states, net, with_legacy) in &nets {
        let budget = cpn_petri::Budget::states(states + 1);
        let mut runs = Vec::new();
        if *with_legacy {
            runs.push(time_kernel("legacy", 1, *states, || {
                net.reachability_bounded_legacy(&budget)
            }));
        }
        runs.push(time_kernel("compiled", 1, *states, || {
            net.reachability_bounded(&budget)
        }));
        for threads in [1usize, 2, 4, 8] {
            runs.push(time_kernel("parallel", threads, *states, || {
                net.reachability_bounded_parallel(&budget, threads)
            }));
        }
        if !*with_legacy {
            runs.push(time_spilled(*states, net, &budget, spill_budget));
        }
        let base_rate = runs[0].states_per_sec;
        let legacy_bytes = legacy_marking_model(net.place_count(), *states);
        let arena_bytes = runs
            .iter()
            .find(|r| r.kernel == "compiled")
            .map_or(0, |r| r.resident_marking_bytes);
        let drop_pct = 100.0 * (1.0 - arena_bytes as f64 / legacy_bytes as f64);
        println!("{family}: {states} states, {} places", net.place_count());
        for r in &runs {
            println!(
                "  {:<10} x{} {:>10.0} states/s ({:.2}x {})  markings {:>12} B",
                r.kernel,
                r.threads,
                r.states_per_sec,
                r.states_per_sec / base_rate,
                runs[0].kernel,
                r.resident_marking_bytes
            );
            if let Some(sp) = &r.spill {
                println!(
                    "             resident budget {} B, {} segments, \
                     {} page-outs / {} page-ins, {} B spilled to disk",
                    sp.resident_budget_bytes,
                    sp.segments,
                    sp.page_outs,
                    sp.page_ins,
                    sp.spilled_bytes
                );
            }
        }
        println!(
            "  marking memory: arena {arena_bytes} B vs modeled legacy {legacy_bytes} B \
             -> {drop_pct:.1}% drop"
        );
        rows.push((family.clone(), *states, net.place_count(), runs, drop_pct));
    }

    if json {
        let mut out = String::from("{\n  \"bench\": \"explore_kernel\",\n");
        out.push_str(&format!(
            "  \"mode\": \"{}\",\n  \"host_cores\": {host_cores},\n",
            if quick { "quick" } else { "full" }
        ));
        out.push_str(
            "  \"legacy_marking_model\": \
             \"per_state = 2*(24 + 4*places) + 32 (state vector + cloned HashMap key + bucket)\",\n",
        );
        out.push_str("  \"workloads\": [\n");
        for (i, (family, states, places, runs, drop_pct)) in rows.iter().enumerate() {
            let arena_bytes = runs
                .iter()
                .find(|r| r.kernel == "compiled")
                .map_or(0, |r| r.resident_marking_bytes);
            out.push_str(&format!(
                "    {{\n      \"family\": \"{family}\",\n      \"states\": {states},\n      \
                 \"places\": {places},\n      \"legacy_marking_bytes_modeled\": {},\n      \
                 \"resident_marking_bytes\": {arena_bytes},\n      \
                 \"marking_memory_drop_pct\": {drop_pct:.1},\n      \
                 \"baseline\": \"{}\",\n      \"kernels\": [\n",
                legacy_marking_model(*places, *states),
                runs[0].kernel,
            ));
            for (j, r) in runs.iter().enumerate() {
                let spill_json = match &r.spill {
                    Some(sp) => format!(
                        ", \"resident_marking_bytes\": {}, \"spill\": {{\
                         \"resident_budget_bytes\": {}, \"segments\": {}, \
                         \"page_outs\": {}, \"page_ins\": {}, \"spilled_bytes\": {}}}",
                        r.resident_marking_bytes,
                        sp.resident_budget_bytes,
                        sp.segments,
                        sp.page_outs,
                        sp.page_ins,
                        sp.spilled_bytes
                    ),
                    None => String::new(),
                };
                out.push_str(&format!(
                    "        {{\"kernel\": \"{}\", \"threads\": {}, \"seconds\": {:.4}, \
                     \"states_per_sec\": {:.0}, \"speedup_vs_baseline\": {:.3}{}}}{}\n",
                    r.kernel,
                    r.threads,
                    r.seconds,
                    r.states_per_sec,
                    r.states_per_sec / runs[0].states_per_sec,
                    spill_json,
                    if j + 1 < runs.len() { "," } else { "" }
                ));
            }
            out.push_str(&format!(
                "      ]\n    }}{}\n",
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write("BENCH_explore.json", &out).expect("write BENCH_explore.json");
        println!("wrote BENCH_explore.json");
    }
}

/// CI acceptance smoke for the lock-free kernel: on hosts with at least
/// four cores, `parallel/4` must reach ≥2.0× the sequential compiled
/// kernel's rate on the 2^20-state `sync_pipeline/20` workload. On
/// smaller hosts the measurement still runs and prints, but the
/// assertion is skipped — a 1-core container cannot exhibit parallel
/// speedup, and asserting there would only test the OS scheduler.
fn smoke_parallel() {
    header(
        "SMOKE",
        "lock-free parallel acceptance: parallel/4 >= 2.0x compiled/1 on sync_pipeline/20",
    );
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let net = cpn_testkit::sync_pipeline_net(20);
    let states = 1usize << 20;
    let budget = cpn_petri::Budget::states(states + 1);
    let best_of = |run: &dyn Fn() -> usize| {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            assert_eq!(run(), states, "state count");
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    let seq = best_of(&|| net.reachability_bounded(&budget).into_value().state_count());
    let par = best_of(&|| {
        net.reachability_bounded_parallel(&budget, 4)
            .into_value()
            .state_count()
    });
    let speedup = seq / par;
    println!(
        "host cores: {host_cores}\ncompiled/1: {seq:.3}s  parallel/4: {par:.3}s  \
         speedup: {speedup:.2}x (best of 3)"
    );
    if host_cores < 4 {
        println!("SKIP: host has {host_cores} core(s); the >=2.0x assertion needs 4");
        return;
    }
    assert!(
        speedup >= 2.0,
        "parallel/4 must be >=2.0x compiled/1 on sync_pipeline/20, measured {speedup:.2}x"
    );
    println!("PASS");
}

/// One timed hiding-engine run of the `bench` sweep.
struct HideRun {
    engine: &'static str,
    seconds: f64,
    allocs: u64,
}

/// Measured row for one contraction workload: both engines, checked for
/// bit-identical output.
struct HideRow {
    family: String,
    places: usize,
    transitions: usize,
    hidden_labels: usize,
    legacy: HideRun,
    engine: HideRun,
}

impl HideRow {
    fn speedup(&self) -> f64 {
        self.legacy.seconds / self.engine.seconds
    }
    fn alloc_ratio(&self) -> f64 {
        self.legacy.allocs as f64 / self.engine.allocs as f64
    }
}

fn measure_hide<L: Label>(family: String, net: &PetriNet<L>, hidden: &BTreeSet<L>) -> HideRow {
    let budget = cpn_petri::Budget::new(usize::MAX, 1_000_000);
    // Warm-up run doubling as the expectation for the identity check;
    // its duration sizes the iteration count so micro-workloads are
    // timed over enough repetitions to dominate scheduler noise.
    let t0 = Instant::now();
    let expect = cpn_core::hide_labels_bounded(net, hidden, &budget)
        .expect("bench workloads hide cleanly")
        .into_value();
    let warm = t0.elapsed().as_secs_f64();
    let iters = ((0.05 / warm.max(1e-9)) as usize).clamp(1, 2_000);
    let run = |legacy: bool| -> HideRun {
        let a0 = alloc_count();
        let t0 = Instant::now();
        for _ in 0..iters {
            let out = if legacy {
                cpn_core::hide_labels_bounded_legacy(net, hidden, &budget)
            } else {
                cpn_core::hide_labels_bounded(net, hidden, &budget)
            }
            .expect("bench workloads hide cleanly")
            .into_value();
            assert_eq!(out, expect, "engines must agree (legacy={legacy})");
        }
        let seconds = t0.elapsed().as_secs_f64() / iters as f64;
        let allocs = (alloc_count() - a0) / iters as u64;
        HideRun {
            engine: if legacy { "legacy" } else { "engine" },
            seconds,
            allocs,
        }
    };
    let legacy = run(true);
    let engine = run(false);
    HideRow {
        family,
        places: net.place_count(),
        transitions: net.transition_count(),
        hidden_labels: hidden.len(),
        legacy,
        engine,
    }
}

fn bench_hide(quick: bool, json: bool) {
    header(
        "BENCH",
        "contraction engine sweep (legacy rebuild vs in-place editor)",
    );
    let rings: &[(usize, usize)] = if quick {
        &[(4, 4), (8, 8)]
    } else {
        &[(8, 8), (16, 8), (16, 16), (24, 16)]
    };
    let chains: &[usize] = if quick { &[8, 16] } else { &[8, 16, 32] };
    let mut rows = Vec::new();
    for &(segments, taus) in rings {
        let (net, hidden) = cpn_bench::tau_ring(segments, taus);
        rows.push(measure_hide(
            format!("tau_ring/{segments}x{taus}"),
            &net,
            &hidden,
        ));
    }
    for &modules in chains {
        let (net, hidden) = cpn_bench::cip_chain_workload(modules);
        rows.push(measure_hide(format!("cip_chain/{modules}"), &net, &hidden));
    }

    for r in &rows {
        println!(
            "{}: {}p/{}t, {} hidden labels",
            r.family, r.places, r.transitions, r.hidden_labels
        );
        for run in [&r.legacy, &r.engine] {
            println!(
                "  {:<8} {:>9.4} s  {:>12} allocs",
                run.engine, run.seconds, run.allocs
            );
        }
        println!(
            "  -> speedup {:.2}x, alloc ratio {:.2}x",
            r.speedup(),
            r.alloc_ratio()
        );
    }

    if json {
        let mut out = String::from("{\n  \"bench\": \"hide_contract\",\n");
        out.push_str(&format!(
            "  \"mode\": \"{}\",\n",
            if quick { "quick" } else { "full" }
        ));
        out.push_str("  \"workloads\": [\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\n      \"family\": \"{}\",\n      \"places\": {},\n      \
                 \"transitions\": {},\n      \"hidden_labels\": {},\n      \
                 \"legacy_seconds\": {:.6},\n      \"engine_seconds\": {:.6},\n      \
                 \"legacy_allocs\": {},\n      \"engine_allocs\": {},\n      \
                 \"speedup\": {:.3},\n      \"alloc_ratio\": {:.3}\n    }}{}\n",
                r.family,
                r.places,
                r.transitions,
                r.hidden_labels,
                r.legacy.seconds,
                r.engine.seconds,
                r.legacy.allocs,
                r.engine.allocs,
                r.speedup(),
                r.alloc_ratio(),
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write("BENCH_hide.json", &out).expect("write BENCH_hide.json");
        println!("wrote BENCH_hide.json");
    }
}

/// One alphabet-layer workload: the generic label-level baseline vs the
/// symbolized (interned `Sym` + bitset) path.
struct AlphaRow {
    workload: String,
    generic: HideRun,
    symbolized: HideRun,
}

impl AlphaRow {
    fn speedup(&self) -> f64 {
        self.generic.seconds / self.symbolized.seconds
    }
    fn alloc_ratio(&self) -> f64 {
        self.generic.allocs as f64 / self.symbolized.allocs.max(1) as f64
    }
}

/// Times `generic` vs `symbolized` over enough iterations to dominate
/// scheduler noise, counting allocations per iteration.
fn measure_alpha(
    workload: String,
    mut generic: impl FnMut(),
    mut symbolized: impl FnMut(),
) -> AlphaRow {
    let t0 = Instant::now();
    generic();
    let warm = t0.elapsed().as_secs_f64();
    let iters = ((0.05 / warm.max(1e-9)) as usize).clamp(1, 5_000);
    let run = |f: &mut dyn FnMut(), name: &'static str| -> HideRun {
        let a0 = alloc_count();
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        HideRun {
            engine: name,
            seconds: t0.elapsed().as_secs_f64() / iters as f64,
            allocs: (alloc_count() - a0) / iters as u64,
        }
    };
    let generic = run(&mut generic, "generic");
    let symbolized = run(&mut symbolized, "symbolized");
    AlphaRow {
        workload,
        generic,
        symbolized,
    }
}

/// Two nets over large, partially overlapping alphabets (one shared
/// label in four), for the sync-set computation workload.
fn sync_pair(labels: usize) -> (PetriNet<String>, PetriNet<String>) {
    let build = |prefix: &str| {
        let mut net: PetriNet<String> = PetriNet::new();
        let p = net.add_place("p");
        net.set_initial(p, 1);
        for i in 0..labels {
            let label = if i % 4 == 0 {
                format!("shared{i}")
            } else {
                format!("{prefix}{i}")
            };
            net.add_transition([p], label, [p]).expect("self loop");
        }
        net
    };
    (build("left"), build("right"))
}

fn bench_alphabet(quick: bool, json: bool) {
    header(
        "BENCH",
        "alphabet layer sweep (generic label ops vs interned symbols)",
    );
    let mut rows: Vec<AlphaRow> = Vec::new();

    // Hide/contract: the engine runs on symbols end-to-end, the legacy
    // rebuild clones labels at every step.
    let rings: &[(usize, usize)] = if quick {
        &[(8, 8)]
    } else {
        &[(8, 8), (16, 16)]
    };
    for &(segments, taus) in rings {
        let (net, hidden) = cpn_bench::tau_ring(segments, taus);
        let r = measure_hide(
            format!("hide_contract/tau_ring/{segments}x{taus}"),
            &net,
            &hidden,
        );
        rows.push(AlphaRow {
            workload: r.family,
            generic: r.legacy,
            symbolized: r.engine,
        });
    }
    let chain = if quick { 8 } else { 16 };
    let (net, hidden) = cpn_bench::cip_chain_workload(chain);
    let r = measure_hide(format!("hide_contract/cip_chain/{chain}"), &net, &hidden);
    rows.push(AlphaRow {
        workload: r.family,
        generic: r.legacy,
        symbolized: r.engine,
    });

    // Sync-set computation (parallel composition / receptiveness entry):
    // owned label-set intersection vs the bitset-backed common alphabet.
    let n_labels = if quick { 64 } else { 256 };
    let (n1, n2) = sync_pair(n_labels);
    let generic_sync = || {
        let a1 = n1.alphabet();
        let a2 = n2.alphabet();
        let shared: BTreeSet<String> = a1.intersection(&a2).cloned().collect();
        std::hint::black_box(shared);
    };
    let symbolized_sync = || {
        std::hint::black_box(cpn_core::common_alphabet(&n1, &n2));
    };
    {
        let a1 = n1.alphabet();
        let a2 = n2.alphabet();
        let expect: BTreeSet<String> = a1.intersection(&a2).cloned().collect();
        assert_eq!(
            expect,
            cpn_core::common_alphabet(&n1, &n2),
            "sync-set paths must agree"
        );
    }
    rows.push(measure_alpha(
        format!("sync_set/{n_labels}"),
        generic_sync,
        symbolized_sync,
    ));

    // Full tracked composition on the common alphabet: the fused path
    // resolves the sync set as a bitset intersection inside the compose
    // (no owned label set, no per-label clone), the generic path
    // materializes `common_alphabet` first and interns it back in.
    let generic_compose = || {
        let shared: BTreeSet<String> = cpn_core::common_alphabet(&n1, &n2);
        std::hint::black_box(cpn_core::parallel_tracked(&n1, &n2, &shared).expect("composable"));
    };
    let fused_compose = || {
        std::hint::black_box(cpn_core::parallel_tracked_common(&n1, &n2).expect("composable"));
    };
    {
        let shared = cpn_core::common_alphabet(&n1, &n2);
        let by_labels = cpn_core::parallel_tracked(&n1, &n2, &shared).expect("composable");
        let fused = cpn_core::parallel_tracked_common(&n1, &n2).expect("composable");
        assert_eq!(by_labels.net, fused.net, "compose paths must agree");
    }
    rows.push(measure_alpha(
        format!("sync_set_compose/{n_labels}"),
        generic_compose,
        fused_compose,
    ));

    // Language projection: symbol-encoded trace filtering vs
    // materialize-filter-rebuild at the label level.
    let k = 4usize;
    let depth = if quick { 5 } else { 6 };
    let alphabet: BTreeSet<String> = (0..k).map(|i| format!("sig{i}")).collect();
    let mut traces: Vec<Vec<String>> = vec![Vec::new()];
    let mut frontier = traces.clone();
    for _ in 0..depth {
        let mut next = Vec::new();
        for t in &frontier {
            for l in &alphabet {
                let mut ext = t.clone();
                ext.push(l.clone());
                next.push(ext);
            }
        }
        traces.extend(next.iter().cloned());
        frontier = next;
    }
    let lang = cpn_trace::Language::from_traces(alphabet.clone(), traces, depth);
    let keep: BTreeSet<String> = alphabet.iter().take(k / 2).cloned().collect();
    let keep_syms: cpn_petri::AlphaSet =
        keep.iter().filter_map(|l| lang.interner().get(l)).collect();
    let generic_project = || {
        let filtered: Vec<Vec<String>> = lang
            .iter()
            .map(|t| t.into_iter().filter(|x| keep.contains(x)).collect())
            .collect();
        std::hint::black_box(cpn_trace::Language::from_traces(
            keep.clone(),
            filtered,
            depth,
        ));
    };
    let symbolized_project = || {
        std::hint::black_box(lang.project_syms(&keep_syms));
    };
    assert_eq!(
        lang.project_syms(&keep_syms),
        lang.project(&keep),
        "projection paths must agree"
    );
    rows.push(measure_alpha(
        format!("lang_project/{k}x{depth}"),
        generic_project,
        symbolized_project,
    ));

    for r in &rows {
        println!("{}", r.workload);
        for run in [&r.generic, &r.symbolized] {
            println!(
                "  {:<10} {:>9.6} s  {:>12} allocs",
                run.engine, run.seconds, run.allocs
            );
        }
        println!(
            "  -> speedup {:.2}x, alloc ratio {:.2}x",
            r.speedup(),
            r.alloc_ratio()
        );
    }

    if json {
        let mut out = String::from("{\n  \"bench\": \"alphabet\",\n");
        out.push_str(&format!(
            "  \"mode\": \"{}\",\n",
            if quick { "quick" } else { "full" }
        ));
        out.push_str("  \"workloads\": [\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\n      \"workload\": \"{}\",\n                       \"generic_seconds\": {:.6},\n      \"symbolized_seconds\": {:.6},\n                       \"generic_allocs\": {},\n      \"symbolized_allocs\": {},\n                       \"speedup\": {:.3},\n      \"alloc_ratio\": {:.3}\n    }}{}\n",
                r.workload,
                r.generic.seconds,
                r.symbolized.seconds,
                r.generic.allocs,
                r.symbolized.allocs,
                r.speedup(),
                r.alloc_ratio(),
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write("BENCH_alphabet.json", &out).expect("write BENCH_alphabet.json");
        println!("wrote BENCH_alphabet.json");
    }
}

/// One explored-state measurement of the `bench_reduce` sweep.
struct ReduceMode {
    mode: &'static str,
    states: usize,
    seconds: f64,
    deadlock_free: bool,
}

fn run_reduce_mode<L: Label>(
    mode: &'static str,
    net: &PetriNet<L>,
    stubborn: bool,
    budget: &cpn_petri::Budget,
) -> ReduceMode {
    let t0 = Instant::now();
    let rg = if stubborn {
        net.reachability_stubborn_bounded(budget, &[])
    } else {
        net.reachability_bounded(budget)
    }
    .into_value();
    ReduceMode {
        mode,
        states: rg.state_count(),
        seconds: t0.elapsed().as_secs_f64(),
        deadlock_free: rg.deadlock_states().is_empty(),
    }
}

fn bench_reduce(quick: bool, json: bool) {
    header(
        "BENCH",
        "reduction + stubborn exploration sweep (composed CIP chains)",
    );
    let chains: &[usize] = if quick { &[4, 8] } else { &[8, 12, 16] };
    let budget = cpn_petri::Budget::states(1 << 22);
    struct Row {
        family: String,
        places: usize,
        transitions: usize,
        reduced_places: usize,
        reduced_transitions: usize,
        stats: cpn_core::ReductionStats,
        reduce_seconds: f64,
        modes: Vec<ReduceMode>,
        factor: f64,
        deadlock_free_agrees: bool,
    }
    let mut rows: Vec<Row> = Vec::new();
    for &modules in chains {
        let (net, hidden) = cpn_bench::cip_chain_workload(modules);
        let t0 = Instant::now();
        let (reduced, stats) =
            cpn_core::reduce_for_analysis(&net, &hidden).expect("cip chains reduce cleanly");
        let reduce_seconds = t0.elapsed().as_secs_f64();
        let modes = vec![
            run_reduce_mode("full", &net, false, &budget),
            run_reduce_mode("stubborn", &net, true, &budget),
            run_reduce_mode("reduced", &reduced, false, &budget),
            run_reduce_mode("reduced+stubborn", &reduced, true, &budget),
        ];
        let factor = modes[0].states as f64 / modes[3].states.max(1) as f64;
        // Both techniques preserve deadlock freedom (reduction only when
        // no transition was pruned as stranded — cip chains never are).
        let deadlock_free_agrees = stats.stranded_transitions == 0
            && modes
                .iter()
                .all(|m| m.deadlock_free == modes[0].deadlock_free);
        rows.push(Row {
            family: format!("cip_chain/{modules}"),
            places: net.place_count(),
            transitions: net.transition_count(),
            reduced_places: reduced.place_count(),
            reduced_transitions: reduced.transition_count(),
            stats,
            reduce_seconds,
            modes,
            factor,
            deadlock_free_agrees,
        });
    }

    for r in &rows {
        println!(
            "{}: {}p/{}t -> {}p/{}t after {} reductions ({:.4} s to reduce)",
            r.family,
            r.places,
            r.transitions,
            r.reduced_places,
            r.reduced_transitions,
            r.stats.total(),
            r.reduce_seconds
        );
        for m in &r.modes {
            println!(
                "  {:<17} {:>9} states  {:>9.4} s  deadlock-free: {}",
                m.mode, m.states, m.seconds, m.deadlock_free
            );
        }
        println!(
            "  -> explored-state reduction {:.1}x (reduced+stubborn vs full), \
             verdicts agree: {}",
            r.factor, r.deadlock_free_agrees
        );
    }

    if json {
        let mut out = String::from("{\n  \"bench\": \"reduce_stubborn\",\n");
        out.push_str(&format!(
            "  \"mode\": \"{}\",\n",
            if quick { "quick" } else { "full" }
        ));
        out.push_str("  \"workloads\": [\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\n      \"family\": \"{}\",\n      \"places\": {},\n      \
                 \"transitions\": {},\n      \"reduced_places\": {},\n      \
                 \"reduced_transitions\": {},\n      \"reductions\": {{\
                 \"series_places\": {}, \"series_transitions\": {}, \
                 \"self_loop_places\": {}, \"duplicate_transitions\": {}, \
                 \"redundant_places\": {}, \"stranded_transitions\": {}, \
                 \"isolated_places\": {}, \"total\": {}}},\n      \
                 \"reduce_seconds\": {:.6},\n      \"modes\": [\n",
                r.family,
                r.places,
                r.transitions,
                r.reduced_places,
                r.reduced_transitions,
                r.stats.series_places,
                r.stats.series_transitions,
                r.stats.self_loop_places,
                r.stats.duplicate_transitions,
                r.stats.redundant_places,
                r.stats.stranded_transitions,
                r.stats.isolated_places,
                r.stats.total(),
                r.reduce_seconds,
            ));
            for (j, m) in r.modes.iter().enumerate() {
                out.push_str(&format!(
                    "        {{\"mode\": \"{}\", \"states\": {}, \"seconds\": {:.4}, \
                     \"deadlock_free\": {}}}{}\n",
                    m.mode,
                    m.states,
                    m.seconds,
                    m.deadlock_free,
                    if j + 1 < r.modes.len() { "," } else { "" }
                ));
            }
            out.push_str(&format!(
                "      ],\n      \"state_reduction_factor\": {:.2},\n      \
                 \"deadlock_free_agrees\": {}\n    }}{}\n",
                r.factor,
                r.deadlock_free_agrees,
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write("BENCH_reduce.json", &out).expect("write BENCH_reduce.json");
        println!("wrote BENCH_reduce.json");
    }
}

/// One module-stack recompile measurement: a cold build of the full
/// balanced compose plan against a fresh derivation store, then a
/// single-leaf edit and a warm re-run against the same store.
struct ModulesRow {
    family: String,
    leaves: usize,
    plan_steps: usize,
    spine: usize,
    cold_seconds: f64,
    incremental_seconds: f64,
    cold_misses: u64,
    incremental_hits: u64,
    incremental_misses: u64,
}

impl ModulesRow {
    /// Incremental time as a fraction of cold time.
    fn ratio(&self) -> f64 {
        if self.cold_seconds > 0.0 {
            self.incremental_seconds / self.cold_seconds
        } else {
            0.0
        }
    }
}

fn measure_modules(mut sc: cpn_testkit::ModuleScenario) -> ModulesRow {
    use cpn_petri::Bounded;

    let budget = cpn_petri::Budget::new(usize::MAX, usize::MAX);
    let leaves = sc.leaves.clone();
    let name = sc.name.clone();
    let plan_steps = sc.plan.len();
    let spine = sc.spine_len(0);

    let t0 = Instant::now();
    let cold_top = sc.run(&leaves, &budget).expect("cold compose plan");
    let cold_seconds = t0.elapsed().as_secs_f64();
    assert!(
        matches!(cold_top, Bounded::Complete(_)),
        "{name}: cold build exhausted an unbounded budget"
    );
    let cold_misses = sc.lib.store().stats().misses;

    let edited = sc.edited_leaf(0);
    let mut patched = leaves.clone();
    patched[0] = edited;
    sc.lib.store_mut().reset_counters();
    let t1 = Instant::now();
    sc.run(&patched, &budget).expect("incremental compose plan");
    let incremental_seconds = t1.elapsed().as_secs_f64();
    let warm = sc.lib.store().stats();

    ModulesRow {
        family: name,
        leaves: leaves.len(),
        plan_steps,
        spine,
        cold_seconds,
        incremental_seconds,
        cold_misses,
        incremental_hits: warm.hits,
        incremental_misses: warm.misses,
    }
}

/// `bench` (modules): cold-vs-incremental recompile sweep over the
/// testkit's module-stack scenarios. The headline acceptance number is
/// the 1000-leaf translator chain: a single-leaf edit must recompile
/// in well under 5% of the cold-build time, because the balanced plan
/// confines recomputation to the `⌈log₂ n⌉`-node spine.
fn bench_modules(quick: bool, json: bool) {
    header(
        "BENCH",
        "module library cold vs incremental recompile (hash-consed derivation store)",
    );
    let chains: &[usize] = if quick { &[64, 256] } else { &[64, 256, 1000] };
    let mut rows = Vec::new();
    for &n in chains {
        rows.push(measure_modules(
            cpn_testkit::ModuleScenario::translator_chain(n),
        ));
    }
    rows.push(measure_modules(
        cpn_testkit::ModuleScenario::handshake_mesh(if quick { 4 } else { 8 }, 2),
    ));
    rows.push(measure_modules(cpn_testkit::ModuleScenario::arbiter_tree(
        if quick { 3 } else { 4 },
    )));

    for r in &rows {
        println!(
            "{}: {} leaves, {} compose steps, spine {}",
            r.family, r.leaves, r.plan_steps, r.spine
        );
        println!(
            "  cold {:>9.4} s ({} store misses)   incremental {:>9.4} s \
             ({} hits / {} misses)   ratio {:.3}%",
            r.cold_seconds,
            r.cold_misses,
            r.incremental_seconds,
            r.incremental_hits,
            r.incremental_misses,
            100.0 * r.ratio()
        );
    }

    if json {
        let mut out = String::from("{\n  \"bench\": \"modules\",\n");
        out.push_str(&format!(
            "  \"mode\": \"{}\",\n",
            if quick { "quick" } else { "full" }
        ));
        out.push_str("  \"workloads\": [\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\n      \"family\": \"{}\",\n      \"leaves\": {},\n      \
                 \"plan_steps\": {},\n      \"spine\": {},\n      \
                 \"cold_seconds\": {:.6},\n      \"incremental_seconds\": {:.6},\n      \
                 \"cold_misses\": {},\n      \"incremental_hits\": {},\n      \
                 \"incremental_misses\": {},\n      \"incremental_ratio\": {:.6}\n    }}{}\n",
                r.family,
                r.leaves,
                r.plan_steps,
                r.spine,
                r.cold_seconds,
                r.incremental_seconds,
                r.cold_misses,
                r.incremental_hits,
                r.incremental_misses,
                r.ratio(),
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write("BENCH_modules.json", &out).expect("write BENCH_modules.json");
        println!("wrote BENCH_modules.json");
    }
}

/// `smoke-incremental`: the CI gate for the derivation store. Builds a
/// fixed 256-module translator chain cold, edits one leaf, re-runs the
/// plan, and asserts *by store counters* (not timing, which would be
/// flaky on shared runners) that untouched modules were not
/// recompiled: every non-spine compose node must replay from the memo.
fn smoke_incremental() {
    use cpn_petri::Bounded;

    header(
        "SMOKE",
        "incremental recompile: 1-leaf edit of a 256-module stack",
    );
    let n = 256;
    let mut sc = cpn_testkit::ModuleScenario::translator_chain(n);
    let budget = cpn_petri::Budget::new(usize::MAX, usize::MAX);
    let leaves = sc.leaves.clone();
    let top = sc.run(&leaves, &budget).expect("cold compose plan");
    assert!(matches!(top, Bounded::Complete(_)), "cold build exhausted");

    let edited = sc.edited_leaf(0);
    let mut patched = leaves.clone();
    patched[0] = edited;
    sc.lib.store_mut().reset_counters();
    sc.run(&patched, &budget).expect("incremental compose plan");

    let spine = sc.spine_len(0);
    let stats = sc.lib.store().stats();
    let untouched = (sc.plan.len() - spine) as u64;
    assert_eq!(
        stats.hits, untouched,
        "every untouched compose node must replay from the memo \
         (hits {} != untouched nodes {untouched})",
        stats.hits
    );
    assert_eq!(
        stats.misses,
        4 * spine as u64,
        "only the {spine}-node spine may recompute (compose + parallel \
         + hide + reduce each)"
    );
    println!(
        "  ok: {} untouched nodes replayed, {} spine nodes recomputed ({} memo misses)",
        untouched, spine, stats.misses
    );
}

/// `serve`: boot an in-process `cpn-serve` daemon on loopback TCP and
/// measure the service-level numbers the robustness work claims —
/// cached-compile round-trip latency and throughput, deadline-bounded
/// degradation of an explosive request while small requests keep
/// completing on the other workers, and graceful-drain time.
/// The fastest of `n` timed attempts. On a small busy host a single
/// measurement can absorb a scheduler stall several times the workload
/// itself; the minimum is the standard noise-free estimate, and taking
/// it for *every* row keeps the reported ratios symmetric.
fn best_of(n: usize, mut attempt: impl FnMut() -> f64) -> f64 {
    (0..n).map(|_| attempt()).fold(f64::INFINITY, f64::min)
}

fn bench_serve(quick: bool, json: bool) {
    use cpn_serve::{Client, Endpoint, PipelinedClient, Request, Response, Server, ServerConfig};
    use std::time::{Duration, Instant};

    let small_net = r#"net small {
    places { p* q }
    transition "a" { pre: p; post: q }
    transition "b" { pre: q; post: p }
}"#;
    // `toggles` independent flip-flops: 2^toggles reachable states,
    // far beyond what a 50 ms deadline can finish.
    let toggles = if quick { 18usize } else { 22 };
    let mut boom_doc = String::from("net boom {\n    places {");
    for i in 0..toggles {
        boom_doc.push_str(&format!(" a{i}* b{i}"));
    }
    boom_doc.push_str(" }\n");
    for i in 0..toggles {
        boom_doc.push_str(&format!(
            "    transition \"up{i}\" {{ pre: a{i}; post: b{i} }}\n"
        ));
        boom_doc.push_str(&format!(
            "    transition \"down{i}\" {{ pre: b{i}; post: a{i} }}\n"
        ));
    }
    boom_doc.push('}');

    let config = ServerConfig {
        workers: 4,
        // Deep enough that the pipeline-depth sweep (window up to 16)
        // never sheds; shedding behaviour has its own measurements.
        queue_depth: 64,
        default_deadline: Duration::from_secs(10),
        drain_grace: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let server = Server::bind(&[Endpoint::Tcp("127.0.0.1:0".into())], config).expect("bind");
    let ep = server.local_endpoints().expect("endpoints").remove(0);
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let reach = |deadline_ms| Request::Reach {
        net: "small".into(),
        max_states: 1_000,
        deadline_ms,
        threads: 1,
        stream: false,
        doc: small_net.into(),
    };
    let expect_complete = |resp: Response| match resp {
        Response::Result(s) => assert!(s.is_complete()),
        other => panic!("unexpected response: {other:?}"),
    };
    let requests = if quick { 200usize } else { 2_000 };
    let mut client = Client::connect(&ep).expect("connect");
    client
        .request(&reach(None))
        .expect("warm the compile cache");

    let started = Instant::now();
    let mut latencies = Vec::with_capacity(requests);
    for _ in 0..requests {
        let t = Instant::now();
        match client.request(&reach(None)).expect("reach") {
            Response::Result(s) => assert!(s.is_complete()),
            other => panic!("unexpected response: {other:?}"),
        }
        latencies.push(t.elapsed().as_secs_f64());
    }
    let round_trip_seconds = started.elapsed().as_secs_f64();
    latencies.sort_by(f64::total_cmp);
    let rps = requests as f64 / round_trip_seconds;
    let p50_us = latencies[requests / 2] * 1e6;
    let p99_us = latencies[(requests * 99) / 100] * 1e6;

    // Batch-size sweep: the same 64 cached reaches as 64 sequential
    // round trips vs batches of 1/8/64. The per-item compute is
    // microseconds, so the ratio isolates the per-round-trip overhead
    // (syscalls, scheduling, wire turnarounds) the batch path amortizes.
    let batch_total = 64usize;
    let seq64_seconds = best_of(3, || {
        let t = Instant::now();
        for _ in 0..batch_total {
            expect_complete(client.request(&reach(None)).expect("sequential baseline"));
        }
        t.elapsed().as_secs_f64()
    });
    let mut batch_rows: Vec<(usize, f64, f64, f64)> = Vec::new();
    for &size in &[1usize, 8, 64] {
        let rounds = batch_total / size;
        let secs = best_of(3, || {
            let t = Instant::now();
            for _ in 0..rounds {
                let items: Vec<Request> = (0..size).map(|_| reach(None)).collect();
                let resps = client.batch(items, Some(10_000)).expect("batch");
                assert_eq!(resps.len(), size);
                for resp in resps {
                    expect_complete(resp);
                }
            }
            t.elapsed().as_secs_f64()
        });
        batch_rows.push((size, secs, batch_total as f64 / secs, seq64_seconds / secs));
    }

    // Pipeline-depth sweep: the same request stream through a window of
    // 1/4/8/16 in-flight requests. Depth 1 is lock-step; deeper windows
    // keep the pipe full instead of stalling a full round trip per
    // request.
    let pipe_total = if quick { 192usize } else { 768 };
    let mut pipe_rows: Vec<(usize, f64, f64)> = Vec::new();
    for &depth in &[1usize, 4, 8, 16] {
        let secs = best_of(3, || {
            let mut pc = PipelinedClient::connect(&ep, depth).expect("pipelined connect");
            let t = Instant::now();
            for _ in 0..pipe_total {
                pc.submit(&reach(None)).expect("submit");
            }
            let done = pc.drain().expect("drain");
            let secs = t.elapsed().as_secs_f64();
            assert_eq!(done.len(), pipe_total);
            for (_, resp) in done {
                expect_complete(resp);
            }
            secs
        });
        pipe_rows.push((depth, secs, pipe_total as f64 / secs));
    }
    let batch64_speedup = batch_rows.last().map_or(0.0, |r| r.3);
    let depth1_seconds = pipe_rows[0].1;
    let depth8_speedup = depth1_seconds / pipe_rows[2].1;

    let boom_ep = ep.clone();
    let boom = std::thread::spawn(move || {
        let mut c = Client::connect(&boom_ep).expect("connect");
        let t = Instant::now();
        let resp = c
            .request(&Request::Reach {
                net: "boom".into(),
                max_states: 500_000_000,
                deadline_ms: Some(50),
                threads: 1,
                stream: false,
                doc: boom_doc,
            })
            .expect("explosive reach");
        (resp, t.elapsed().as_secs_f64())
    });
    let mut concurrent_small: Vec<f64> = Vec::new();
    for _ in 0..20 {
        let t = Instant::now();
        match client.request(&reach(Some(5_000))).expect("small reach") {
            Response::Result(s) => assert!(s.is_complete()),
            other => panic!("unexpected response: {other:?}"),
        }
        concurrent_small.push(t.elapsed().as_secs_f64());
    }
    let (boom_resp, boom_seconds) = boom.join().expect("boom thread");
    let (boom_states, boom_stopped) = match boom_resp {
        Response::Result(s) => (s.states, s.stopped.unwrap_or_default()),
        other => panic!("expected a partial Result, got {other:?}"),
    };
    let worst_small_ms = concurrent_small.iter().copied().fold(0.0f64, f64::max) * 1e3;

    drop(client);
    let drain_started = Instant::now();
    handle.begin_drain();
    let stats = join.join().expect("server run");
    let drain_seconds = drain_started.elapsed().as_secs_f64();

    println!(
        "serve: {requests} cached reach round-trips in {round_trip_seconds:.3} s \
         ({rps:.0} req/s, p50 {p50_us:.0} us, p99 {p99_us:.0} us)"
    );
    for (size, secs, brps, speedup) in &batch_rows {
        println!(
            "serve: batch size {size:>2}: {batch_total} reaches in {secs:.4} s \
             ({brps:.0} req/s, {speedup:.1}x vs sequential)"
        );
    }
    for (depth, secs, prps) in &pipe_rows {
        println!(
            "serve: pipeline depth {depth:>2}: {pipe_total} reaches in {secs:.4} s \
             ({prps:.0} req/s)"
        );
    }
    println!(
        "serve: batch-64 speedup {batch64_speedup:.1}x, pipeline depth-8 speedup \
         {depth8_speedup:.1}x"
    );
    println!(
        "serve: explosive 2^{toggles}-state net under a 50 ms deadline -> {boom_states} \
         states (stopped={boom_stopped}) in {boom_seconds:.3} s; worst concurrent small \
         round-trip {worst_small_ms:.1} ms"
    );
    println!(
        "serve: drain {drain_seconds:.3} s; served={} shed={} panics={} \
         cache_hits={} cache_misses={}",
        stats.served, stats.shed, stats.panics, stats.cache_hits, stats.cache_misses
    );

    if json {
        let mut batch_json = String::new();
        for (i, (size, secs, brps, speedup)) in batch_rows.iter().enumerate() {
            batch_json.push_str(&format!(
                "    {{\"size\": {size}, \"requests\": {batch_total}, \"seconds\": {secs:.4}, \
                 \"requests_per_second\": {brps:.0}, \"speedup_vs_sequential\": \
                 {speedup:.2}}}{}\n",
                if i + 1 < batch_rows.len() { "," } else { "" }
            ));
        }
        let mut pipe_json = String::new();
        for (i, (depth, secs, prps)) in pipe_rows.iter().enumerate() {
            pipe_json.push_str(&format!(
                "    {{\"depth\": {depth}, \"requests\": {pipe_total}, \"seconds\": {secs:.4}, \
                 \"requests_per_second\": {prps:.0}}}{}\n",
                if i + 1 < pipe_rows.len() { "," } else { "" }
            ));
        }
        let out = format!(
            "{{\n  \"bench\": \"serve\",\n  \"mode\": \"{}\",\n  \
             \"round_trip\": {{\"requests\": {}, \"seconds\": {:.4}, \
             \"requests_per_second\": {:.0}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}},\n  \
             \"sequential_64_seconds\": {:.4},\n  \
             \"batch_sweep\": [\n{}  ],\n  \
             \"batch64_speedup\": {:.2},\n  \
             \"pipeline_sweep\": [\n{}  ],\n  \
             \"pipeline_depth8_speedup\": {:.2},\n  \
             \"deadline_degradation\": {{\"toggles\": {}, \"deadline_ms\": 50, \
             \"partial_states\": {}, \"stopped\": \"{}\", \"seconds\": {:.4}, \
             \"worst_concurrent_small_ms\": {:.2}}},\n  \
             \"drain_seconds\": {:.4},\n  \
             \"stats\": {{\"accepted\": {}, \"served\": {}, \"shed\": {}, \"panics\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"workers_joined\": {}}}\n}}\n",
            if quick { "quick" } else { "full" },
            requests,
            round_trip_seconds,
            rps,
            p50_us,
            p99_us,
            seq64_seconds,
            batch_json,
            batch64_speedup,
            pipe_json,
            depth8_speedup,
            toggles,
            boom_states,
            boom_stopped,
            boom_seconds,
            worst_small_ms,
            drain_seconds,
            stats.accepted,
            stats.served,
            stats.shed,
            stats.panics,
            stats.cache_hits,
            stats.cache_misses,
            stats.workers_joined,
        );
        std::fs::write("BENCH_serve.json", &out).expect("write BENCH_serve.json");
        println!("wrote BENCH_serve.json");
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    if args.iter().any(|a| a == "bench") {
        bench_explore(quick, json);
        bench_hide(quick, json);
        bench_alphabet(quick, json);
        bench_reduce(quick, json);
        bench_modules(quick, json);
        return;
    }
    if args.iter().any(|a| a == "modules") {
        bench_modules(quick, json);
        return;
    }
    if args.iter().any(|a| a == "smoke-parallel") {
        smoke_parallel();
        return;
    }
    if args.iter().any(|a| a == "smoke-incremental") {
        smoke_incremental();
        return;
    }
    if args.iter().any(|a| a == "serve") {
        bench_serve(quick, json);
        return;
    }
    let run = |id: &str| args.is_empty() || args.iter().any(|a| a == id);
    if run("fig1") {
        fig1();
    }
    if run("fig2") {
        fig2();
    }
    if run("fig3") {
        fig3();
    }
    if run("table1") {
        table1();
    }
    if run("fig4") {
        fig4();
    }
    if run("fig5") || run("fig6") || run("fig7") {
        fig567();
    }
    if run("fig8") {
        fig8();
    }
    if run("fig9") {
        fig9();
    }
    if run("expansion") {
        expansion();
    }
    if run("abl1") {
        abl1();
    }
    if run("abl2") {
        abl2();
    }
    if run("props") {
        props();
    }
    if run("ext1") {
        ext_arbiter();
    }
    if run("faults") {
        faults(quick);
    }
    println!();
}
