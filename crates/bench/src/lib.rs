//! Shared workload builders for the benchmark harness and the
//! `experiments` binary.
//!
//! Every figure/table of the paper is regenerated from these builders;
//! the scaling sweeps (`cycle_net`, `handshake_ring`, `tau_chain`,
//! `sync_pipeline`) extend the constructions to parametric families so
//! the in-tree `BenchGroup` harness (`cpn_testkit::bench`) can expose
//! the complexity claims (net-level algebra vs state-space products,
//! structural vs exhaustive receptiveness, interpreted vs compiled
//! exploration).

use cpn_petri::{PetriNet, PlaceId};
use std::collections::BTreeSet;

/// A simple labeled cycle `(l0 . l1 . … . l{k-1})*` with one token.
pub fn cycle_net(labels: &[&'static str]) -> PetriNet<&'static str> {
    assert!(!labels.is_empty());
    let mut net = PetriNet::new();
    let ps: Vec<PlaceId> = (0..labels.len())
        .map(|i| net.add_place(format!("p{i}")))
        .collect();
    for (i, l) in labels.iter().enumerate() {
        net.add_transition([ps[i]], *l, [ps[(i + 1) % ps.len()]])
            .expect("cycle transition");
    }
    net.set_initial(ps[0], 1);
    net
}

/// The paper's Figure 2 left operand `((a+b).c)*`.
pub fn fig2_left() -> PetriNet<&'static str> {
    let mut net = PetriNet::new();
    let p = net.add_place("p");
    let q = net.add_place("q");
    net.add_transition([p], "a", [q]).expect("fig2");
    net.add_transition([p], "b", [q]).expect("fig2");
    net.add_transition([q], "c", [p]).expect("fig2");
    net.set_initial(p, 1);
    net
}

/// The paper's Figure 2 right operand `(a.d.a.e)*`.
pub fn fig2_right() -> PetriNet<&'static str> {
    cycle_net(&["a", "d", "a", "e"])
}

/// A marked-graph chain `start → τ → τ → … → end` of `taus` hidden
/// transitions between two observable ones (the Figure 3(c) collapse
/// case, scaled).
pub fn tau_chain(taus: usize) -> PetriNet<String> {
    let mut net: PetriNet<String> = PetriNet::new();
    let mut prev = net.add_place("p0");
    net.set_initial(prev, 1);
    let mid = net.add_place("p1");
    net.add_transition([prev], "start".to_owned(), [mid])
        .expect("chain");
    prev = mid;
    for i in 0..taus {
        let next = net.add_place(format!("q{i}"));
        net.add_transition([prev], "tau".to_owned(), [next])
            .expect("chain");
        prev = next;
    }
    let last = net.add_place("pl");
    net.add_transition([prev], "end".to_owned(), [last])
        .expect("chain");
    net.add_transition([last], "loop".to_owned(), [PlaceId::from_index(0)])
        .expect("chain");
    net
}

/// A producer/consumer pair of handshake rings with `stages`
/// request/acknowledge stages; `offset` phase-shifts the consumer
/// (offset 0 ⇒ receptive, otherwise broken).
pub fn handshake_ring(
    stages: usize,
    offset: usize,
) -> (
    PetriNet<String>,
    PetriNet<String>,
    BTreeSet<String>,
    BTreeSet<String>,
) {
    let build = |prefix: &str, start: usize| {
        let mut net: PetriNet<String> = PetriNet::new();
        let ps: Vec<PlaceId> = (0..2 * stages)
            .map(|i| net.add_place(format!("{prefix}{i}")))
            .collect();
        for i in 0..2 * stages {
            let label = if i % 2 == 0 {
                format!("req{}", i / 2)
            } else {
                format!("ack{}", i / 2)
            };
            net.add_transition([ps[i]], label, [ps[(i + 1) % (2 * stages)]])
                .expect("ring transition");
        }
        net.set_initial(ps[start % (2 * stages)], 1);
        net
    };
    let producer = build("a", 0);
    let consumer = build("b", offset);
    let louts = (0..stages).map(|i| format!("req{i}")).collect();
    let routs = (0..stages).map(|i| format!("ack{i}")).collect();
    (producer, consumer, louts, routs)
}

/// A *wide* handshake pair: the producer forks into `width` concurrent
/// request/acknowledge loops per round; the consumer mirrors it. Both
/// sides and their composition are marked graphs, the composed state
/// space is exponential in `width` while the nets grow linearly — the
/// workload that separates the structural receptiveness check
/// (Theorem 5.7) from the exhaustive one.
pub fn wide_handshake(
    width: usize,
    swapped_lane: Option<usize>,
) -> (
    PetriNet<String>,
    PetriNet<String>,
    BTreeSet<String>,
    BTreeSet<String>,
) {
    // `fork`/`join` are shared so both sides enter a round together;
    // a swapped lane on the consumer expects ack before req — the
    // producer then offers a req the consumer cannot take.
    let build = |prefix: &str, swapped: Option<usize>| {
        let mut net: PetriNet<String> = PetriNet::new();
        let s0 = net.add_place(format!("{prefix}.s0"));
        net.set_initial(s0, 1);
        let mut waits = Vec::new();
        let mut dones = Vec::new();
        for i in 0..width {
            let w = net.add_place(format!("{prefix}.w{i}"));
            let h = net.add_place(format!("{prefix}.h{i}"));
            let d = net.add_place(format!("{prefix}.d{i}"));
            let (first, second) = if swapped == Some(i) {
                (format!("ack{i}"), format!("req{i}"))
            } else {
                (format!("req{i}"), format!("ack{i}"))
            };
            net.add_transition([w], first, [h]).expect("stage");
            net.add_transition([h], second, [d]).expect("stage");
            waits.push(w);
            dones.push(d);
        }
        net.add_transition([s0], "fork".to_owned(), waits.clone())
            .expect("fork");
        net.add_transition(dones.clone(), "join".to_owned(), [s0])
            .expect("join");
        net
    };
    let producer = build("a", None);
    let consumer = build("b", swapped_lane);
    let louts = (0..width).map(|i| format!("req{i}")).collect();
    let routs = (0..width).map(|i| format!("ack{i}")).collect();
    (producer, consumer, louts, routs)
}

/// A marked-graph **ring** of `segments` segments, each one observable
/// transition `a{s}` followed by `taus` hidden transitions
/// `h{s}_{j}` — the Figure 3(c) collapse case closed into a cycle, with
/// per-transition-unique hidden labels so the hide-*set* size grows
/// with the ring (`segments * taus` labels). One token circulates; one
/// observable per segment keeps every hidden path divergence-free.
///
/// Returns the net together with the hide set, the input for the
/// `hide_contract` contraction sweep.
pub fn tau_ring(segments: usize, taus: usize) -> (PetriNet<String>, BTreeSet<String>) {
    assert!(segments > 0);
    let mut net: PetriNet<String> = PetriNet::new();
    let total = segments * (taus + 1);
    let ps: Vec<PlaceId> = (0..total).map(|i| net.add_place(format!("p{i}"))).collect();
    let mut hidden = BTreeSet::new();
    for s in 0..segments {
        let base = s * (taus + 1);
        net.add_transition([ps[base]], format!("a{s}"), [ps[(base + 1) % total]])
            .expect("ring observable");
        for j in 0..taus {
            let label = format!("h{s}_{j}");
            net.add_transition(
                [ps[(base + 1 + j) % total]],
                label.clone(),
                [ps[(base + 2 + j) % total]],
            )
            .expect("ring hidden");
            hidden.insert(label);
        }
    }
    net.set_initial(ps[0], 1);
    (net, hidden)
}

/// A CIP **pipeline chain** of `modules` modules connected by control
/// channels `c0 … c{modules-2}`, expanded with 2-phase handshake
/// signalling and composed into one net. Module `i` receives on
/// `c{i-1}` and sends on `c{i}` (ends do one of the two).
///
/// Returns the composed net and the hide set: the *request* wires of
/// every interior channel (the acknowledge wires stay observable, so
/// no hidden cycle — hence no divergence — exists). This is the
/// Section 6 derivation shape at benchmark scale: hiding the internal
/// wiring of a module chain.
pub fn cip_chain_workload(
    modules: usize,
) -> (
    cpn_petri::PetriNet<cpn_stg::StgLabel>,
    BTreeSet<cpn_stg::StgLabel>,
) {
    use cpn_cip::{ChannelSpec, CipGraph, HandshakeProtocol, Module};
    assert!(modules >= 2);
    let mut graph = CipGraph::new();
    let mut ids = Vec::new();
    for i in 0..modules {
        let mut m = Module::new(format!("m{i}"));
        let p = m.add_place("idle");
        m.set_initial(p, 1);
        if i == 0 {
            m.add_send([p], "c0", None, [p]).expect("send");
        } else if i == modules - 1 {
            m.add_recv([p], format!("c{}", i - 1).as_str(), [p])
                .expect("recv");
        } else {
            let q = m.add_place("got");
            m.add_recv([p], format!("c{}", i - 1).as_str(), [q])
                .expect("recv");
            m.add_send([q], format!("c{i}").as_str(), None, [p])
                .expect("send");
        }
        ids.push(graph.add_module(m));
    }
    for i in 0..modules - 1 {
        graph
            .add_channel_edge(
                ids[i],
                ids[i + 1],
                ChannelSpec::control(format!("c{i}").as_str()),
            )
            .expect("channel");
    }
    let expanded = graph
        .expand(HandshakeProtocol::TwoPhase)
        .expect("expansion");
    let composed = expanded.compose_all().expect("composition");
    let hidden = composed
        .net()
        .alphabet()
        .iter()
        .filter(|l| l.signal_name().is_some_and(|s| s.name().ends_with("_req")))
        .cloned()
        .collect();
    (composed.net().clone(), hidden)
}

/// `k` independent two-phase cycles synchronized pairwise on shared
/// labels — a pipeline whose composed state space is exponential in `k`
/// while the composed *net* is linear (the "no unfolding" claim).
pub fn sync_pipeline(k: usize) -> Vec<PetriNet<String>> {
    (0..k)
        .map(|i| {
            let mut net: PetriNet<String> = PetriNet::new();
            let p = net.add_place(format!("s{i}.p"));
            let q = net.add_place(format!("s{i}.q"));
            net.add_transition([p], format!("x{i}"), [q])
                .expect("stage");
            net.add_transition([q], format!("x{}", i + 1), [p])
                .expect("stage");
            net.set_initial(p, 1);
            net
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpn_core::parallel;
    use cpn_petri::ReachabilityOptions;

    #[test]
    fn cycle_net_loops() {
        let net = cycle_net(&["a", "b", "c"]);
        assert_eq!(net.transition_count(), 3);
        let rg = net.reachability(&ReachabilityOptions::default()).unwrap();
        assert_eq!(rg.state_count(), 3);
        assert!(net.analysis(&rg).live);
    }

    #[test]
    fn tau_chain_hides_away() {
        let net = tau_chain(4);
        let hidden = cpn_core::hide_label(&net, &"tau".to_owned(), 1000).unwrap();
        assert!(hidden
            .transitions_with_label(&"tau".to_owned())
            .next()
            .is_none());
    }

    #[test]
    fn handshake_ring_receptive_iff_aligned() {
        let opts = ReachabilityOptions::default();
        let (p, c, lo, ro) = handshake_ring(2, 0);
        assert!(cpn_core::check_receptiveness(&p, &c, &lo, &ro, &opts)
            .unwrap()
            .is_receptive());
        let (p, c, lo, ro) = handshake_ring(2, 1);
        assert!(!cpn_core::check_receptiveness(&p, &c, &lo, &ro, &opts)
            .unwrap()
            .is_receptive());
    }

    #[test]
    fn wide_handshake_is_marked_graph_and_detects_offset() {
        let (p, c, lo, ro) = wide_handshake(3, None);
        let composed = parallel(&p, &c).unwrap();
        assert!(composed.structural().is_marked_graph);
        let opts = ReachabilityOptions::default();
        assert!(cpn_core::check_receptiveness(&p, &c, &lo, &ro, &opts)
            .unwrap()
            .is_receptive());
        let st = cpn_core::check_receptiveness_structural_mg(&p, &c, &lo, &ro).unwrap();
        assert!(st.is_receptive());

        let (p, c, lo, ro) = wide_handshake(3, Some(1));
        let ex = cpn_core::check_receptiveness(&p, &c, &lo, &ro, &opts).unwrap();
        let st = cpn_core::check_receptiveness_structural_mg(&p, &c, &lo, &ro).unwrap();
        assert!(!ex.is_receptive());
        assert!(!st.is_receptive());
    }

    #[test]
    fn tau_ring_hides_cleanly_both_engines() {
        let (net, hidden) = tau_ring(3, 2);
        assert_eq!(hidden.len(), 6);
        let budget = cpn_petri::Budget::new(usize::MAX, 10_000);
        let v2 = cpn_core::hide_labels_bounded(&net, &hidden, &budget).unwrap();
        let legacy = cpn_core::hide_labels_bounded_legacy(&net, &hidden, &budget).unwrap();
        assert_eq!(v2, legacy);
        let done = v2.into_value();
        for l in &hidden {
            assert!(done.transitions_with_label(l).next().is_none());
        }
    }

    #[test]
    fn cip_chain_workload_hides_cleanly_both_engines() {
        let (net, hidden) = cip_chain_workload(4);
        assert!(!hidden.is_empty());
        let budget = cpn_petri::Budget::new(usize::MAX, 100_000);
        let v2 = cpn_core::hide_labels_bounded(&net, &hidden, &budget).unwrap();
        let legacy = cpn_core::hide_labels_bounded_legacy(&net, &hidden, &budget).unwrap();
        assert_eq!(v2, legacy);
        assert!(v2.is_complete());
    }

    #[test]
    fn sync_pipeline_composes_linearly() {
        let stages = sync_pipeline(4);
        let mut acc = stages[0].clone();
        for s in &stages[1..] {
            acc = parallel(&acc, s).unwrap();
        }
        // Linear net growth: 2 places per stage.
        assert_eq!(acc.place_count(), 8);
        assert!(acc.transition_count() <= 8);
    }
}
