//! Coverability analysis (Karp–Miller) for boundedness detection.
//!
//! The paper restricts itself to finite and bounded nets (Section 2.1).
//! Rather than assuming boundedness, the kernel *decides* it: the
//! Karp–Miller construction accelerates strictly-growing markings to ω and
//! terminates on every net, reporting either a finite token bound or an
//! unboundedness witness.

use crate::budget::{Bounded, Budget, Meter};
use crate::compiled::OMEGA;
use crate::label::Label;
use crate::net::{PetriNet, PlaceId};
use crate::store::MarkingStore;

/// Token count in an ω-marking: a finite count or ω (arbitrarily many).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tokens {
    /// A concrete token count.
    Finite(u32),
    /// The ω symbol: this place can hold arbitrarily many tokens.
    Omega,
}

/// An ω-marking: a marking extended with ω components.
pub type OmegaMarking = Vec<Tokens>;

/// Result of the coverability construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoverabilityOutcome {
    /// The net is bounded; `bound` is the largest finite token count seen
    /// on any place in any coverable marking.
    Bounded {
        /// Maximum per-place token count over the coverability set.
        bound: u32,
    },
    /// The net is unbounded; `witnesses` are places that acquired ω.
    Unbounded {
        /// Places that can hold arbitrarily many tokens.
        witnesses: Vec<PlaceId>,
    },
}

/// The Karp–Miller coverability tree (stored as the set of maximal
/// ω-markings plus the verdict).
///
/// # Example
///
/// ```
/// use cpn_petri::{Budget, CoverabilityOutcome, CoverabilityTree, PetriNet};
///
/// # fn main() -> Result<(), cpn_petri::PetriError> {
/// let mut net: PetriNet<&str> = PetriNet::new();
/// let p = net.add_place("p");
/// let out = net.add_place("out");
/// net.add_transition([p], "pump", [p, out])?; // p keeps its token, out grows
/// net.set_initial(p, 1);
/// let tree = CoverabilityTree::build_bounded(&net, &Budget::states(10_000)).into_value();
/// assert!(matches!(tree.outcome(), CoverabilityOutcome::Unbounded { .. }));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CoverabilityTree {
    markings: Vec<OmegaMarking>,
    outcome: CoverabilityOutcome,
}

impl CoverabilityTree {
    /// Runs the Karp–Miller construction on `net`, degrading gracefully.
    ///
    /// The budget's state cap bounds tree nodes; its transition cap
    /// bounds ω-firings examined. The construction always terminates in
    /// theory, but the budget guards against pathological blowup in
    /// practice. When the budget runs out, the partial tree is returned
    /// in [`Bounded::Exhausted`]: an `Unbounded` outcome on a partial
    /// tree is definite (ω witnesses are real), but a `Bounded { bound }`
    /// outcome only covers the explored prefix.
    pub fn build_bounded<L: Label>(
        net: &PetriNet<L>,
        budget: &Budget,
    ) -> Bounded<CoverabilityTree> {
        let mut meter = Meter::new(budget);
        let compiled = net.compile();
        let transitions = compiled.transition_count() as u32;

        // ω-markings live in the interned arena with the sentinel
        // encoding of `compiled`: ω is [`OMEGA`], finite counts clamp at
        // `OMEGA - 1` (see `CompiledNet::fire_omega_into`). Under that
        // encoding "x covers y" is a plain elementwise `x >= y`, so the
        // tree needs no boxed `Tokens` rows until it is materialized for
        // the public [`markings`](Self::markings) accessor.
        let mut store = MarkingStore::new(compiled.place_count());
        let interned = store.intern(net.initial_marking().as_slice());
        debug_assert_eq!(interned, (0, true));
        // Parent pointers drive the acceleration check; `u32::MAX` marks
        // the root.
        let mut parent: Vec<u32> = vec![u32::MAX];
        // The root node always exists, even under a zero budget.
        meter.take_state();

        let mut next: Vec<u32> = Vec::with_capacity(store.stride());
        let mut work = vec![0u32];
        'explore: while let Some(cur) = work.pop() {
            // Per-node deadline/cancel poll (coarse-ticked in the meter).
            if meter.should_stop() {
                break 'explore;
            }
            for t in 0..transitions {
                if !meter.take_transition() {
                    break 'explore;
                }
                if !compiled.is_enabled(store.get(cur as usize), t) {
                    continue;
                }
                compiled.fire_omega_into(store.get(cur as usize), t, &mut next);
                // Acceleration: if next strictly covers an ancestor, set
                // the strictly-larger components to ω.
                let mut anc = cur;
                loop {
                    let a = store.get(anc as usize);
                    if next.iter().zip(a).all(|(&x, &y)| x >= y) && next.as_slice() != a {
                        for (slot, &old) in next.iter_mut().zip(a) {
                            if *slot > old {
                                // strictly larger here
                                *slot = OMEGA;
                            }
                        }
                    }
                    let up = parent[anc as usize];
                    if up == u32::MAX {
                        break;
                    }
                    anc = up;
                }
                let hash = MarkingStore::hash_slice(&next);
                if store.find_hashed(&next, hash).is_some() {
                    continue;
                }
                if !meter.take_state() {
                    break 'explore;
                }
                let Ok(id) = store.insert_new_hashed(&next, hash) else {
                    // The 32-bit id space is exhausted; hand back the
                    // prefix explored so far.
                    break 'explore;
                };
                parent.push(cur);
                work.push(id);
            }
        }

        let markings: Vec<OmegaMarking> = store
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&w| {
                        if w == OMEGA {
                            Tokens::Omega
                        } else {
                            Tokens::Finite(w)
                        }
                    })
                    .collect()
            })
            .collect();
        let mut witnesses: Vec<PlaceId> = Vec::new();
        for p in net.place_ids() {
            if markings.iter().any(|m| m[p.index()] == Tokens::Omega) {
                witnesses.push(p);
            }
        }
        let outcome = if witnesses.is_empty() {
            let bound = markings
                .iter()
                .flat_map(|m| m.iter())
                .filter_map(|t| match t {
                    Tokens::Finite(n) => Some(*n),
                    Tokens::Omega => None,
                })
                .max()
                .unwrap_or(0);
            CoverabilityOutcome::Bounded { bound }
        } else {
            CoverabilityOutcome::Unbounded { witnesses }
        };
        meter.finish(CoverabilityTree { markings, outcome })
    }

    /// The verdict: bounded with a bound, or unbounded with witnesses.
    pub fn outcome(&self) -> &CoverabilityOutcome {
        &self.outcome
    }

    /// Whether the net was proven bounded.
    pub fn is_bounded(&self) -> bool {
        matches!(self.outcome, CoverabilityOutcome::Bounded { .. })
    }

    /// The ω-markings discovered (the coverability set representation).
    pub fn markings(&self) -> &[OmegaMarking] {
        &self.markings
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn bounded_cycle_reports_bound() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "a", [q]).unwrap();
        net.add_transition([q], "b", [p]).unwrap();
        net.set_initial(p, 2);
        let built = CoverabilityTree::build_bounded(&net, &Budget::states(10_000));
        assert!(built.is_complete());
        let tree = built.into_value();
        assert_eq!(tree.outcome(), &CoverabilityOutcome::Bounded { bound: 2 });
        assert!(tree.is_bounded());
    }

    #[test]
    fn pump_is_unbounded_with_witness() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let out = net.add_place("out");
        net.add_transition([p], "pump", [p, out]).unwrap();
        net.set_initial(p, 1);
        let tree = CoverabilityTree::build_bounded(&net, &Budget::states(10_000)).into_value();
        match tree.outcome() {
            CoverabilityOutcome::Unbounded { witnesses } => {
                assert_eq!(witnesses, &vec![out]);
            }
            other => panic!("expected unbounded, got {other:?}"),
        }
    }

    #[test]
    fn producer_consumer_unbounded_buffer() {
        // Producer cycle fills a buffer place; consumer cycle drains it.
        let mut net: PetriNet<&str> = PetriNet::new();
        let pp = net.add_place("prod");
        let buf = net.add_place("buf");
        let cc = net.add_place("cons");
        net.add_transition([pp], "produce", [pp, buf]).unwrap();
        net.add_transition([cc, buf], "consume", [cc]).unwrap();
        net.set_initial(pp, 1);
        net.set_initial(cc, 1);
        let tree = CoverabilityTree::build_bounded(&net, &Budget::states(10_000)).into_value();
        assert!(!tree.is_bounded());
    }

    #[test]
    fn safe_net_bound_is_one() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "a", [q]).unwrap();
        net.set_initial(p, 1);
        let tree = CoverabilityTree::build_bounded(&net, &Budget::states(100)).into_value();
        assert_eq!(tree.outcome(), &CoverabilityOutcome::Bounded { bound: 1 });
    }

    #[test]
    fn budget_respected_with_partial_tree() {
        // A net that needs 2 nodes under a 1-node budget stops early and
        // still hands back the explored prefix.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "a", [q]).unwrap();
        net.set_initial(p, 1);
        let built = CoverabilityTree::build_bounded(&net, &Budget::states(1));
        let info = *built.exhausted().expect("budget of 1 is exhausted");
        assert_eq!(info.states_explored, 1);
        assert_eq!(built.value().markings().len(), 1);
    }
}
