//! Dead-transition detection and removal.
//!
//! Section 5.2 of the paper: after compositional synthesis
//! (`hide(M1‖M2, …)`) many synchronization-transition duplicates are dead
//! and "can be eliminated", structurally in polynomial time for marked
//! graphs and free-choice nets. This module provides both the exact
//! reachability-based detection (any bounded net) and the structural
//! marked-graph detection (polynomial, no state space).

use crate::error::PetriError;
use crate::graph::DiGraph;
use crate::label::Label;
use crate::net::{PetriNet, TransitionId};
use crate::reachability::ReachabilityGraph;
use std::collections::BTreeSet;

/// Transitions that never fire, computed from a complete reachability
/// graph (exact for bounded nets).
///
/// # Example
///
/// ```
/// use cpn_petri::{dead_transitions_rg, PetriNet, ReachabilityOptions};
///
/// # fn main() -> Result<(), cpn_petri::PetriError> {
/// let mut net: PetriNet<&str> = PetriNet::new();
/// let p = net.add_place("p");
/// let q = net.add_place("q");
/// let r = net.add_place("r");
/// net.add_transition([p], "a", [q])?;
/// let dead = net.add_transition([r], "never", [q])?;
/// net.set_initial(p, 1);
/// let rg = net.reachability(&ReachabilityOptions::default())?;
/// assert_eq!(dead_transitions_rg(&net, &rg), [dead].into());
/// # Ok(())
/// # }
/// ```
pub fn dead_transitions_rg<L: Label>(
    net: &PetriNet<L>,
    rg: &ReachabilityGraph,
) -> BTreeSet<TransitionId> {
    let mut fires = vec![false; net.transition_count()];
    for (_, t, _) in rg.all_edges() {
        fires[t.index()] = true;
    }
    fires
        .iter()
        .enumerate()
        .filter(|(_, &f)| !f)
        .map(|(i, _)| TransitionId::from_index(i))
        .collect()
}

/// Structural dead-transition detection for **marked graphs**:
///
/// 1. Every transition on a token-free directed cycle is dead (the cycle
///    token count is invariant, so no token can ever appear on it).
/// 2. A transition with an initially empty input place whose unique
///    producer is dead is itself dead; this propagates to a fixpoint.
///
/// For strongly-connected marked graphs this is exact (liveness ⇔ every
/// cycle holds a token); on general marked graphs it is sound and, by the
/// propagation step, complete for acyclic feeding as well. The paired
/// property test in this module cross-checks it against the exact
/// reachability-based detection.
///
/// # Errors
///
/// Returns [`PetriError::NotMarkedGraph`] if some place does not have
/// exactly one producer and one consumer.
pub fn dead_transitions_structural_mg<L: Label>(
    net: &PetriNet<L>,
) -> Result<BTreeSet<TransitionId>, PetriError> {
    let flows = net.marked_graph_flows()?;
    let m0 = net.initial_marking();

    // Graph over transitions through token-free places.
    let mut g = DiGraph::new(net.transition_count());
    for (p, &(prod, cons)) in flows.iter().enumerate() {
        if m0.as_slice()[p] == 0 {
            g.add_edge(prod.index(), cons.index());
        }
    }

    // Transitions inside a cycle of that graph are dead (rule 1).
    let mut dead = vec![false; net.transition_count()];
    for comp in g.tarjan_scc() {
        let cyclic = comp.len() > 1 || g.successors(comp[0]).contains(&comp[0]);
        if cyclic {
            for &t in &comp {
                dead[t] = true;
            }
        }
    }

    // Propagation (rule 2): consumer of an empty place with a dead
    // producer is dead.
    loop {
        let mut changed = false;
        for (p, &(prod, cons)) in flows.iter().enumerate() {
            if m0.as_slice()[p] == 0 && dead[prod.index()] && !dead[cons.index()] {
                dead[cons.index()] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    Ok(dead
        .iter()
        .enumerate()
        .filter(|(_, &d)| d)
        .map(|(i, _)| TransitionId::from_index(i))
        .collect())
}

/// Removes the given dead transitions and then drops places that became
/// isolated (no adjacent transition and no initial token).
///
/// Returns the pruned net; place ids are *not* stable across this call
/// (the mapping from `without_isolated_places` is discarded because dead
/// removal is a terminal cleanup step in the synthesis pipelines).
pub fn remove_dead<L: Label>(net: &PetriNet<L>, dead: &BTreeSet<TransitionId>) -> PetriNet<L> {
    let (pruned, _) = net.without_transitions(dead).without_isolated_places();
    pruned
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::reachability::ReachabilityOptions;

    #[test]
    fn token_free_cycle_is_dead() {
        // Live cycle (p marked) plus a token-free cycle r1/r2.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        let r1 = net.add_place("r1");
        let r2 = net.add_place("r2");
        net.add_transition([p], "a", [q]).unwrap();
        net.add_transition([q], "b", [p]).unwrap();
        let c = net.add_transition([r1], "c", [r2]).unwrap();
        let d = net.add_transition([r2], "d", [r1]).unwrap();
        net.set_initial(p, 1);

        let dead = dead_transitions_structural_mg(&net).unwrap();
        assert_eq!(dead, BTreeSet::from([c, d]));

        let rg = net.reachability(&ReachabilityOptions::default()).unwrap();
        assert_eq!(dead_transitions_rg(&net, &rg), dead);
    }

    #[test]
    fn structural_mg_rejects_choice() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "x", [q]).unwrap();
        net.add_transition([p], "y", [q]).unwrap();
        assert_eq!(
            dead_transitions_structural_mg(&net),
            Err(PetriError::NotMarkedGraph)
        );
    }

    #[test]
    fn propagation_through_empty_chain() {
        // Dead cycle feeds a chain: every chain transition is dead too.
        // To stay a marked graph each place needs exactly one producer
        // and consumer, so close the chain back into the dead cycle.
        let mut net: PetriNet<&str> = PetriNet::new();
        let r1 = net.add_place("r1");
        let r2 = net.add_place("r2");
        let s = net.add_place("s");
        let s2 = net.add_place("s2");
        let c = net.add_transition([r1], "c", [r2, s]).unwrap();
        let d = net.add_transition([r2], "d", [r1]).unwrap();
        let e = net.add_transition([s], "e", [s2]).unwrap();
        let f = net.add_transition([s2], "f", []).unwrap();
        let dead = dead_transitions_structural_mg(&net);
        // s2's consumer f has postset ∅ — still one producer/consumer per
        // place, so this is a marked graph.
        let dead = dead.unwrap();
        assert_eq!(dead, BTreeSet::from([c, d, e, f]));
    }

    #[test]
    fn live_marked_graph_has_no_dead() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p0 = net.add_place("p0");
        let pa = net.add_place("pa");
        let pb = net.add_place("pb");
        net.add_transition([p0], "fork", [pa, pb]).unwrap();
        net.add_transition([pa, pb], "join", [p0]).unwrap();
        net.set_initial(p0, 1);
        assert!(dead_transitions_structural_mg(&net).unwrap().is_empty());
    }

    #[test]
    fn remove_dead_prunes_places() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        let r1 = net.add_place("r1");
        let r2 = net.add_place("r2");
        net.add_transition([p], "a", [q]).unwrap();
        net.add_transition([q], "b", [p]).unwrap();
        net.add_transition([r1], "c", [r2]).unwrap();
        net.add_transition([r2], "d", [r1]).unwrap();
        net.set_initial(p, 1);
        let dead = dead_transitions_structural_mg(&net).unwrap();
        let pruned = remove_dead(&net, &dead);
        assert_eq!(pruned.transition_count(), 2);
        assert_eq!(pruned.place_count(), 2);
        pruned.validate().unwrap();
    }

    #[test]
    fn structural_agrees_with_rg_on_random_marked_graphs() {
        // Deterministic pseudo-random marked graphs: rings with chords.
        for seed in 0u64..20 {
            let mut net: PetriNet<String> = PetriNet::new();
            let n = 3 + (seed % 4) as usize;
            let places: Vec<_> = (0..n).map(|i| net.add_place(format!("p{i}"))).collect();
            // Ring of transitions t_i: p_i -> p_{i+1}
            for i in 0..n {
                net.add_transition([places[i]], format!("t{i}"), [places[(i + 1) % n]])
                    .unwrap();
            }
            // Mark places by a seed-dependent pattern (possibly none).
            let mut any = false;
            for (i, &p) in places.iter().enumerate() {
                if (seed >> i) & 1 == 1 {
                    net.set_initial(p, 1);
                    any = true;
                }
            }
            let structural = dead_transitions_structural_mg(&net).unwrap();
            let rg = net.reachability(&ReachabilityOptions::default()).unwrap();
            let exact = dead_transitions_rg(&net, &rg);
            assert_eq!(structural, exact, "seed {seed}, marked={any}");
        }
    }
}
