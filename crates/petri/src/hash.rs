//! Shared content-hash primitives.
//!
//! Three independent subsystems grew their own copy of the same two
//! hash kernels: the `cpn-serve` document cache (FNV-1a over document
//! bytes), the `cpn-testkit` property harness (FNV-1a over property
//! names as the deterministic base seed), and the marking store's
//! per-entry mixing (the SplitMix64 finalizer). This module is the one
//! home for all of them, plus the 128-bit FNV-1a variant that backs
//! [`NetId`](crate::netid::NetId) — a cache key whose collisions would
//! silently alias *different* nets, so it gets the wide state.
//!
//! All functions are allocation-free, deterministic across platforms
//! and runs, and depend only on the input bytes — no `RandomState`, no
//! process seeds.

/// 64-bit FNV-1a offset basis.
const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;
/// 128-bit FNV-1a offset basis.
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// 128-bit FNV-1a prime.
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// FNV-1a, 64-bit: tiny, allocation-free, good dispersion on text.
///
/// The seed hash of the testkit harness and the byte-level fast-path
/// key of the `cpn-serve` document cache.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV64_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// FNV-1a, 128-bit: the wide variant for keys where a collision would
/// alias two different values rather than merely cost a recompute.
#[must_use]
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut h = Fnv128::new();
    h.write(bytes);
    h.finish()
}

/// An incremental 128-bit FNV-1a hasher for streaming serializations
/// (the canonical-form hash of [`crate::netid`] feeds it field by
/// field without materializing the full byte string).
#[derive(Clone, Debug)]
pub struct Fnv128 {
    state: u128,
}

impl Default for Fnv128 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv128 {
    /// A fresh hasher at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv128 {
            state: FNV128_OFFSET,
        }
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Absorbs a `u32` in little-endian byte order.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a length-prefixed byte string, so `("ab", "c")` and
    /// `("a", "bc")` absorb differently.
    pub fn write_len_prefixed(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.write(bytes);
    }

    /// The current hash state.
    #[must_use]
    pub fn finish(&self) -> u128 {
        self.state
    }
}

/// SplitMix64 finalizer: full avalanche on a single 64-bit word, so
/// summing outputs keeps high-bit entropy (the marking index tag and
/// the parallel shard router both read the high bits).
#[inline]
#[must_use]
pub fn mix64(z: u64) -> u64 {
    let z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fnv128_empty_is_offset_basis() {
        assert_eq!(fnv1a_128(b""), FNV128_OFFSET);
        assert_ne!(fnv1a_128(b"a"), fnv1a_128(b"b"));
    }

    #[test]
    fn fnv128_incremental_matches_oneshot() {
        let mut h = Fnv128::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a_128(b"foobar"));
    }

    #[test]
    fn length_prefix_separates_field_boundaries() {
        let mut a = Fnv128::new();
        a.write_len_prefixed(b"ab");
        a.write_len_prefixed(b"c");
        let mut b = Fnv128::new();
        b.write_len_prefixed(b"a");
        b.write_len_prefixed(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn mix64_avalanches() {
        // Adjacent inputs differ in about half the output bits.
        let d = (mix64(1) ^ mix64(2)).count_ones();
        assert!((16..=48).contains(&d), "poor avalanche: {d} bits");
        assert_eq!(mix64(42), mix64(42));
    }
}
