//! Multiset markings and the firing rule.
//!
//! A *marking* (or *state*) maps every place to a number of tokens
//! (Definition 2.1 of the paper). The kernel works with **general** nets:
//! places may hold any number of tokens, so a marking is a dense vector of
//! token counts indexed by [`PlaceId`].

use crate::error::PetriError;
use crate::net::PlaceId;
use std::fmt;

/// A marking `M : P → ℕ` of a net with a fixed number of places.
///
/// Markings are plain data: two markings compare equal iff they assign the
/// same token count to every place. The firing rule itself lives on
/// [`PetriNet`](crate::net::PetriNet), which knows the transition relation.
///
/// # Example
///
/// ```
/// use cpn_petri::{Marking, PetriNet};
///
/// let mut net: PetriNet<&str> = PetriNet::new();
/// let p = net.add_place("p");
/// net.set_initial(p, 2);
/// let m = net.initial_marking();
/// assert_eq!(m.tokens(p), 2);
/// assert_eq!(m.total(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Marking(Vec<u32>);

impl Marking {
    /// Creates the empty marking of a net with `places` places.
    pub fn empty(places: usize) -> Self {
        Marking(vec![0; places])
    }

    /// Creates a marking from explicit per-place token counts.
    pub fn from_counts(counts: Vec<u32>) -> Self {
        Marking(counts)
    }

    /// Number of places this marking is defined over.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the marking covers zero places (degenerate net).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Tokens in place `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range for this marking.
    pub fn tokens(&self, p: PlaceId) -> u32 {
        self.0[p.index()]
    }

    /// Sets the token count of place `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range for this marking.
    pub fn set(&mut self, p: PlaceId, tokens: u32) {
        self.0[p.index()] = tokens;
    }

    /// Adds `delta` tokens to place `p`.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::UnknownPlace`] if `p` is out of range and
    /// [`PetriError::TokenOverflow`] if the count would overflow `u32`;
    /// the marking is unchanged on error.
    pub fn add(&mut self, p: PlaceId, delta: u32) -> Result<(), PetriError> {
        let slot = self
            .0
            .get_mut(p.index())
            .ok_or(PetriError::UnknownPlace(p.index() as u32))?;
        *slot = slot.checked_add(delta).ok_or(PetriError::TokenOverflow {
            place: p.index() as u32,
        })?;
        Ok(())
    }

    /// Removes `delta` tokens from place `p`.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::UnknownPlace`] if `p` is out of range and
    /// [`PetriError::TokenUnderflow`] if the place holds fewer than
    /// `delta` tokens; the marking is unchanged on error.
    pub fn remove(&mut self, p: PlaceId, delta: u32) -> Result<(), PetriError> {
        let slot = self
            .0
            .get_mut(p.index())
            .ok_or(PetriError::UnknownPlace(p.index() as u32))?;
        *slot = slot.checked_sub(delta).ok_or(PetriError::TokenUnderflow {
            place: p.index() as u32,
        })?;
        Ok(())
    }

    /// Total number of tokens in the marking.
    pub fn total(&self) -> u64 {
        self.0.iter().map(|&t| u64::from(t)).sum()
    }

    /// The largest token count of any place (the *bound* witnessed by this
    /// marking).
    pub fn max_tokens(&self) -> u32 {
        self.0.iter().copied().max().unwrap_or(0)
    }

    /// Whether every place holds at most one token (the marking is *safe*).
    pub fn is_safe(&self) -> bool {
        self.0.iter().all(|&t| t <= 1)
    }

    /// Whether `self` covers `other`: `self(p) ≥ other(p)` for all places.
    ///
    /// Markings over different place counts never cover each other (they
    /// belong to different nets); use [`Marking::try_covers`] to surface
    /// that mismatch as an error instead.
    pub fn covers(&self, other: &Marking) -> bool {
        self.len() == other.len() && self.0.iter().zip(&other.0).all(|(a, b)| a >= b)
    }

    /// [`Marking::covers`] with the length precondition made explicit.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::MarkingLengthMismatch`] when the markings
    /// are defined over different place counts.
    pub fn try_covers(&self, other: &Marking) -> Result<bool, PetriError> {
        if self.len() != other.len() {
            return Err(PetriError::MarkingLengthMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        Ok(self.covers(other))
    }

    /// Whether `self` strictly covers `other` (covers it and is larger in
    /// at least one place).
    ///
    /// Like [`Marking::covers`], markings over different place counts
    /// never strictly cover each other.
    pub fn strictly_covers(&self, other: &Marking) -> bool {
        self.covers(other) && self.0 != other.0
    }

    /// Iterates over `(place, tokens)` pairs for places with at least one
    /// token.
    pub fn marked_places(&self) -> impl Iterator<Item = (PlaceId, u32)> + '_ {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, &t)| t > 0)
            .map(|(i, &t)| (PlaceId::from_index(i), t))
    }

    /// Raw access to the per-place counts.
    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }

    /// Extends the marking with `extra` new empty places (used when a net
    /// grows during an algebraic construction).
    pub(crate) fn grow(&mut self, extra: usize) {
        self.0.extend(std::iter::repeat_n(0, extra));
    }
}

impl fmt::Debug for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Marking{:?}", self.0)
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut first = true;
        for (p, t) in self.marked_places() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            if t == 1 {
                write!(f, "p{}", p.index())?;
            } else {
                write!(f, "p{}×{}", p.index(), t)?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn pid(i: usize) -> PlaceId {
        PlaceId::from_index(i)
    }

    #[test]
    fn empty_marking_has_no_tokens() {
        let m = Marking::empty(4);
        assert_eq!(m.total(), 0);
        assert!(m.is_safe());
        assert_eq!(m.max_tokens(), 0);
        assert_eq!(m.marked_places().count(), 0);
    }

    #[test]
    fn set_add_remove_roundtrip() {
        let mut m = Marking::empty(3);
        m.set(pid(1), 2);
        m.add(pid(1), 3).unwrap();
        m.remove(pid(1), 4).unwrap();
        assert_eq!(m.tokens(pid(1)), 1);
        assert_eq!(m.total(), 1);
    }

    #[test]
    fn remove_from_empty_place_is_underflow_error() {
        let mut m = Marking::empty(1);
        assert_eq!(
            m.remove(pid(0), 1),
            Err(PetriError::TokenUnderflow { place: 0 })
        );
        assert_eq!(m.tokens(pid(0)), 0, "marking unchanged on error");
    }

    #[test]
    fn add_overflow_and_unknown_place_are_errors() {
        let mut m = Marking::empty(1);
        m.set(pid(0), u32::MAX);
        assert_eq!(
            m.add(pid(0), 1),
            Err(PetriError::TokenOverflow { place: 0 })
        );
        assert_eq!(m.tokens(pid(0)), u32::MAX);
        assert_eq!(m.add(pid(3), 1), Err(PetriError::UnknownPlace(3)));
        assert_eq!(m.remove(pid(3), 1), Err(PetriError::UnknownPlace(3)));
    }

    #[test]
    fn covers_is_pointwise() {
        let a = Marking::from_counts(vec![2, 1, 0]);
        let b = Marking::from_counts(vec![1, 1, 0]);
        assert!(a.covers(&b));
        assert!(a.strictly_covers(&b));
        assert!(!b.covers(&a));
        assert!(a.covers(&a));
        assert!(!a.strictly_covers(&a));
    }

    #[test]
    fn covers_across_lengths_is_false_and_try_covers_errors() {
        let a = Marking::from_counts(vec![1, 1]);
        let b = Marking::from_counts(vec![1, 1, 0]);
        assert!(!a.covers(&b));
        assert!(!b.covers(&a));
        assert!(!a.strictly_covers(&b));
        assert_eq!(
            a.try_covers(&b),
            Err(PetriError::MarkingLengthMismatch { left: 2, right: 3 })
        );
        assert_eq!(a.try_covers(&a), Ok(true));
    }

    #[test]
    fn safety_detects_two_tokens() {
        let m = Marking::from_counts(vec![0, 2]);
        assert!(!m.is_safe());
        assert_eq!(m.max_tokens(), 2);
    }

    #[test]
    fn display_lists_marked_places() {
        let m = Marking::from_counts(vec![1, 0, 3]);
        assert_eq!(m.to_string(), "[p0, p2×3]");
        assert_eq!(Marking::empty(2).to_string(), "[]");
    }

    #[test]
    fn marked_places_skips_empty() {
        let m = Marking::from_counts(vec![0, 5, 0, 1]);
        let v: Vec<_> = m.marked_places().collect();
        assert_eq!(v, vec![(pid(1), 5), (pid(3), 1)]);
    }
}
