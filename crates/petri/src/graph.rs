//! A small directed-graph toolkit shared by the net analyses.
//!
//! The kernel deliberately implements its own graph algorithms instead of
//! pulling in a graph crate: the structures involved (reachability graphs,
//! place/transition bipartite graphs, constraint graphs) are arena-indexed
//! and the algorithms — Tarjan's strongly-connected components and
//! Bellman–Ford over difference constraints — are part of the reproduced
//! substrate (they realize, e.g., the polynomial receptiveness check of
//! Theorem 5.7).

/// A directed graph over nodes `0..n` with adjacency lists.
///
/// # Example
///
/// ```
/// use cpn_petri::graph::DiGraph;
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 0);
/// g.add_edge(1, 2);
/// let sccs = g.tarjan_scc();
/// assert_eq!(sccs.len(), 2); // {0,1} and {2}
/// ```
#[derive(Clone, Debug, Default)]
pub struct DiGraph {
    adj: Vec<Vec<usize>>,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Adds the edge `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        assert!(
            from < self.adj.len() && to < self.adj.len(),
            "node out of range"
        );
        self.adj[from].push(to);
    }

    /// The successors of a node.
    pub fn successors(&self, node: usize) -> &[usize] {
        &self.adj[node]
    }

    /// The reverse graph (all edges flipped).
    pub fn reversed(&self) -> DiGraph {
        let mut rev = DiGraph::new(self.node_count());
        for (u, outs) in self.adj.iter().enumerate() {
            for &v in outs {
                rev.add_edge(v, u);
            }
        }
        rev
    }

    /// Nodes reachable from `start` (including `start`), as a boolean mask.
    pub fn reachable_from(&self, start: usize) -> Vec<bool> {
        let mut seen = vec![false; self.node_count()];
        if start >= self.node_count() {
            return seen;
        }
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(u) = stack.pop() {
            for &v in &self.adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }

    /// Strongly-connected components in reverse topological order
    /// (components with no outgoing edges to other components come first),
    /// computed with Tarjan's algorithm (iterative, no recursion).
    pub fn tarjan_scc(&self) -> Vec<Vec<usize>> {
        let n = self.node_count();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut components: Vec<Vec<usize>> = Vec::new();

        // Explicit DFS state: (node, next child position).
        let mut call: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            call.push((root, 0));
            while let Some(&mut (u, ref mut ci)) = call.last_mut() {
                if *ci == 0 {
                    index[u] = next_index;
                    low[u] = next_index;
                    next_index += 1;
                    stack.push(u);
                    on_stack[u] = true;
                }
                if *ci < self.adj[u].len() {
                    let v = self.adj[u][*ci];
                    *ci += 1;
                    if index[v] == usize::MAX {
                        call.push((v, 0));
                    } else if on_stack[v] {
                        low[u] = low[u].min(index[v]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        low[parent] = low[parent].min(low[u]);
                    }
                    if low[u] == index[u] {
                        let mut comp = Vec::new();
                        // The stack holds `u` below everything pushed
                        // after it, so the pop loop always terminates at
                        // `u` before the stack empties.
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == u {
                                break;
                            }
                        }
                        components.push(comp);
                    }
                }
            }
        }
        components
    }

    /// Indices (into the `tarjan_scc` result) of the *terminal* components:
    /// those with no edge leaving the component.
    pub fn terminal_sccs(&self, sccs: &[Vec<usize>]) -> Vec<usize> {
        let mut comp_of = vec![usize::MAX; self.node_count()];
        for (ci, comp) in sccs.iter().enumerate() {
            for &u in comp {
                comp_of[u] = ci;
            }
        }
        let mut terminal = vec![true; sccs.len()];
        for (u, outs) in self.adj.iter().enumerate() {
            for &v in outs {
                if comp_of[u] != comp_of[v] {
                    terminal[comp_of[u]] = false;
                }
            }
        }
        terminal
            .iter()
            .enumerate()
            .filter(|(_, &t)| t)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether the whole graph is one strongly-connected component.
    ///
    /// The empty graph is considered strongly connected; a single node is.
    pub fn is_strongly_connected(&self) -> bool {
        self.node_count() <= 1 || self.tarjan_scc().len() == 1
    }

    /// Whether the graph contains a directed cycle (self-loops count).
    pub fn has_cycle(&self) -> bool {
        let sccs = self.tarjan_scc();
        if sccs.iter().any(|c| c.len() > 1) {
            return true;
        }
        // Single-node components: cycle iff a self-loop exists.
        self.adj
            .iter()
            .enumerate()
            .any(|(u, outs)| outs.contains(&u))
    }

    /// Returns the node set of some directed cycle, if one exists.
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        for comp in self.tarjan_scc() {
            if comp.len() > 1 {
                return Some(comp);
            }
            let u = comp[0];
            if self.adj[u].contains(&u) {
                return Some(comp);
            }
        }
        None
    }
}

/// A difference constraint `x[a] - x[b] ≤ w`.
///
/// Used by the structural receptiveness check (Theorem 5.7): reachable
/// markings of a live marked graph are exactly the solutions of the state
/// equation, which reduces to a system of difference constraints over
/// transition firing counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiffConstraint {
    /// Index of the minuend variable.
    pub a: usize,
    /// Index of the subtrahend variable.
    pub b: usize,
    /// The upper bound `w`.
    pub w: i64,
}

/// Solves a system of difference constraints `x[a] - x[b] ≤ w` over `n`
/// variables with Bellman–Ford.
///
/// Returns a satisfying assignment, or `None` if the system is infeasible
/// (the constraint graph has a negative cycle). Runs in `O(n · m)`.
///
/// # Example
///
/// ```
/// use cpn_petri::graph::{solve_difference_constraints, DiffConstraint};
///
/// // x0 - x1 <= 1, x1 - x0 <= -2 is infeasible (sums to -1 < 0 cycle).
/// let infeasible = [
///     DiffConstraint { a: 0, b: 1, w: 1 },
///     DiffConstraint { a: 1, b: 0, w: -2 },
/// ];
/// assert!(solve_difference_constraints(2, &infeasible).is_none());
///
/// let feasible = [DiffConstraint { a: 0, b: 1, w: -3 }];
/// let x = solve_difference_constraints(2, &feasible).unwrap();
/// assert!(x[0] - x[1] <= -3);
/// ```
pub fn solve_difference_constraints(n: usize, constraints: &[DiffConstraint]) -> Option<Vec<i64>> {
    // Edge b → a with weight w for each constraint; virtual source n with
    // zero-weight edges to all nodes.
    let mut dist = vec![0i64; n];
    for _ in 0..n {
        let mut changed = false;
        for c in constraints {
            debug_assert!(c.a < n && c.b < n, "constraint variable out of range");
            let candidate = dist[c.b].saturating_add(c.w);
            if candidate < dist[c.a] {
                dist[c.a] = candidate;
                changed = true;
            }
        }
        if !changed {
            return Some(dist);
        }
    }
    // One more relaxation round detects a negative cycle.
    for c in constraints {
        if dist[c.b].saturating_add(c.w) < dist[c.a] {
            return None;
        }
    }
    Some(dist)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn scc_on_two_cycles() {
        let mut g = DiGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        g.add_edge(4, 2);
        let sccs = g.tarjan_scc();
        assert_eq!(sccs.len(), 2);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = sccs.iter().map(|c| c.len()).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![2, 3]);
    }

    #[test]
    fn terminal_scc_identified() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1); // {1,2} cycle, terminal
                          // 3 isolated: also terminal
        let sccs = g.tarjan_scc();
        let terms = g.terminal_sccs(&sccs);
        assert_eq!(terms.len(), 2);
        let mut nodes: Vec<usize> = terms
            .iter()
            .flat_map(|&ci| sccs[ci].iter().copied())
            .collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![1, 2, 3]);
    }

    #[test]
    fn strong_connectivity() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(!g.is_strongly_connected());
        g.add_edge(2, 0);
        assert!(g.is_strongly_connected());
        assert!(DiGraph::new(0).is_strongly_connected());
        assert!(DiGraph::new(1).is_strongly_connected());
    }

    #[test]
    fn cycles_and_self_loops() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(!g.has_cycle());
        assert!(g.find_cycle().is_none());
        g.add_edge(2, 2);
        assert!(g.has_cycle());
        assert_eq!(g.find_cycle(), Some(vec![2]));
    }

    #[test]
    fn reachability_mask() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let seen = g.reachable_from(0);
        assert_eq!(seen, vec![true, true, true, false]);
    }

    #[test]
    fn reversed_graph_flips_edges() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1);
        let r = g.reversed();
        assert_eq!(r.successors(1), &[0]);
        assert!(r.successors(0).is_empty());
    }

    #[test]
    fn difference_constraints_feasible_chain() {
        // x0 <= x1 - 1 <= x2 - 2
        let cs = [
            DiffConstraint { a: 0, b: 1, w: -1 },
            DiffConstraint { a: 1, b: 2, w: -1 },
        ];
        let x = solve_difference_constraints(3, &cs).unwrap();
        assert!(x[0] - x[1] <= -1);
        assert!(x[1] - x[2] <= -1);
    }

    #[test]
    fn difference_constraints_negative_cycle() {
        let cs = [
            DiffConstraint { a: 0, b: 1, w: 0 },
            DiffConstraint { a: 1, b: 2, w: 0 },
            DiffConstraint { a: 2, b: 0, w: -1 },
        ];
        assert!(solve_difference_constraints(3, &cs).is_none());
    }

    #[test]
    fn difference_constraints_zero_cycle_is_fine() {
        let cs = [
            DiffConstraint { a: 0, b: 1, w: 0 },
            DiffConstraint { a: 1, b: 0, w: 0 },
        ];
        let x = solve_difference_constraints(2, &cs).unwrap();
        assert_eq!(x[0], x[1]);
    }

    #[test]
    fn big_scc_does_not_overflow_stack() {
        // A long path a→b→…→z→a as one large SCC; recursion-free Tarjan
        // must handle it.
        let n = 200_000;
        let mut g = DiGraph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        assert!(g.is_strongly_connected());
    }
}
