//! Siphons, traps and Commoner's liveness condition.
//!
//! Section 5.1 of the paper: "many properties can be checked
//! structurally for marked graphs and free-choice nets in polynomial
//! time, but which require exponential time for general Petri nets."
//! Siphon/trap analysis is the classical machinery behind those checks:
//!
//! * a **siphon** is a place set that, once empty, stays empty
//!   (`•S ⊆ S•`); at a deadlocked marking the unmarked places form one;
//! * a **trap** is a place set that, once marked, stays marked
//!   (`S• ⊆ •S`);
//! * **Commoner's condition**: a free-choice net is live iff every
//!   (minimal) siphon contains an initially marked trap.
//!
//! Maximal-siphon/trap extraction is polynomial (fixpoint deletion);
//! minimal-siphon enumeration is exponential in the worst case and runs
//! under an explicit budget.

use crate::error::PetriError;
use crate::label::Label;
use crate::net::{PetriNet, PlaceId};
use std::collections::BTreeSet;

/// Whether `set` is a siphon: every transition with an output place in
/// the set also has an input place in the set.
pub fn is_siphon<L: Label>(net: &PetriNet<L>, set: &BTreeSet<PlaceId>) -> bool {
    net.transitions().all(|(_, t)| {
        t.postset().iter().all(|p| !set.contains(p)) || t.preset().iter().any(|p| set.contains(p))
    })
}

/// Whether `set` is a trap: every transition with an input place in the
/// set also has an output place in the set.
pub fn is_trap<L: Label>(net: &PetriNet<L>, set: &BTreeSet<PlaceId>) -> bool {
    net.transitions().all(|(_, t)| {
        t.preset().iter().all(|p| !set.contains(p)) || t.postset().iter().any(|p| set.contains(p))
    })
}

/// The maximal siphon contained in `subset` (possibly empty), computed
/// by fixpoint deletion in polynomial time.
pub fn max_siphon_in<L: Label>(net: &PetriNet<L>, subset: &BTreeSet<PlaceId>) -> BTreeSet<PlaceId> {
    let mut s = subset.clone();
    loop {
        let mut removed = false;
        for (_, t) in net.transitions() {
            if t.preset().iter().all(|p| !s.contains(p)) {
                for p in t.postset() {
                    if s.remove(p) {
                        removed = true;
                    }
                }
            }
        }
        if !removed {
            return s;
        }
    }
}

/// The maximal trap contained in `subset` (possibly empty).
pub fn max_trap_in<L: Label>(net: &PetriNet<L>, subset: &BTreeSet<PlaceId>) -> BTreeSet<PlaceId> {
    let mut s = subset.clone();
    loop {
        let mut removed = false;
        for (_, t) in net.transitions() {
            if t.postset().iter().all(|p| !s.contains(p)) {
                for p in t.preset() {
                    if s.remove(p) {
                        removed = true;
                    }
                }
            }
        }
        if !removed {
            return s;
        }
    }
}

/// At a dead marking, the unmarked places form a siphon (the classical
/// deadlock witness). Returns it, or `None` if the marking enables some
/// transition (i.e. is not dead).
pub fn deadlock_siphon<L: Label>(
    net: &PetriNet<L>,
    marking: &crate::Marking,
) -> Option<BTreeSet<PlaceId>> {
    if !net.enabled_transitions(marking).is_empty() {
        return None;
    }
    let unmarked: BTreeSet<PlaceId> = net
        .place_ids()
        .filter(|&p| marking.tokens(p) == 0)
        .collect();
    debug_assert!(is_siphon(net, &unmarked), "deadlock theorem");
    Some(unmarked)
}

/// Enumerates the minimal siphons of the net (by support inclusion),
/// depth-first with an explicit budget on search nodes.
///
/// # Errors
///
/// Returns [`PetriError::StateBudgetExceeded`] when the search exceeds
/// `budget` nodes.
pub fn minimal_siphons<L: Label>(
    net: &PetriNet<L>,
    budget: usize,
) -> Result<Vec<BTreeSet<PlaceId>>, PetriError> {
    // DFS over partial sets: a siphon must, for every place p it
    // contains and every producer t of p, contain some place of •t.
    // Branch on the unsatisfied (place, producer) obligations.
    let mut found: Vec<BTreeSet<PlaceId>> = Vec::new();
    let mut nodes = 0usize;

    fn violation<L: Label>(net: &PetriNet<L>, s: &BTreeSet<PlaceId>) -> Option<Vec<PlaceId>> {
        for (_, t) in net.transitions() {
            if t.postset().iter().any(|p| s.contains(p))
                && !t.preset().iter().any(|p| s.contains(p))
            {
                return Some(t.preset().iter().copied().collect());
            }
        }
        None
    }

    fn dfs<L: Label>(
        net: &PetriNet<L>,
        s: BTreeSet<PlaceId>,
        found: &mut Vec<BTreeSet<PlaceId>>,
        nodes: &mut usize,
        budget: usize,
    ) -> Result<(), PetriError> {
        *nodes += 1;
        if *nodes > budget {
            return Err(PetriError::StateBudgetExceeded { budget });
        }
        // Prune: a superset of an already-found siphon is never minimal.
        if found.iter().any(|f| f.is_subset(&s)) {
            return Ok(());
        }
        match violation(net, &s) {
            None => {
                found.retain(|f| !s.is_subset(f));
                found.push(s);
                Ok(())
            }
            Some(choices) => {
                if choices.is_empty() {
                    // A source transition feeds the set: no siphon here.
                    return Ok(());
                }
                for c in choices {
                    let mut next = s.clone();
                    next.insert(c);
                    dfs(net, next, found, nodes, budget)?;
                }
                Ok(())
            }
        }
    }

    for p in net.place_ids() {
        dfs(net, BTreeSet::from([p]), &mut found, &mut nodes, budget)?;
    }
    // Deduplicate and keep only minimal supports.
    found.sort();
    found.dedup();
    let snapshot = found.clone();
    found.retain(|s| !snapshot.iter().any(|o| o != s && o.is_subset(s)));
    Ok(found)
}

/// Commoner's condition for free-choice nets: **live iff every minimal
/// siphon contains an initially marked trap**.
///
/// # Errors
///
/// * [`PetriError::Precondition`] if the net is not free-choice (the
///   condition is only exact there).
/// * [`PetriError::StateBudgetExceeded`] from the siphon enumeration.
pub fn commoner_live<L: Label>(net: &PetriNet<L>, budget: usize) -> Result<bool, PetriError> {
    if !net.structural().is_free_choice {
        return Err(PetriError::Precondition(
            "commoner's condition is exact for free-choice nets only".to_owned(),
        ));
    }
    let m0 = net.initial_marking();
    for siphon in minimal_siphons(net, budget)? {
        // An isolated place is a vacuous siphon (and trap); the theorem
        // is stated for nets whose places touch some transition, so a
        // disconnected place must not force a non-live verdict.
        let isolated = siphon
            .iter()
            .all(|&p| net.producers(p).is_empty() && net.consumers(p).is_empty());
        if isolated {
            continue;
        }
        let trap = max_trap_in(net, &siphon);
        let marked = trap.iter().any(|&p| m0.tokens(p) > 0);
        if !marked {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::reachability::ReachabilityOptions;

    fn cycle() -> (PetriNet<&'static str>, PlaceId, PlaceId) {
        let mut net = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "a", [q]).unwrap();
        net.add_transition([q], "b", [p]).unwrap();
        net.set_initial(p, 1);
        (net, p, q)
    }

    #[test]
    fn cycle_is_its_own_siphon_and_trap() {
        let (net, p, q) = cycle();
        let s = BTreeSet::from([p, q]);
        assert!(is_siphon(&net, &s));
        assert!(is_trap(&net, &s));
        assert!(!is_siphon(&net, &BTreeSet::from([p])));
    }

    #[test]
    fn max_siphon_shrinks_to_fixpoint() {
        // p gets tokens from a source-ish structure: q alone is no
        // siphon once its producer's preset is outside.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        let r = net.add_place("r");
        net.add_transition([p], "a", [q]).unwrap();
        net.add_transition([q], "b", [r]).unwrap();
        net.add_transition([r], "c", [p]).unwrap();
        let all: BTreeSet<PlaceId> = net.place_ids().collect();
        assert_eq!(max_siphon_in(&net, &all), all);
        let partial = BTreeSet::from([q, r]);
        assert!(max_siphon_in(&net, &partial).is_empty());
    }

    #[test]
    fn deadlock_yields_unmarked_siphon() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "go", [q]).unwrap();
        net.add_transition([q, p], "stuck", [p]).unwrap();
        net.set_initial(p, 1);
        // After `go`, p is empty and nothing fires.
        let dead = net
            .fire(&net.initial_marking(), crate::TransitionId::from_index(0))
            .unwrap();
        let siphon = deadlock_siphon(&net, &dead).expect("dead marking");
        assert!(siphon.contains(&p));
        assert!(deadlock_siphon(&net, &net.initial_marking()).is_none());
    }

    #[test]
    fn minimal_siphons_of_two_cycles() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        let r = net.add_place("r");
        let s = net.add_place("s");
        net.add_transition([p], "a", [q]).unwrap();
        net.add_transition([q], "b", [p]).unwrap();
        net.add_transition([r], "c", [s]).unwrap();
        net.add_transition([s], "d", [r]).unwrap();
        let siphons = minimal_siphons(&net, 10_000).unwrap();
        assert_eq!(siphons.len(), 2);
        assert!(siphons.contains(&BTreeSet::from([p, q])));
        assert!(siphons.contains(&BTreeSet::from([r, s])));
    }

    #[test]
    fn commoner_agrees_with_reachability_on_free_choice_nets() {
        // Family: two cycles sharing a free-choice place, with varying
        // markings — liveness flips with the marking.
        for mask in 0u32..8 {
            let mut net: PetriNet<String> = PetriNet::new();
            let ps: Vec<PlaceId> = (0..3).map(|i| net.add_place(format!("p{i}"))).collect();
            net.add_transition([ps[0]], "a".to_owned(), [ps[1]])
                .unwrap();
            net.add_transition([ps[1]], "b".to_owned(), [ps[2]])
                .unwrap();
            net.add_transition([ps[2]], "c".to_owned(), [ps[0]])
                .unwrap();
            for (i, &p) in ps.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    net.set_initial(p, 1);
                }
            }
            let structural = commoner_live(&net, 100_000).unwrap();
            let rg = net.reachability(&ReachabilityOptions::default()).unwrap();
            let behavioural = net.analysis(&rg).live;
            assert_eq!(structural, behavioural, "mask {mask}");
        }
    }

    #[test]
    fn commoner_detects_starved_choice() {
        // Free-choice net where one branch drains a siphon without a
        // marked trap: p feeds two consumers; x's branch never returns
        // the token.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        let sink = net.add_place("sink");
        net.add_transition([p], "x", [sink]).unwrap();
        net.add_transition([p], "y", [q]).unwrap();
        net.add_transition([q], "z", [p]).unwrap();
        net.add_transition([sink], "w", [sink]).unwrap();
        net.set_initial(p, 1);
        assert!(!commoner_live(&net, 100_000).unwrap());
        let rg = net.reachability(&ReachabilityOptions::default()).unwrap();
        assert!(!net.analysis(&rg).live);
    }

    #[test]
    fn commoner_rejects_non_free_choice() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        let r = net.add_place("r");
        net.add_transition([p], "t1", [r]).unwrap();
        net.add_transition([p, q], "t2", [r]).unwrap();
        assert!(matches!(
            commoner_live(&net, 1000),
            Err(PetriError::Precondition(_))
        ));
    }

    #[test]
    fn budget_enforced() {
        let (net, ..) = cycle();
        assert!(matches!(
            minimal_siphons(&net, 1),
            Err(PetriError::StateBudgetExceeded { .. })
        ));
    }
}
