//! Exploration budgets and graceful-degradation outcomes.
//!
//! Every analysis in the workspace that enumerates states, tree nodes or
//! traces can explode on an adversarial input. Rather than panicking or
//! returning a hard error, budgeted explorers stop at a configurable
//! [`Budget`] and report *how far they got*:
//!
//! * Structure builders (reachability graphs, coverability trees, trace
//!   languages, contractions) return a [`Bounded`] value — either
//!   `Complete` or `Exhausted` with the partial structure attached.
//! * Property checkers (receptiveness, consistency) return a
//!   [`Verdict`] — `Holds`, `Fails(witness)` or `Unknown(Exhausted)`.
//!
//! The verdict lattice is `Unknown ⊑ Holds`, `Unknown ⊑ Fails`: a checker
//! may answer `Unknown` where a bigger budget would answer definitely, but
//! two definite answers for the same question never disagree. The
//! [`Verdict::agrees_with`] predicate encodes exactly this monotonicity
//! and is used as a property-test oracle.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Default cap on distinct states/nodes discovered by an explorer.
///
/// This is the single shared constant behind every hardcoded
/// `with_max_states(2_000_000)` the workspace used to carry around.
pub const DEFAULT_MAX_STATES: usize = 2_000_000;

/// Default cap on explored edges/firings (a multiple of the state cap,
/// since bounded-degree graphs have a few edges per state).
pub const DEFAULT_MAX_TRANSITIONS: usize = 8_000_000;

/// A wall-clock deadline for an exploration.
///
/// A thin `Instant` wrapper so budgets can say *when* to give up, not
/// just *how much* to explore. `Copy`/`Eq`/`Hash` like `Instant`, so
/// embedding one keeps [`Budget`] freely copyable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Deadline(Instant);

impl Deadline {
    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Self {
        Deadline(Instant::now().checked_add(d).unwrap_or_else(|| {
            // Saturate absurd durations to "effectively never".
            Instant::now() + Duration::from_secs(60 * 60 * 24 * 365)
        }))
    }

    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Self {
        Deadline(instant)
    }

    /// The underlying instant.
    pub fn instant(self) -> Instant {
        self.0
    }

    /// Whether the deadline has passed.
    pub fn expired(self) -> bool {
        Instant::now() >= self.0
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(self) -> Duration {
        self.0.saturating_duration_since(Instant::now())
    }

    /// The earlier of two deadlines (used to shrink per-request
    /// deadlines under a draining server's global grace period).
    pub fn min(self, other: Deadline) -> Deadline {
        Deadline(self.0.min(other.0))
    }
}

// ----------------------------------------------------------------------
// Cooperative cancellation
// ----------------------------------------------------------------------
//
// A cancel flag must be shared between the thread running an exploration
// and the thread that decides to abandon it (a server noticing a client
// disconnect, a drain loop). `Arc<AtomicBool>` would force `Budget` to
// give up `Copy`/`Eq`/`Hash`, which every explorer relies on. Instead
// tokens are `Copy` handles `(slot, generation)` into a process-global
// slot registry: polling is one or two atomic loads, allocation reuses
// retired slots through a free list, and the generation word detects
// slot reuse so a stale token can never cancel an unrelated request
// silently. The registry tops out at `CANCEL_SLOT_CAP` *simultaneously
// live* scopes; beyond that scopes degrade to inert (never-cancelled)
// tokens rather than failing.

const CANCEL_SEG_SLOTS: usize = 64;
const CANCEL_SEGMENTS: usize = 64;
/// Maximum simultaneously live [`CancelScope`]s before new scopes
/// degrade to inert tokens.
pub const CANCEL_SLOT_CAP: usize = CANCEL_SEG_SLOTS * CANCEL_SEGMENTS;
const INERT_HANDLE: u32 = u32::MAX;

struct CancelSlot {
    gen: AtomicU32,
    flag: AtomicBool,
}

struct CancelRegistry {
    /// Lazily materialized fixed-address segments, so token polls read
    /// stable memory without taking any lock.
    segments: [OnceLock<Box<[CancelSlot; CANCEL_SEG_SLOTS]>>; CANCEL_SEGMENTS],
    free: Mutex<Vec<u32>>,
    next: AtomicU32,
}

fn cancel_registry() -> &'static CancelRegistry {
    static REGISTRY: OnceLock<CancelRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| CancelRegistry {
        segments: std::array::from_fn(|_| OnceLock::new()),
        free: Mutex::new(Vec::new()),
        next: AtomicU32::new(0),
    })
}

fn cancel_slot(handle: u32) -> Option<&'static CancelSlot> {
    let reg = cancel_registry();
    let seg = reg.segments.get((handle as usize) / CANCEL_SEG_SLOTS)?;
    seg.get().map(|s| &s[(handle as usize) % CANCEL_SEG_SLOTS])
}

/// A `Copy` cancellation handle carried inside a [`Budget`].
///
/// Obtained from a [`CancelScope`]; any thread holding a copy may call
/// [`CancelToken::cancel`] to ask in-flight explorations polling this
/// token to stop with [`Resource::Cancelled`]. Cancellation is
/// *advisory and sound*: it only ever turns a definite answer into
/// `Unknown(Exhausted)`, never the reverse, so a spurious cancel (e.g.
/// a token raced against its scope's drop) degrades gracefully.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CancelToken {
    handle: u32,
    gen: u32,
}

impl CancelToken {
    /// A token that is never cancelled (the default for budgets built
    /// without a scope, and the fallback when the registry is full).
    pub const fn inert() -> Self {
        CancelToken {
            handle: INERT_HANDLE,
            gen: 0,
        }
    }

    /// Whether cancellation has been requested.
    ///
    /// A token whose [`CancelScope`] has been dropped reads as
    /// cancelled: the request it guarded is over, so any exploration
    /// still polling it should stop.
    pub fn is_cancelled(self) -> bool {
        if self.handle == INERT_HANDLE {
            return false;
        }
        match cancel_slot(self.handle) {
            Some(s) => s.gen.load(Ordering::Acquire) != self.gen || s.flag.load(Ordering::Acquire),
            None => false,
        }
    }

    /// Requests cancellation. No-op on inert or retired tokens.
    pub fn cancel(self) {
        if self.handle == INERT_HANDLE {
            return;
        }
        if let Some(s) = cancel_slot(self.handle) {
            if s.gen.load(Ordering::Acquire) == self.gen {
                s.flag.store(true, Ordering::Release);
            }
        }
    }
}

/// The owning side of a cancellation flag.
///
/// Creating a scope allocates (or reuses) a registry slot; dropping it
/// retires the slot, after which every [`CancelToken`] copied from it
/// reads as cancelled. Typical server use: one scope per in-flight
/// request, token embedded in the request's [`Budget`], scope dropped
/// when the response is written.
#[derive(Debug)]
pub struct CancelScope {
    token: CancelToken,
}

impl CancelScope {
    /// Allocates a fresh scope. Degrades to an inert scope (tokens
    /// never cancel) if `CANCEL_SLOT_CAP` scopes are already live.
    pub fn new() -> Self {
        let reg = cancel_registry();
        let handle = {
            let popped = match reg.free.lock() {
                Ok(mut f) => f.pop(),
                Err(_) => None, // poisoned free list: allocate fresh
            };
            match popped {
                Some(h) => Some(h),
                None => reg
                    .next
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                        if (v as usize) < CANCEL_SLOT_CAP {
                            Some(v + 1)
                        } else {
                            None
                        }
                    })
                    .ok(),
            }
        };
        let Some(handle) = handle else {
            return CancelScope {
                token: CancelToken::inert(),
            };
        };
        let seg = &reg.segments[(handle as usize) / CANCEL_SEG_SLOTS];
        let slots = seg.get_or_init(|| {
            Box::new(std::array::from_fn(|_| CancelSlot {
                gen: AtomicU32::new(0),
                flag: AtomicBool::new(false),
            }))
        });
        let slot = &slots[(handle as usize) % CANCEL_SEG_SLOTS];
        // Clear any flag leaked by a cancel that raced the previous
        // owner's retirement, then publish the current generation.
        slot.flag.store(false, Ordering::Release);
        let gen = slot.gen.load(Ordering::Acquire);
        CancelScope {
            token: CancelToken { handle, gen },
        }
    }

    /// A `Copy` token polling this scope's flag.
    pub fn token(&self) -> CancelToken {
        self.token
    }

    /// Requests cancellation of everything polling this scope's tokens.
    pub fn cancel(&self) {
        self.token.cancel();
    }
}

impl Default for CancelScope {
    fn default() -> Self {
        CancelScope::new()
    }
}

impl Drop for CancelScope {
    fn drop(&mut self) {
        if self.token.handle == INERT_HANDLE {
            return;
        }
        if let Some(s) = cancel_slot(self.token.handle) {
            // Bump the generation first so stale tokens fail their
            // gen check before the slot is handed to a new owner.
            s.gen.fetch_add(1, Ordering::AcqRel);
            s.flag.store(false, Ordering::Release);
        }
        if let Ok(mut f) = cancel_registry().free.lock() {
            f.push(self.token.handle);
        }
    }
}

/// A resource budget for state-space exploration.
///
/// `max_states` bounds distinct markings/nodes discovered;
/// `max_transitions` bounds edges/firings examined. Exhausting either
/// stops the exploration gracefully. Optionally a budget also carries a
/// wall-clock [`Deadline`] and a cooperative [`CancelToken`]; explorers
/// poll both coarsely (every [`POLL_INTERVAL`] meter events, not per
/// state) and stop with [`Resource::Deadline`] / [`Resource::Cancelled`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Budget {
    /// Maximum number of distinct states (markings, tree nodes, traces).
    pub max_states: usize,
    /// Maximum number of explored transitions (edges, firings).
    pub max_transitions: usize,
    /// Wall-clock instant after which the exploration stops.
    pub deadline: Option<Deadline>,
    /// Cooperative cancellation flag polled alongside the deadline.
    pub cancel: Option<CancelToken>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_states: DEFAULT_MAX_STATES,
            max_transitions: DEFAULT_MAX_TRANSITIONS,
            deadline: None,
            cancel: None,
        }
    }
}

impl Budget {
    /// A budget with explicit caps on both resources.
    pub fn new(max_states: usize, max_transitions: usize) -> Self {
        Budget {
            max_states,
            max_transitions,
            deadline: None,
            cancel: None,
        }
    }

    /// A budget capping only the number of states (transitions unlimited).
    pub fn states(max_states: usize) -> Self {
        Budget {
            max_states,
            max_transitions: usize::MAX,
            deadline: None,
            cancel: None,
        }
    }

    /// An effectively unlimited budget (both caps at `usize::MAX`).
    pub fn unlimited() -> Self {
        Budget {
            max_states: usize::MAX,
            max_transitions: usize::MAX,
            deadline: None,
            cancel: None,
        }
    }

    /// This budget with a wall-clock deadline `d` from now.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(Deadline::after(d));
        self
    }

    /// This budget with an absolute deadline.
    pub fn with_deadline_at(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// This budget with a cooperative cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Immediate (not tick-gated) check of the deadline and cancel
    /// flag. Explorers that do not thread a [`Meter`] — e.g. the
    /// parallel BFS workers with their shared atomic accounting — call
    /// this at their own coarse interval.
    pub fn interrupted(&self) -> Option<Resource> {
        if let Some(d) = self.deadline {
            if d.expired() {
                return Some(Resource::Deadline);
            }
        }
        if let Some(c) = self.cancel {
            if c.is_cancelled() {
                return Some(Resource::Cancelled);
            }
        }
        None
    }
}

/// The resource that ran out when an exploration stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The state cap was reached.
    States,
    /// The transition cap was reached.
    Transitions,
    /// The wall-clock deadline passed.
    Deadline,
    /// Cooperative cancellation was requested.
    Cancelled,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::States => write!(f, "states"),
            Resource::Transitions => write!(f, "transitions"),
            Resource::Deadline => write!(f, "deadline"),
            Resource::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Partial-exploration statistics attached to an early stop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Exhausted {
    /// Which cap was hit first.
    pub resource: Resource,
    /// Distinct states discovered before stopping.
    pub states_explored: usize,
    /// Transitions examined before stopping.
    pub transitions_explored: usize,
    /// The budget that was in force.
    pub budget: Budget,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "budget exhausted ({}) after {} states / {} transitions",
            self.resource, self.states_explored, self.transitions_explored
        )
    }
}

/// Tri-state outcome of a budgeted property check.
///
/// `Fails` carries a witness found on the *explored prefix* of the state
/// space, so it is definite even when the exploration was cut short.
/// `Holds` is only returned after complete exploration. `Unknown` means
/// the budget ran out before either could be established.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict<W> {
    /// The property holds (exploration was complete).
    Holds,
    /// The property fails, with a witness.
    Fails(W),
    /// The budget ran out before a definite answer.
    Unknown(Exhausted),
}

impl<W> Verdict<W> {
    /// Whether the verdict is a definite `Holds`.
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Holds)
    }

    /// Whether the verdict is a definite `Fails`.
    pub fn fails(&self) -> bool {
        matches!(self, Verdict::Fails(_))
    }

    /// Whether the verdict is `Unknown`.
    pub fn is_unknown(&self) -> bool {
        matches!(self, Verdict::Unknown(_))
    }

    /// Whether the verdict is definite (`Holds` or `Fails`).
    pub fn is_definite(&self) -> bool {
        !self.is_unknown()
    }

    /// The failure witness, if any.
    pub fn witness(&self) -> Option<&W> {
        match self {
            Verdict::Fails(w) => Some(w),
            _ => None,
        }
    }

    /// The exhaustion statistics, if the verdict is `Unknown`.
    pub fn exhausted(&self) -> Option<&Exhausted> {
        match self {
            Verdict::Unknown(e) => Some(e),
            _ => None,
        }
    }

    /// Maps the witness type.
    pub fn map<U>(self, f: impl FnOnce(W) -> U) -> Verdict<U> {
        match self {
            Verdict::Holds => Verdict::Holds,
            Verdict::Fails(w) => Verdict::Fails(f(w)),
            Verdict::Unknown(e) => Verdict::Unknown(e),
        }
    }

    /// The monotonicity relation of the verdict lattice: two verdicts for
    /// the *same question* agree unless one says `Holds` and the other
    /// `Fails`. An `Unknown` from a small budget is consistent with any
    /// definite answer from a larger one.
    pub fn agrees_with<V>(&self, other: &Verdict<V>) -> bool {
        !(self.holds() && other.fails() || self.fails() && other.holds())
    }
}

impl<W> fmt::Display for Verdict<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Holds => write!(f, "holds"),
            Verdict::Fails(_) => write!(f, "fails"),
            Verdict::Unknown(e) => write!(f, "unknown ({e})"),
        }
    }
}

/// A structure built under a budget: complete, or a partial prefix with
/// statistics on where the exploration stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Bounded<T> {
    /// The budget sufficed; the structure is exact.
    Complete(T),
    /// The budget ran out; `partial` is a sound prefix of the structure.
    Exhausted {
        /// The structure explored so far (a prefix, not the whole thing).
        partial: T,
        /// What stopped the exploration, and how far it got.
        info: Exhausted,
    },
}

impl<T> Bounded<T> {
    /// Whether the structure is complete.
    pub fn is_complete(&self) -> bool {
        matches!(self, Bounded::Complete(_))
    }

    /// The exhaustion statistics, if the build stopped early.
    pub fn exhausted(&self) -> Option<&Exhausted> {
        match self {
            Bounded::Complete(_) => None,
            Bounded::Exhausted { info, .. } => Some(info),
        }
    }

    /// The structure, complete or partial.
    pub fn value(&self) -> &T {
        match self {
            Bounded::Complete(t) | Bounded::Exhausted { partial: t, .. } => t,
        }
    }

    /// Consumes the wrapper, returning the structure (complete or partial).
    pub fn into_value(self) -> T {
        match self {
            Bounded::Complete(t) | Bounded::Exhausted { partial: t, .. } => t,
        }
    }

    /// The structure only if it is complete.
    pub fn complete(self) -> Option<T> {
        match self {
            Bounded::Complete(t) => Some(t),
            Bounded::Exhausted { .. } => None,
        }
    }

    /// Maps the carried structure, preserving completeness.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Bounded<U> {
        match self {
            Bounded::Complete(t) => Bounded::Complete(f(t)),
            Bounded::Exhausted { partial, info } => Bounded::Exhausted {
                partial: f(partial),
                info,
            },
        }
    }
}

/// How many meter events pass between wall-clock/cancel polls.
///
/// Deadline and cancellation are checked only every `POLL_INTERVAL`
/// calls to [`Meter::take_state`] / [`Meter::take_transition`] /
/// [`Meter::should_stop`], so the per-state cost of carrying a deadline
/// is one increment and one mask — `Instant::now()` never appears on
/// the per-state path.
pub const POLL_INTERVAL: u32 = 1024;

const POLL_MASK: u32 = POLL_INTERVAL - 1;

/// A mutable meter that explorers thread through their main loop.
///
/// Call [`Meter::take_state`] when discovering a new state and
/// [`Meter::take_transition`] when examining an edge; both return `false`
/// once a cap is hit, after which the meter stays stopped. Both also
/// poll the budget's deadline and cancel flag at a coarse tick interval
/// ([`POLL_INTERVAL`]); loops that can spin without taking states or
/// transitions should call [`Meter::should_stop`] instead.
#[derive(Clone, Debug)]
pub struct Meter {
    budget: Budget,
    states: usize,
    transitions: usize,
    stopped: Option<Resource>,
    tick: u32,
}

impl Meter {
    /// A fresh meter for the given budget.
    pub fn new(budget: &Budget) -> Self {
        Meter {
            budget: *budget,
            states: 0,
            transitions: 0,
            stopped: None,
            tick: 0,
        }
    }

    /// One coarse tick: polls the wall clock and cancel flag every
    /// [`POLL_INTERVAL`] calls (including the very first, so an
    /// already-expired deadline stops the exploration immediately).
    #[inline]
    fn tick_poll(&mut self) {
        if self.stopped.is_some() {
            return;
        }
        if self.tick & POLL_MASK == 0 {
            self.poll_interrupts();
        }
        self.tick = self.tick.wrapping_add(1);
    }

    /// Immediately checks deadline and cancellation (no tick gating),
    /// marking the meter stopped if either fired. Returns whether the
    /// meter is stopped afterwards.
    pub fn poll_interrupts(&mut self) -> bool {
        if self.stopped.is_none() {
            self.stopped = self.budget.interrupted();
        }
        self.stopped.is_some()
    }

    /// The cheap per-iteration stop check for loops that do their own
    /// accounting: one increment + mask per call, a real wall-clock /
    /// cancel poll every [`POLL_INTERVAL`] calls. Returns `true` once
    /// the meter is stopped for any reason.
    #[inline]
    pub fn should_stop(&mut self) -> bool {
        self.tick_poll();
        self.stopped.is_some()
    }

    /// Accounts for one newly discovered state. Returns `false` (and
    /// marks the meter stopped) when the state cap is exhausted.
    pub fn take_state(&mut self) -> bool {
        self.tick_poll();
        if self.stopped.is_some() {
            return false;
        }
        if self.states >= self.budget.max_states {
            self.stopped = Some(Resource::States);
            return false;
        }
        self.states += 1;
        true
    }

    /// Accounts for one examined transition. Returns `false` (and marks
    /// the meter stopped) when the transition cap is exhausted.
    pub fn take_transition(&mut self) -> bool {
        self.tick_poll();
        if self.stopped.is_some() {
            return false;
        }
        if self.transitions >= self.budget.max_transitions {
            self.stopped = Some(Resource::Transitions);
            return false;
        }
        self.transitions += 1;
        true
    }

    /// Whether a cap has been hit.
    pub fn is_stopped(&self) -> bool {
        self.stopped.is_some()
    }

    /// States accounted for so far.
    pub fn states_explored(&self) -> usize {
        self.states
    }

    /// Transitions accounted for so far.
    pub fn transitions_explored(&self) -> usize {
        self.transitions
    }

    /// The exhaustion report, if a cap was hit.
    pub fn report(&self) -> Option<Exhausted> {
        self.stopped.map(|resource| Exhausted {
            resource,
            states_explored: self.states,
            transitions_explored: self.transitions,
            budget: self.budget,
        })
    }

    /// Wraps a finished structure: `Complete` if no cap was hit,
    /// `Exhausted` otherwise.
    pub fn finish<T>(&self, value: T) -> Bounded<T> {
        match self.report() {
            None => Bounded::Complete(value),
            Some(info) => Bounded::Exhausted {
                partial: value,
                info,
            },
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_uses_shared_constants() {
        let b = Budget::default();
        assert_eq!(b.max_states, DEFAULT_MAX_STATES);
        assert_eq!(b.max_transitions, DEFAULT_MAX_TRANSITIONS);
    }

    #[test]
    fn meter_stops_at_state_cap() {
        let mut m = Meter::new(&Budget::states(2));
        assert!(m.take_state());
        assert!(m.take_state());
        assert!(!m.take_state());
        assert!(m.is_stopped());
        let info = m.report().unwrap();
        assert_eq!(info.resource, Resource::States);
        assert_eq!(info.states_explored, 2);
    }

    #[test]
    fn meter_stops_at_transition_cap() {
        let mut m = Meter::new(&Budget::new(100, 1));
        assert!(m.take_state());
        assert!(m.take_transition());
        assert!(!m.take_transition());
        // Once stopped, everything is refused.
        assert!(!m.take_state());
        assert_eq!(m.report().unwrap().resource, Resource::Transitions);
    }

    #[test]
    fn finish_wraps_by_stop_state() {
        let mut m = Meter::new(&Budget::states(1));
        assert!(m.take_state());
        assert!(m.finish(()).is_complete());
        assert!(!m.take_state());
        assert!(!m.finish(()).is_complete());
    }

    #[test]
    fn verdict_lattice_agreement() {
        let holds: Verdict<()> = Verdict::Holds;
        let fails: Verdict<()> = Verdict::Fails(());
        let unknown: Verdict<()> = Verdict::Unknown(Exhausted {
            resource: Resource::States,
            states_explored: 1,
            transitions_explored: 0,
            budget: Budget::states(1),
        });
        assert!(!holds.agrees_with(&fails));
        assert!(!fails.agrees_with(&holds));
        assert!(unknown.agrees_with(&holds));
        assert!(unknown.agrees_with(&fails));
        assert!(holds.agrees_with(&holds));
        assert!(fails.agrees_with(&fails));
    }

    #[test]
    fn bounded_accessors() {
        let c: Bounded<u32> = Bounded::Complete(7);
        assert!(c.is_complete());
        assert_eq!(*c.value(), 7);
        assert_eq!(c.clone().complete(), Some(7));
        assert_eq!(c.map(|x| x + 1).into_value(), 8);
    }

    #[test]
    fn budget_stays_copy_eq_hash() {
        fn assert_copy_eq_hash<T: Copy + Eq + std::hash::Hash + Send + Sync>() {}
        assert_copy_eq_hash::<Budget>();
        assert_copy_eq_hash::<Deadline>();
        assert_copy_eq_hash::<CancelToken>();
        assert_copy_eq_hash::<Exhausted>();
    }

    #[test]
    fn expired_deadline_stops_meter_with_deadline_resource() {
        let budget = Budget::unlimited().with_deadline(Duration::ZERO);
        let mut m = Meter::new(&budget);
        // The first tick polls immediately, so an already-expired
        // deadline refuses the very first take.
        assert!(!m.take_state());
        assert_eq!(m.report().unwrap().resource, Resource::Deadline);
    }

    #[test]
    fn future_deadline_does_not_stop() {
        let budget = Budget::unlimited().with_deadline(Duration::from_secs(3600));
        let mut m = Meter::new(&budget);
        for _ in 0..(POLL_INTERVAL * 3) {
            assert!(m.take_transition());
        }
        assert!(!m.should_stop());
    }

    #[test]
    fn deadline_is_polled_coarsely_not_per_take() {
        // A deadline that expires mid-run is noticed within one poll
        // interval, not necessarily on the very next take.
        let budget = Budget::unlimited().with_deadline(Duration::from_millis(5));
        let mut m = Meter::new(&budget);
        assert!(m.take_state());
        std::thread::sleep(Duration::from_millis(10));
        let mut takes = 0u32;
        while m.take_transition() {
            takes += 1;
            assert!(takes <= POLL_INTERVAL, "deadline never noticed");
        }
        assert_eq!(m.report().unwrap().resource, Resource::Deadline);
    }

    #[test]
    fn cancel_token_stops_meter() {
        let scope = CancelScope::new();
        let budget = Budget::unlimited().with_cancel(scope.token());
        let mut m = Meter::new(&budget);
        assert!(m.take_state());
        scope.cancel();
        let mut takes = 0u32;
        while m.take_transition() {
            takes += 1;
            assert!(takes <= POLL_INTERVAL, "cancel never noticed");
        }
        assert_eq!(m.report().unwrap().resource, Resource::Cancelled);
    }

    #[test]
    fn dropped_scope_reads_as_cancelled_and_slot_reuse_is_isolated() {
        let scope = CancelScope::new();
        let stale = scope.token();
        assert!(!stale.is_cancelled());
        drop(scope);
        // The guarded request is over: pollers of the stale token stop.
        assert!(stale.is_cancelled());
        // A new scope (possibly reusing the slot) is unaffected by the
        // stale token, in either direction.
        let fresh = CancelScope::new();
        assert!(!fresh.token().is_cancelled());
        stale.cancel();
        assert!(!fresh.token().is_cancelled());
    }

    #[test]
    fn inert_token_is_never_cancelled() {
        let t = CancelToken::inert();
        t.cancel();
        assert!(!t.is_cancelled());
    }

    #[test]
    fn interrupted_reports_first_firing_axis() {
        let scope = CancelScope::new();
        let b = Budget::unlimited().with_cancel(scope.token());
        assert_eq!(b.interrupted(), None);
        scope.cancel();
        assert_eq!(b.interrupted(), Some(Resource::Cancelled));
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        assert_eq!(b.interrupted(), Some(Resource::Deadline));
    }

    #[test]
    fn deadline_min_and_remaining() {
        let near = Deadline::after(Duration::from_millis(1));
        let far = Deadline::after(Duration::from_secs(100));
        assert_eq!(near.min(far), near);
        assert_eq!(far.min(near), near);
        assert!(far.remaining() > Duration::from_secs(50));
        assert!(!far.expired());
    }

    #[test]
    fn verdict_accessors() {
        let v: Verdict<&str> = Verdict::Fails("w");
        assert!(v.fails());
        assert!(v.is_definite());
        assert_eq!(v.witness(), Some(&"w"));
        assert_eq!(v.map(str::len).witness(), Some(&1));
    }
}
