//! Exploration budgets and graceful-degradation outcomes.
//!
//! Every analysis in the workspace that enumerates states, tree nodes or
//! traces can explode on an adversarial input. Rather than panicking or
//! returning a hard error, budgeted explorers stop at a configurable
//! [`Budget`] and report *how far they got*:
//!
//! * Structure builders (reachability graphs, coverability trees, trace
//!   languages, contractions) return a [`Bounded`] value — either
//!   `Complete` or `Exhausted` with the partial structure attached.
//! * Property checkers (receptiveness, consistency) return a
//!   [`Verdict`] — `Holds`, `Fails(witness)` or `Unknown(Exhausted)`.
//!
//! The verdict lattice is `Unknown ⊑ Holds`, `Unknown ⊑ Fails`: a checker
//! may answer `Unknown` where a bigger budget would answer definitely, but
//! two definite answers for the same question never disagree. The
//! [`Verdict::agrees_with`] predicate encodes exactly this monotonicity
//! and is used as a property-test oracle.

use std::fmt;

/// Default cap on distinct states/nodes discovered by an explorer.
///
/// This is the single shared constant behind every hardcoded
/// `with_max_states(2_000_000)` the workspace used to carry around.
pub const DEFAULT_MAX_STATES: usize = 2_000_000;

/// Default cap on explored edges/firings (a multiple of the state cap,
/// since bounded-degree graphs have a few edges per state).
pub const DEFAULT_MAX_TRANSITIONS: usize = 8_000_000;

/// A resource budget for state-space exploration.
///
/// `max_states` bounds distinct markings/nodes discovered;
/// `max_transitions` bounds edges/firings examined. Exhausting either
/// stops the exploration gracefully.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Budget {
    /// Maximum number of distinct states (markings, tree nodes, traces).
    pub max_states: usize,
    /// Maximum number of explored transitions (edges, firings).
    pub max_transitions: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_states: DEFAULT_MAX_STATES,
            max_transitions: DEFAULT_MAX_TRANSITIONS,
        }
    }
}

impl Budget {
    /// A budget with explicit caps on both resources.
    pub fn new(max_states: usize, max_transitions: usize) -> Self {
        Budget {
            max_states,
            max_transitions,
        }
    }

    /// A budget capping only the number of states (transitions unlimited).
    pub fn states(max_states: usize) -> Self {
        Budget {
            max_states,
            max_transitions: usize::MAX,
        }
    }

    /// An effectively unlimited budget (both caps at `usize::MAX`).
    pub fn unlimited() -> Self {
        Budget {
            max_states: usize::MAX,
            max_transitions: usize::MAX,
        }
    }
}

/// The resource that ran out when an exploration stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The state cap was reached.
    States,
    /// The transition cap was reached.
    Transitions,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::States => write!(f, "states"),
            Resource::Transitions => write!(f, "transitions"),
        }
    }
}

/// Partial-exploration statistics attached to an early stop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Exhausted {
    /// Which cap was hit first.
    pub resource: Resource,
    /// Distinct states discovered before stopping.
    pub states_explored: usize,
    /// Transitions examined before stopping.
    pub transitions_explored: usize,
    /// The budget that was in force.
    pub budget: Budget,
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "budget exhausted ({}) after {} states / {} transitions",
            self.resource, self.states_explored, self.transitions_explored
        )
    }
}

/// Tri-state outcome of a budgeted property check.
///
/// `Fails` carries a witness found on the *explored prefix* of the state
/// space, so it is definite even when the exploration was cut short.
/// `Holds` is only returned after complete exploration. `Unknown` means
/// the budget ran out before either could be established.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict<W> {
    /// The property holds (exploration was complete).
    Holds,
    /// The property fails, with a witness.
    Fails(W),
    /// The budget ran out before a definite answer.
    Unknown(Exhausted),
}

impl<W> Verdict<W> {
    /// Whether the verdict is a definite `Holds`.
    pub fn holds(&self) -> bool {
        matches!(self, Verdict::Holds)
    }

    /// Whether the verdict is a definite `Fails`.
    pub fn fails(&self) -> bool {
        matches!(self, Verdict::Fails(_))
    }

    /// Whether the verdict is `Unknown`.
    pub fn is_unknown(&self) -> bool {
        matches!(self, Verdict::Unknown(_))
    }

    /// Whether the verdict is definite (`Holds` or `Fails`).
    pub fn is_definite(&self) -> bool {
        !self.is_unknown()
    }

    /// The failure witness, if any.
    pub fn witness(&self) -> Option<&W> {
        match self {
            Verdict::Fails(w) => Some(w),
            _ => None,
        }
    }

    /// The exhaustion statistics, if the verdict is `Unknown`.
    pub fn exhausted(&self) -> Option<&Exhausted> {
        match self {
            Verdict::Unknown(e) => Some(e),
            _ => None,
        }
    }

    /// Maps the witness type.
    pub fn map<U>(self, f: impl FnOnce(W) -> U) -> Verdict<U> {
        match self {
            Verdict::Holds => Verdict::Holds,
            Verdict::Fails(w) => Verdict::Fails(f(w)),
            Verdict::Unknown(e) => Verdict::Unknown(e),
        }
    }

    /// The monotonicity relation of the verdict lattice: two verdicts for
    /// the *same question* agree unless one says `Holds` and the other
    /// `Fails`. An `Unknown` from a small budget is consistent with any
    /// definite answer from a larger one.
    pub fn agrees_with<V>(&self, other: &Verdict<V>) -> bool {
        !(self.holds() && other.fails() || self.fails() && other.holds())
    }
}

impl<W> fmt::Display for Verdict<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Holds => write!(f, "holds"),
            Verdict::Fails(_) => write!(f, "fails"),
            Verdict::Unknown(e) => write!(f, "unknown ({e})"),
        }
    }
}

/// A structure built under a budget: complete, or a partial prefix with
/// statistics on where the exploration stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Bounded<T> {
    /// The budget sufficed; the structure is exact.
    Complete(T),
    /// The budget ran out; `partial` is a sound prefix of the structure.
    Exhausted {
        /// The structure explored so far (a prefix, not the whole thing).
        partial: T,
        /// What stopped the exploration, and how far it got.
        info: Exhausted,
    },
}

impl<T> Bounded<T> {
    /// Whether the structure is complete.
    pub fn is_complete(&self) -> bool {
        matches!(self, Bounded::Complete(_))
    }

    /// The exhaustion statistics, if the build stopped early.
    pub fn exhausted(&self) -> Option<&Exhausted> {
        match self {
            Bounded::Complete(_) => None,
            Bounded::Exhausted { info, .. } => Some(info),
        }
    }

    /// The structure, complete or partial.
    pub fn value(&self) -> &T {
        match self {
            Bounded::Complete(t) | Bounded::Exhausted { partial: t, .. } => t,
        }
    }

    /// Consumes the wrapper, returning the structure (complete or partial).
    pub fn into_value(self) -> T {
        match self {
            Bounded::Complete(t) | Bounded::Exhausted { partial: t, .. } => t,
        }
    }

    /// The structure only if it is complete.
    pub fn complete(self) -> Option<T> {
        match self {
            Bounded::Complete(t) => Some(t),
            Bounded::Exhausted { .. } => None,
        }
    }

    /// Maps the carried structure, preserving completeness.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Bounded<U> {
        match self {
            Bounded::Complete(t) => Bounded::Complete(f(t)),
            Bounded::Exhausted { partial, info } => Bounded::Exhausted {
                partial: f(partial),
                info,
            },
        }
    }
}

/// A mutable meter that explorers thread through their main loop.
///
/// Call [`Meter::take_state`] when discovering a new state and
/// [`Meter::take_transition`] when examining an edge; both return `false`
/// once a cap is hit, after which the meter stays stopped.
#[derive(Clone, Debug)]
pub struct Meter {
    budget: Budget,
    states: usize,
    transitions: usize,
    stopped: Option<Resource>,
}

impl Meter {
    /// A fresh meter for the given budget.
    pub fn new(budget: &Budget) -> Self {
        Meter {
            budget: *budget,
            states: 0,
            transitions: 0,
            stopped: None,
        }
    }

    /// Accounts for one newly discovered state. Returns `false` (and
    /// marks the meter stopped) when the state cap is exhausted.
    pub fn take_state(&mut self) -> bool {
        if self.stopped.is_some() {
            return false;
        }
        if self.states >= self.budget.max_states {
            self.stopped = Some(Resource::States);
            return false;
        }
        self.states += 1;
        true
    }

    /// Accounts for one examined transition. Returns `false` (and marks
    /// the meter stopped) when the transition cap is exhausted.
    pub fn take_transition(&mut self) -> bool {
        if self.stopped.is_some() {
            return false;
        }
        if self.transitions >= self.budget.max_transitions {
            self.stopped = Some(Resource::Transitions);
            return false;
        }
        self.transitions += 1;
        true
    }

    /// Whether a cap has been hit.
    pub fn is_stopped(&self) -> bool {
        self.stopped.is_some()
    }

    /// States accounted for so far.
    pub fn states_explored(&self) -> usize {
        self.states
    }

    /// Transitions accounted for so far.
    pub fn transitions_explored(&self) -> usize {
        self.transitions
    }

    /// The exhaustion report, if a cap was hit.
    pub fn report(&self) -> Option<Exhausted> {
        self.stopped.map(|resource| Exhausted {
            resource,
            states_explored: self.states,
            transitions_explored: self.transitions,
            budget: self.budget,
        })
    }

    /// Wraps a finished structure: `Complete` if no cap was hit,
    /// `Exhausted` otherwise.
    pub fn finish<T>(&self, value: T) -> Bounded<T> {
        match self.report() {
            None => Bounded::Complete(value),
            Some(info) => Bounded::Exhausted {
                partial: value,
                info,
            },
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_uses_shared_constants() {
        let b = Budget::default();
        assert_eq!(b.max_states, DEFAULT_MAX_STATES);
        assert_eq!(b.max_transitions, DEFAULT_MAX_TRANSITIONS);
    }

    #[test]
    fn meter_stops_at_state_cap() {
        let mut m = Meter::new(&Budget::states(2));
        assert!(m.take_state());
        assert!(m.take_state());
        assert!(!m.take_state());
        assert!(m.is_stopped());
        let info = m.report().unwrap();
        assert_eq!(info.resource, Resource::States);
        assert_eq!(info.states_explored, 2);
    }

    #[test]
    fn meter_stops_at_transition_cap() {
        let mut m = Meter::new(&Budget::new(100, 1));
        assert!(m.take_state());
        assert!(m.take_transition());
        assert!(!m.take_transition());
        // Once stopped, everything is refused.
        assert!(!m.take_state());
        assert_eq!(m.report().unwrap().resource, Resource::Transitions);
    }

    #[test]
    fn finish_wraps_by_stop_state() {
        let mut m = Meter::new(&Budget::states(1));
        assert!(m.take_state());
        assert!(m.finish(()).is_complete());
        assert!(!m.take_state());
        assert!(!m.finish(()).is_complete());
    }

    #[test]
    fn verdict_lattice_agreement() {
        let holds: Verdict<()> = Verdict::Holds;
        let fails: Verdict<()> = Verdict::Fails(());
        let unknown: Verdict<()> = Verdict::Unknown(Exhausted {
            resource: Resource::States,
            states_explored: 1,
            transitions_explored: 0,
            budget: Budget::states(1),
        });
        assert!(!holds.agrees_with(&fails));
        assert!(!fails.agrees_with(&holds));
        assert!(unknown.agrees_with(&holds));
        assert!(unknown.agrees_with(&fails));
        assert!(holds.agrees_with(&holds));
        assert!(fails.agrees_with(&fails));
    }

    #[test]
    fn bounded_accessors() {
        let c: Bounded<u32> = Bounded::Complete(7);
        assert!(c.is_complete());
        assert_eq!(*c.value(), 7);
        assert_eq!(c.clone().complete(), Some(7));
        assert_eq!(c.map(|x| x + 1).into_value(), 8);
    }

    #[test]
    fn verdict_accessors() {
        let v: Verdict<&str> = Verdict::Fails("w");
        assert!(v.fails());
        assert!(v.is_definite());
        assert_eq!(v.witness(), Some(&"w"));
        assert_eq!(v.map(str::len).witness(), Some(&1));
    }
}
