//! The [`PetriNet`] data structure: arena-indexed labeled Petri nets.
//!
//! Mirrors Definition 2.1 of the paper: `N = (A, P, →, M0)`. The alphabet
//! `A` is carried **explicitly** (not derived from the transitions) because
//! the algebra of Section 4 synchronizes parallel composition on the common
//! alphabet `A1 ∩ A2`, which may include labels that currently have no
//! transitions in one of the nets.
//!
//! Labels are stored interned: each net owns an [`Interner`] mapping its
//! labels to dense [`Sym`] symbols, transitions carry a `Sym`, and the
//! alphabet is an [`AlphaSet`] bitset. The generic label-typed API is
//! preserved — labels are materialized at the boundary — while the hot
//! paths (firing, contraction, composition, trace extraction) run on
//! symbols.

use crate::alphabet::{AlphaSet, Interner, Sym};
use crate::error::PetriError;
use crate::label::Label;
use crate::marking::Marking;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a place inside one [`PetriNet`] (arena index).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlaceId(u32);

impl PlaceId {
    /// The arena index of this place.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `PlaceId` from an arena index.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::IndexOverflow`] when the index does not fit
    /// the 32-bit id space.
    pub fn try_from_index(i: usize) -> Result<Self, PetriError> {
        match u32::try_from(i) {
            Ok(v) => Ok(PlaceId(v)),
            Err(_) => Err(PetriError::IndexOverflow { index: i }),
        }
    }

    /// Builds a `PlaceId` from an arena index.
    ///
    /// Only meaningful for indices obtained from the same net.
    ///
    /// # Panics
    ///
    /// Panics if the index exceeds the 32-bit id space; use
    /// [`PlaceId::try_from_index`] where the index is untrusted.
    pub fn from_index(i: usize) -> Self {
        match Self::try_from_index(i) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }
}

impl fmt::Debug for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a transition inside one [`PetriNet`] (arena index).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransitionId(u32);

impl TransitionId {
    /// The arena index of this transition.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `TransitionId` from an arena index.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::IndexOverflow`] when the index does not fit
    /// the 32-bit id space.
    pub fn try_from_index(i: usize) -> Result<Self, PetriError> {
        match u32::try_from(i) {
            Ok(v) => Ok(TransitionId(v)),
            Err(_) => Err(PetriError::IndexOverflow { index: i }),
        }
    }

    /// Builds a `TransitionId` from an arena index.
    ///
    /// # Panics
    ///
    /// Panics if the index exceeds the 32-bit id space; use
    /// [`TransitionId::try_from_index`] where the index is untrusted.
    pub fn from_index(i: usize) -> Self {
        match Self::try_from_index(i) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }
}

impl fmt::Debug for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A place of the net, carrying a human-readable name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Place {
    name: String,
}

impl Place {
    /// The place's name (free-form; used by printers and the text format).
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A transition `(p, a, q)` with preset `p`, label symbol `a` and
/// postset `q`.
///
/// Presets and postsets are place **sets**, exactly as in the paper's
/// transition relation `→ ⊆ 2^P × A × 2^P`. The label is stored as an
/// interned [`Sym`]; resolve it against the owning net with
/// [`PetriNet::label_of`] or [`PetriNet::resolve`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transition {
    preset: BTreeSet<PlaceId>,
    sym: Sym,
    postset: BTreeSet<PlaceId>,
}

impl Transition {
    /// Input places `p` of the transition.
    pub fn preset(&self) -> &BTreeSet<PlaceId> {
        &self.preset
    }

    /// The action label's interned symbol.
    pub fn sym(&self) -> Sym {
        self.sym
    }

    /// Output places `q` of the transition.
    pub fn postset(&self) -> &BTreeSet<PlaceId> {
        &self.postset
    }

    /// Whether the transition has a self-loop (`p ∩ q ≠ ∅`).
    pub fn has_self_loop(&self) -> bool {
        self.preset.intersection(&self.postset).next().is_some()
    }
}

/// A labeled Petri net `(A, P, →, M0)` over labels of type `L`.
///
/// Construction is incremental: add places, then transitions over them,
/// then set the initial marking. All analysis lives in sibling modules and
/// in method form on this type.
///
/// # Example
///
/// ```
/// use cpn_petri::PetriNet;
///
/// # fn main() -> Result<(), cpn_petri::PetriError> {
/// let mut net: PetriNet<&str> = PetriNet::new();
/// let p0 = net.add_place("idle");
/// let p1 = net.add_place("busy");
/// let go = net.add_transition([p0], "go", [p1])?;
/// net.add_transition([p1], "done", [p0])?;
/// net.set_initial(p0, 1);
///
/// let m = net.initial_marking();
/// assert!(net.is_enabled(&m, go));
/// let m2 = net.fire(&m, go)?;
/// assert_eq!(m2.tokens(p1), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct PetriNet<L: Label> {
    places: Vec<Place>,
    transitions: Vec<Transition>,
    interner: Interner<L>,
    alphabet: AlphaSet,
    initial: Marking,
}

impl<L: Label> Default for PetriNet<L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L: Label> PetriNet<L> {
    /// Creates an empty net (no places, no transitions, empty alphabet).
    pub fn new() -> Self {
        PetriNet {
            places: Vec::new(),
            transitions: Vec::new(),
            interner: Interner::new(),
            alphabet: AlphaSet::new(),
            initial: Marking::empty(0),
        }
    }

    /// Creates an empty net whose interner is pre-seeded with `interner`.
    ///
    /// Builders that already work in an existing symbol space (the
    /// contraction editor, parallel composition) use this so
    /// [`add_transition_sym`](Self::add_transition_sym) needs no label
    /// clones or lookups; symbols of the seed interner keep their
    /// meaning in the new net.
    pub fn with_interner(interner: Interner<L>) -> Self {
        PetriNet {
            places: Vec::new(),
            transitions: Vec::new(),
            interner,
            alphabet: AlphaSet::new(),
            initial: Marking::empty(0),
        }
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Adds a place with the given name and returns its id.
    pub fn add_place(&mut self, name: impl Into<String>) -> PlaceId {
        let id = PlaceId::from_index(self.places.len());
        self.places.push(Place { name: name.into() });
        self.initial.grow(1);
        id
    }

    fn check_transition(
        &self,
        preset: &BTreeSet<PlaceId>,
        postset: &BTreeSet<PlaceId>,
    ) -> Result<(), PetriError> {
        for &p in preset.iter().chain(postset.iter()) {
            if p.index() >= self.places.len() {
                return Err(PetriError::UnknownPlace(p.0));
            }
        }
        if preset.is_empty() && postset.is_empty() {
            return Err(PetriError::DegenerateTransition);
        }
        Ok(())
    }

    /// Adds a transition `(preset, label, postset)`.
    ///
    /// The label is interned and added to the alphabet.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::UnknownPlace`] if a place id does not belong
    /// to this net, and [`PetriError::DegenerateTransition`] if both the
    /// preset and the postset are empty.
    pub fn add_transition(
        &mut self,
        preset: impl IntoIterator<Item = PlaceId>,
        label: L,
        postset: impl IntoIterator<Item = PlaceId>,
    ) -> Result<TransitionId, PetriError> {
        let sym = self.interner.intern_owned(label);
        self.add_transition_sym(preset, sym, postset)
    }

    /// Adds a transition whose label is the already-interned `sym`.
    ///
    /// The symbol-space twin of [`add_transition`](Self::add_transition):
    /// no label value is touched. The symbol is added to the alphabet.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::UnknownPlace`] / [`PetriError::DegenerateTransition`]
    /// as `add_transition`, and [`PetriError::Precondition`] if the symbol
    /// is not part of this net's interner.
    pub fn add_transition_sym(
        &mut self,
        preset: impl IntoIterator<Item = PlaceId>,
        sym: Sym,
        postset: impl IntoIterator<Item = PlaceId>,
    ) -> Result<TransitionId, PetriError> {
        let preset: BTreeSet<PlaceId> = preset.into_iter().collect();
        let postset: BTreeSet<PlaceId> = postset.into_iter().collect();
        self.check_transition(&preset, &postset)?;
        if sym.index() >= self.interner.len() {
            return Err(PetriError::Precondition(format!(
                "symbol {sym} not interned in this net"
            )));
        }
        let id = TransitionId::from_index(self.transitions.len());
        self.alphabet.insert(sym);
        self.transitions.push(Transition {
            preset,
            sym,
            postset,
        });
        Ok(id)
    }

    /// Declares a label as part of the alphabet even if no transition
    /// carries it (needed for faithful parallel composition, Def 4.7).
    pub fn declare_label(&mut self, label: L) {
        let sym = self.interner.intern_owned(label);
        self.alphabet.insert(sym);
    }

    /// Interns a label without declaring it in the alphabet, returning
    /// its symbol. Hidden labels keep resolvable symbols this way.
    pub fn intern_label(&mut self, label: &L) -> Sym {
        self.interner.intern(label)
    }

    /// Declares an already-interned symbol as part of the alphabet — the
    /// symbol-space twin of [`declare_label`](Self::declare_label).
    ///
    /// # Panics
    ///
    /// Panics if the symbol does not belong to this net's interner.
    pub fn declare_sym(&mut self, sym: Sym) {
        assert!(
            sym.index() < self.interner.len(),
            "symbol {sym} not interned in this net"
        );
        self.alphabet.insert(sym);
    }

    /// Removes a label from the alphabet.
    ///
    /// Has no effect on transitions; callers are expected to have removed
    /// or relabeled the transitions first (as the hiding operator does).
    /// The label stays interned — symbols are never invalidated.
    pub fn undeclare_label(&mut self, label: &L) {
        if let Some(sym) = self.interner.get(label) {
            self.alphabet.remove(sym);
        }
    }

    /// Sets the initial token count of a place.
    ///
    /// # Panics
    ///
    /// Panics if the place does not belong to this net.
    pub fn set_initial(&mut self, place: PlaceId, tokens: u32) {
        assert!(place.index() < self.places.len(), "unknown place");
        self.initial.set(place, tokens);
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// The explicit alphabet `A`, materialized as a label set.
    ///
    /// Boundary API: allocates. Hot paths use
    /// [`alphabet_syms`](Self::alphabet_syms) and stay on symbols.
    pub fn alphabet(&self) -> BTreeSet<L> {
        self.alphabet
            .iter()
            .map(|s| self.interner.resolve(s).clone())
            .collect()
    }

    /// The explicit alphabet `A` as a symbol bitset.
    pub fn alphabet_syms(&self) -> &AlphaSet {
        &self.alphabet
    }

    /// Whether `label` is in the alphabet.
    pub fn alphabet_contains(&self, label: &L) -> bool {
        self.interner
            .get(label)
            .is_some_and(|s| self.alphabet.contains(s))
    }

    /// Number of labels in the alphabet.
    pub fn alphabet_len(&self) -> usize {
        self.alphabet.len()
    }

    /// This net's label interner.
    pub fn interner(&self) -> &Interner<L> {
        &self.interner
    }

    /// The symbol of `label` in this net's interner, if interned.
    pub fn sym_of(&self, label: &L) -> Option<Sym> {
        self.interner.get(label)
    }

    /// The label behind a symbol of this net's interner.
    ///
    /// # Panics
    ///
    /// Panics if the symbol does not belong to this net.
    pub fn resolve(&self, sym: Sym) -> &L {
        self.interner.resolve(sym)
    }

    /// The label of transition `t`.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this net.
    pub fn label_of(&self, t: TransitionId) -> &L {
        self.interner.resolve(self.transitions[t.index()].sym)
    }

    /// `true` when both nets have identical places, transitions and
    /// initial marking — structural identity, ignoring the declared
    /// alphabet (hiding shrinks `A` even when no transition changed).
    /// The synthesis pipeline uses this to skip a second dead-removal
    /// pass when projection turned out to be a no-op.
    pub fn same_structure(&self, other: &PetriNet<L>) -> bool {
        if self.places != other.places || self.initial != other.initial {
            return false;
        }
        if self.interner == other.interner {
            return self.transitions == other.transitions;
        }
        self.transitions.len() == other.transitions.len()
            && self
                .transitions
                .iter()
                .zip(&other.transitions)
                .all(|(a, b)| {
                    a.preset == b.preset
                        && a.postset == b.postset
                        && self.interner.resolve(a.sym) == other.interner.resolve(b.sym)
                })
    }

    /// The place with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this net.
    pub fn place(&self, p: PlaceId) -> &Place {
        &self.places[p.index()]
    }

    /// The transition with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this net.
    pub fn transition(&self, t: TransitionId) -> &Transition {
        &self.transitions[t.index()]
    }

    /// Iterates over all place ids.
    pub fn place_ids(&self) -> impl Iterator<Item = PlaceId> {
        (0..self.places.len()).map(PlaceId::from_index)
    }

    /// Iterates over all transition ids.
    pub fn transition_ids(&self) -> impl Iterator<Item = TransitionId> {
        (0..self.transitions.len()).map(TransitionId::from_index)
    }

    /// Iterates over `(id, transition)` pairs.
    pub fn transitions(&self) -> impl Iterator<Item = (TransitionId, &Transition)> {
        self.transitions
            .iter()
            .enumerate()
            .map(|(i, t)| (TransitionId::from_index(i), t))
    }

    /// Iterates over `(id, place)` pairs.
    pub fn places(&self) -> impl Iterator<Item = (PlaceId, &Place)> {
        self.places
            .iter()
            .enumerate()
            .map(|(i, p)| (PlaceId::from_index(i), p))
    }

    /// All transitions carrying the given label.
    pub fn transitions_with_label<'a>(
        &'a self,
        label: &L,
    ) -> impl Iterator<Item = TransitionId> + 'a {
        let sym = self.interner.get(label);
        self.transitions()
            .filter(move |(_, t)| Some(t.sym) == sym)
            .map(|(id, _)| id)
    }

    /// All transitions carrying the given label symbol.
    pub fn transitions_with_sym(&self, sym: Sym) -> impl Iterator<Item = TransitionId> + '_ {
        self.transitions()
            .filter(move |(_, t)| t.sym == sym)
            .map(|(id, _)| id)
    }

    /// The initial marking `M0`.
    pub fn initial_marking(&self) -> Marking {
        self.initial.clone()
    }

    /// The set of initially marked places `{p ∈ P | M0(p) ≠ 0}`.
    pub fn initial_places(&self) -> BTreeSet<PlaceId> {
        self.initial.marked_places().map(|(p, _)| p).collect()
    }

    /// Whether the initial marking is safe (at most one token per place).
    pub fn has_safe_initial_marking(&self) -> bool {
        self.initial.is_safe()
    }

    /// Transitions producing into place `p` (those with `p` in the postset).
    pub fn producers(&self, p: PlaceId) -> Vec<TransitionId> {
        self.transitions()
            .filter(|(_, t)| t.postset().contains(&p))
            .map(|(id, _)| id)
            .collect()
    }

    /// Transitions consuming from place `p` (those with `p` in the preset).
    pub fn consumers(&self, p: PlaceId) -> Vec<TransitionId> {
        self.transitions()
            .filter(|(_, t)| t.preset().contains(&p))
            .map(|(id, _)| id)
            .collect()
    }

    // ------------------------------------------------------------------
    // Token game (Definition 2.2)
    // ------------------------------------------------------------------

    /// Whether transition `t` is enabled in marking `m`:
    /// `∀ p ∈ preset(t): m(p) > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `t` does not belong to this net or `m` has the wrong
    /// number of places.
    pub fn is_enabled(&self, m: &Marking, t: TransitionId) -> bool {
        assert_eq!(m.len(), self.places.len(), "marking over different net");
        self.transitions[t.index()]
            .preset
            .iter()
            .all(|&p| m.tokens(p) > 0)
    }

    /// Fires transition `t` in marking `m`, producing the successor
    /// marking per Definition 2.2: tokens are removed from `p \ q`, added
    /// to `q \ p`, and untouched on self-loops `p ∩ q`.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::Precondition`] if the transition is not
    /// enabled.
    pub fn fire(&self, m: &Marking, t: TransitionId) -> Result<Marking, PetriError> {
        if !self.is_enabled(m, t) {
            return Err(PetriError::Precondition(format!(
                "transition {t} not enabled in {m}"
            )));
        }
        let tr = &self.transitions[t.index()];
        let mut next = m.clone();
        for &p in tr.preset.difference(&tr.postset) {
            next.remove(p, 1)?;
        }
        for &q in tr.postset.difference(&tr.preset) {
            next.add(q, 1)?;
        }
        Ok(next)
    }

    /// All transitions enabled in marking `m`.
    pub fn enabled_transitions(&self, m: &Marking) -> Vec<TransitionId> {
        self.transition_ids()
            .filter(|&t| self.is_enabled(m, t))
            .collect()
    }

    // ------------------------------------------------------------------
    // Rebuilding (used by the algebra and dead-transition removal)
    // ------------------------------------------------------------------

    /// Returns a copy of the net without the given transitions.
    ///
    /// Places, their names and the initial marking are preserved;
    /// surviving transitions are re-indexed densely. Labels that no longer
    /// have transitions **stay** in the alphabet (removing a transition
    /// does not hide its action).
    pub fn without_transitions(&self, remove: &BTreeSet<TransitionId>) -> PetriNet<L> {
        let mut net = PetriNet {
            places: self.places.clone(),
            transitions: Vec::new(),
            interner: self.interner.clone(),
            alphabet: self.alphabet.clone(),
            initial: self.initial.clone(),
        };
        for (id, t) in self.transitions() {
            if !remove.contains(&id) {
                net.transitions.push(t.clone());
            }
        }
        net
    }

    /// Returns a copy of the net without places that are neither marked
    /// initially nor adjacent to any transition, together with the
    /// old-to-new place id mapping.
    pub fn without_isolated_places(&self) -> (PetriNet<L>, BTreeMap<PlaceId, PlaceId>) {
        let mut used = vec![false; self.places.len()];
        for (_, t) in self.transitions() {
            for &p in t.preset().iter().chain(t.postset().iter()) {
                used[p.index()] = true;
            }
        }
        for (p, _) in self.initial.marked_places() {
            used[p.index()] = true;
        }
        let mut map = BTreeMap::new();
        let mut net = PetriNet::with_interner(self.interner.clone());
        net.alphabet = self.alphabet.clone();
        for (old, place) in self.places() {
            if used[old.index()] {
                let new = net.add_place(place.name().to_owned());
                net.initial.set(new, self.initial.tokens(old));
                map.insert(old, new);
            }
        }
        for (_, t) in self.transitions() {
            // Remapped ids are valid by construction (every adjacent place
            // is `used`), so the transition can be pushed directly.
            net.alphabet.insert(t.sym());
            net.transitions.push(Transition {
                preset: t.preset().iter().map(|p| map[p]).collect(),
                sym: t.sym(),
                postset: t.postset().iter().map(|p| map[p]).collect(),
            });
        }
        (net, map)
    }

    /// Maps every label through `f`, producing a net over a new label type.
    ///
    /// The alphabet is mapped element-wise; distinct labels may collapse
    /// (their symbols merge in the new interner).
    pub fn map_labels<M: Label>(&self, mut f: impl FnMut(&L) -> M) -> PetriNet<M> {
        let mut interner: Interner<M> = Interner::new();
        // Old symbol index → new symbol; interning order follows the old
        // symbol numbering so equal source nets map to equal results.
        let sym_map: Vec<Sym> = self
            .interner
            .iter()
            .map(|(_, l)| interner.intern_owned(f(l)))
            .collect();
        let mut alphabet = AlphaSet::new();
        for s in self.alphabet.iter() {
            alphabet.insert(sym_map[s.index()]);
        }
        PetriNet {
            places: self.places.clone(),
            transitions: self
                .transitions
                .iter()
                .map(|t| Transition {
                    preset: t.preset.clone(),
                    sym: sym_map[t.sym.index()],
                    postset: t.postset.clone(),
                })
                .collect(),
            interner,
            alphabet,
            initial: self.initial.clone(),
        }
    }

    /// Checks internal consistency (place ids in range, marking length,
    /// every transition label declared in the alphabet).
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found.
    pub fn validate(&self) -> Result<(), PetriError> {
        if self.initial.len() != self.places.len() {
            return Err(PetriError::Precondition(format!(
                "marking covers {} places, net has {}",
                self.initial.len(),
                self.places.len()
            )));
        }
        for (id, t) in self.transitions() {
            for &p in t.preset().iter().chain(t.postset().iter()) {
                if p.index() >= self.places.len() {
                    return Err(PetriError::UnknownPlace(p.0));
                }
            }
            if t.sym().index() >= self.interner.len() {
                return Err(PetriError::Precondition(format!(
                    "symbol {} of transition {id} not interned",
                    t.sym()
                )));
            }
            if !self.alphabet.contains(t.sym()) {
                return Err(PetriError::Precondition(format!(
                    "label {} of transition {id} missing from alphabet",
                    self.label_of(id)
                )));
            }
        }
        Ok(())
    }
}

impl<L: Label> PartialEq for PetriNet<L> {
    /// Semantic equality: identical places, initial marking, transition
    /// structure with equal **labels** (not raw symbols), and equal
    /// alphabet label sets. Two nets built through different interning
    /// orders compare equal when they denote the same net.
    fn eq(&self, other: &Self) -> bool {
        if self.places != other.places || self.initial != other.initial {
            return false;
        }
        if self.interner == other.interner {
            return self.transitions == other.transitions && self.alphabet == other.alphabet;
        }
        if self.transitions.len() != other.transitions.len()
            || self.alphabet.len() != other.alphabet.len()
        {
            return false;
        }
        self.transitions
            .iter()
            .zip(&other.transitions)
            .all(|(a, b)| {
                a.preset == b.preset
                    && a.postset == b.postset
                    && self.interner.resolve(a.sym) == other.interner.resolve(b.sym)
            })
            && self.alphabet.iter().all(|s| {
                other
                    .interner
                    .get(self.interner.resolve(s))
                    .is_some_and(|o| other.alphabet.contains(o))
            })
    }
}

impl<L: Label> Eq for PetriNet<L> {}

impl<L: Label> fmt::Debug for PetriNet<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl<L: Label> fmt::Display for PetriNet<L> {
    /// A compact multi-line listing of places, transitions and the initial
    /// marking.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "net: {} places, {} transitions, alphabet {{{}}}",
            self.place_count(),
            self.transition_count(),
            self.alphabet()
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )?;
        for (id, t) in self.transitions() {
            writeln!(
                f,
                "  {id}: {{{}}} --{}--> {{{}}}",
                t.preset()
                    .iter()
                    .map(|p| self.place(*p).name().to_owned())
                    .collect::<Vec<_>>()
                    .join(","),
                self.label_of(id),
                t.postset()
                    .iter()
                    .map(|p| self.place(*p).name().to_owned())
                    .collect::<Vec<_>>()
                    .join(","),
            )?;
        }
        write!(
            f,
            "  M0: {{{}}}",
            self.initial
                .marked_places()
                .map(|(p, n)| if n == 1 {
                    self.place(p).name().to_owned()
                } else {
                    format!("{}×{}", self.place(p).name(), n)
                })
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn two_cycle() -> (
        PetriNet<&'static str>,
        PlaceId,
        PlaceId,
        TransitionId,
        TransitionId,
    ) {
        let mut net = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        let a = net.add_transition([p], "a", [q]).unwrap();
        let b = net.add_transition([q], "b", [p]).unwrap();
        net.set_initial(p, 1);
        (net, p, q, a, b)
    }

    #[test]
    fn build_and_fire() {
        let (net, p, q, a, b) = two_cycle();
        let m0 = net.initial_marking();
        assert!(net.is_enabled(&m0, a));
        assert!(!net.is_enabled(&m0, b));
        let m1 = net.fire(&m0, a).unwrap();
        assert_eq!(m1.tokens(p), 0);
        assert_eq!(m1.tokens(q), 1);
        let m2 = net.fire(&m1, b).unwrap();
        assert_eq!(m2, m0);
    }

    #[test]
    fn fire_disabled_is_error() {
        let (net, _, _, _, b) = two_cycle();
        let m0 = net.initial_marking();
        assert!(net.fire(&m0, b).is_err());
    }

    #[test]
    fn self_loop_keeps_token() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        let t = net.add_transition([p], "a", [p, q]).unwrap();
        net.set_initial(p, 1);
        assert!(net.transition(t).has_self_loop());
        let m1 = net.fire(&net.initial_marking(), t).unwrap();
        assert_eq!(m1.tokens(p), 1, "self-loop token untouched");
        assert_eq!(m1.tokens(q), 1);
    }

    #[test]
    fn unknown_place_rejected() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let bogus = PlaceId::from_index(7);
        assert_eq!(
            net.add_transition([p, bogus], "a", []),
            Err(PetriError::UnknownPlace(7))
        );
    }

    #[test]
    fn degenerate_transition_rejected() {
        let mut net: PetriNet<&str> = PetriNet::new();
        assert_eq!(
            net.add_transition([], "a", []),
            Err(PetriError::DegenerateTransition)
        );
    }

    #[test]
    fn alphabet_tracks_labels_and_declarations() {
        let (mut net, ..) = two_cycle();
        assert!(net.alphabet_contains(&"a"));
        assert!(net.alphabet_contains(&"b"));
        net.declare_label("c");
        assert!(net.alphabet_contains(&"c"));
        net.undeclare_label(&"c");
        assert!(!net.alphabet_contains(&"c"));
        // Undeclared labels stay interned: their symbols survive.
        assert!(net.sym_of(&"c").is_some());
        assert_eq!(net.alphabet(), BTreeSet::from(["a", "b"]));
    }

    #[test]
    fn symbols_are_dense_and_resolvable() {
        let (net, _, _, a, b) = two_cycle();
        let sa = net.transition(a).sym();
        let sb = net.transition(b).sym();
        assert_ne!(sa, sb);
        assert_eq!(net.resolve(sa), &"a");
        assert_eq!(net.label_of(b), &"b");
        assert_eq!(net.sym_of(&"a"), Some(sa));
        assert_eq!(
            net.transitions_with_sym(sa).collect::<Vec<_>>(),
            net.transitions_with_label(&"a").collect::<Vec<_>>()
        );
    }

    #[test]
    fn add_transition_sym_rejects_foreign_symbol() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        assert!(net
            .add_transition_sym([p], Sym::from_index(5), [q])
            .is_err());
        let s = net.intern_label(&"a");
        let t = net.add_transition_sym([p], s, [q]).unwrap();
        assert_eq!(net.label_of(t), &"a");
        assert!(net.alphabet_contains(&"a"));
    }

    #[test]
    fn equality_is_label_aware_across_interners() {
        // Same net, labels interned in different orders.
        let mut n1: PetriNet<&str> = PetriNet::new();
        let mut n2: PetriNet<&str> = PetriNet::new();
        n2.declare_label("b"); // "b" gets symbol 0 in n2, 1 in n1
        for net in [&mut n1, &mut n2] {
            let p = net.add_place("p");
            let q = net.add_place("q");
            net.add_transition([p], "a", [q]).unwrap();
            net.add_transition([q], "b", [p]).unwrap();
            net.set_initial(p, 1);
        }
        assert_ne!(n1.sym_of(&"b"), n2.sym_of(&"b"));
        assert_eq!(n1, n2);
        assert!(n1.same_structure(&n2));
        n2.add_transition([PlaceId::from_index(0)], "c", [PlaceId::from_index(1)])
            .unwrap();
        assert_ne!(n1, n2);
    }

    #[test]
    fn producers_and_consumers() {
        let (net, p, q, a, b) = two_cycle();
        assert_eq!(net.producers(q), vec![a]);
        assert_eq!(net.consumers(q), vec![b]);
        assert_eq!(net.producers(p), vec![b]);
        assert_eq!(net.consumers(p), vec![a]);
    }

    #[test]
    fn without_transitions_preserves_places() {
        let (net, _, _, a, _) = two_cycle();
        let pruned = net.without_transitions(&BTreeSet::from([a]));
        assert_eq!(pruned.place_count(), 2);
        assert_eq!(pruned.transition_count(), 1);
        let (only, _) = pruned.transitions().next().unwrap();
        assert_eq!(pruned.label_of(only), &"b");
        // label "a" stays in the alphabet
        assert!(pruned.alphabet_contains(&"a"));
    }

    #[test]
    fn without_isolated_places_drops_unused() {
        let (mut net, ..) = two_cycle();
        net.add_place("orphan");
        let (pruned, map) = net.without_isolated_places();
        assert_eq!(pruned.place_count(), 2);
        assert_eq!(map.len(), 2);
        pruned.validate().unwrap();
    }

    #[test]
    fn isolated_but_marked_place_is_kept() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        net.set_initial(p, 1);
        let (pruned, _) = net.without_isolated_places();
        assert_eq!(pruned.place_count(), 1);
    }

    #[test]
    fn map_labels_can_collapse() {
        let (net, ..) = two_cycle();
        let mapped = net.map_labels(|_| "x");
        assert_eq!(mapped.alphabet().len(), 1);
        assert_eq!(mapped.transition_count(), 2);
        mapped.validate().unwrap();
    }

    #[test]
    fn validate_passes_on_well_formed() {
        let (net, ..) = two_cycle();
        net.validate().unwrap();
    }

    #[test]
    fn display_mentions_structure() {
        let (net, ..) = two_cycle();
        let s = net.to_string();
        assert!(s.contains("2 places"));
        assert!(s.contains("--a-->"));
        assert!(s.contains("M0"));
    }

    #[test]
    fn net_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PetriNet<String>>();
    }
}
