//! Explicit reachability graphs (exploration kernel v3).
//!
//! The reachability graph `RG(N)` (Section 2.1 of the paper) is the
//! transitive closure of the next-state relation: nodes are reachable
//! markings, edges are labeled by the transition fired. The kernel builds
//! it breadth-first under a configurable state budget so that analyses
//! never silently diverge on unbounded nets.
//!
//! Three layers make the build fast:
//!
//! 1. [`MarkingStore`] — every discovered marking is interned once into a
//!    flat arena; the open-addressing index stores only `(hash, id)`
//!    pairs, so there is no per-state allocation and no duplicate key
//!    storage.
//! 2. [`CompiledNet`] — the firing rule in
//!    CSR form with a place → consumers adjacency, so each state only
//!    re-tests transitions whose preset touches a marked place instead of
//!    scanning all of `transition_ids()`.
//! 3. An opt-in deterministic **lock-free parallel explorer**
//!    ([`ReachabilityOptions::threads`]): one shared open-addressing
//!    index claimed slot-by-slot with atomic CAS, per-worker deques with
//!    work stealing (no rounds, no barriers), cooperative termination
//!    via a global in-flight counter, and a canonical renumbering pass
//!    that makes the graph **bit-identical for every thread count** (and
//!    to the sequential explorer). See DESIGN.md §5f.
//!
//! For state spaces whose resident marking set outgrows RAM there is a
//! fourth layer: [`reachability_bounded_spilled`] runs the sequential
//! kernel over a [`SpillStore`], whose delta-encoded segments page out to
//! an unlinked temp file under a configurable resident-byte ceiling.
//!
//! The pre-arena explorer survives as
//! [`PetriNet::reachability_bounded_legacy`], the reference
//! implementation the equivalence property suite differentiates against.

use crate::budget::{Bounded, Budget, Meter};
use crate::compiled::{CandidateScratch, CompiledNet, StubbornScratch};
use crate::error::PetriError;
use crate::graph::DiGraph;
use crate::label::Label;
use crate::marking::Marking;
use crate::net::{PetriNet, PlaceId, TransitionId};
use crate::store::{MarkingStore, SpillConfig, SpillStats, SpillStore};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Identifier of a state (reachable marking) in a [`ReachabilityGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(u32);

impl StateId {
    /// The arena index of this state.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `StateId` from an arena index.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::IndexOverflow`] when the index does not fit
    /// the 32-bit id space.
    pub fn try_from_index(i: usize) -> Result<Self, PetriError> {
        match u32::try_from(i) {
            Ok(v) => Ok(StateId(v)),
            Err(_) => Err(PetriError::IndexOverflow { index: i }),
        }
    }

    /// Builds a `StateId` from an arena index.
    ///
    /// # Panics
    ///
    /// Panics if the index exceeds the 32-bit id space; use
    /// [`StateId::try_from_index`] on paths where the index is not known
    /// to be in range.
    pub fn from_index(i: usize) -> Self {
        match Self::try_from_index(i) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Options controlling reachability exploration.
#[derive(Clone, Debug)]
pub struct ReachabilityOptions {
    /// Maximum number of distinct states to discover before giving up with
    /// [`PetriError::StateBudgetExceeded`]. Defaults to
    /// [`crate::budget::DEFAULT_MAX_STATES`], the workspace-wide state
    /// budget shared with [`Budget`].
    pub max_states: usize,
    /// Number of exploration worker threads. `0` and `1` both mean
    /// sequential; larger values opt into the sharded parallel BFS, whose
    /// output is bit-identical to the sequential explorer's for every
    /// thread count. Defaults to `1`.
    pub threads: usize,
    /// Opt into stubborn-set partial-order reduction. The reduced graph
    /// contains **every deadlock marking** of the full graph but in
    /// general fewer states and interleavings, so it is valid for
    /// deadlock-style queries only — language, liveness, and safety must
    /// explore unreduced. Forces sequential exploration (the sharded BFS
    /// never runs reduced). Defaults to `false`.
    pub stubborn: bool,
}

impl Default for ReachabilityOptions {
    fn default() -> Self {
        ReachabilityOptions {
            max_states: crate::budget::DEFAULT_MAX_STATES,
            threads: 1,
            stubborn: false,
        }
    }
}

impl ReachabilityOptions {
    /// Options with an explicit state budget (sequential).
    pub fn with_max_states(max_states: usize) -> Self {
        ReachabilityOptions {
            max_states,
            threads: 1,
            stubborn: false,
        }
    }

    /// Returns the options with the worker-thread count replaced.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns the options with stubborn-set reduction toggled.
    pub fn with_stubborn(mut self, stubborn: bool) -> Self {
        self.stubborn = stubborn;
        self
    }
}

impl From<Budget> for ReachabilityOptions {
    /// Projects a [`Budget`] onto the options type (only the state cap is
    /// representable; exploration stays sequential and unreduced).
    fn from(b: Budget) -> Self {
        ReachabilityOptions {
            max_states: b.max_states,
            threads: 1,
            stubborn: false,
        }
    }
}

impl From<&Budget> for ReachabilityOptions {
    fn from(b: &Budget) -> Self {
        ReachabilityOptions::from(*b)
    }
}

/// The reachability graph of a net: every reachable marking plus the
/// labeled next-state edges between them.
///
/// Markings live interned in a [`MarkingStore`] arena and edges in one
/// CSR array, so the graph's resident size is dominated by
/// `state_count × place_count` `u32`s rather than per-state heap
/// allocations.
///
/// # Example
///
/// ```
/// use cpn_petri::{PetriNet, ReachabilityOptions};
///
/// # fn main() -> Result<(), cpn_petri::PetriError> {
/// let mut net: PetriNet<&str> = PetriNet::new();
/// let p = net.add_place("p");
/// let q = net.add_place("q");
/// let r = net.add_place("r");
/// net.add_transition([p], "a", [q])?;
/// net.add_transition([p], "b", [r])?;
/// net.set_initial(p, 1);
/// let rg = net.reachability(&ReachabilityOptions::default())?;
/// assert_eq!(rg.state_count(), 3);
/// assert_eq!(rg.edges(rg.initial_state()).len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ReachabilityGraph {
    store: MarkingStore,
    /// All edges, grouped by source state (CSR payload).
    edge_data: Vec<(TransitionId, StateId)>,
    /// CSR offsets: edges of state `s` are
    /// `edge_data[edge_off[s]..edge_off[s+1]]`.
    edge_off: Vec<usize>,
    initial: StateId,
}

impl ReachabilityGraph {
    /// Number of reachable states.
    pub fn state_count(&self) -> usize {
        self.store.len()
    }

    /// Total number of edges (O(1): the CSR payload length is cached by
    /// construction).
    pub fn edge_count(&self) -> usize {
        self.edge_data.len()
    }

    /// The state corresponding to the initial marking.
    pub fn initial_state(&self) -> StateId {
        self.initial
    }

    /// The marking of a state, materialized from the arena.
    ///
    /// For allocation-free access use [`ReachabilityGraph::marking_slice`].
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn marking(&self, s: StateId) -> Marking {
        Marking::from_counts(self.store.get(s.index()).to_vec())
    }

    /// The raw per-place token counts of a state, borrowed straight from
    /// the arena (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn marking_slice(&self, s: StateId) -> &[u32] {
        self.store.get(s.index())
    }

    /// Outgoing edges of a state.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn edges(&self, s: StateId) -> &[(TransitionId, StateId)] {
        &self.edge_data[self.edge_off[s.index()]..self.edge_off[s.index() + 1]]
    }

    /// Iterates over all state ids.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> {
        (0..self.store.len()).map(StateId::from_index)
    }

    /// Iterates over all edges as `(source, transition, target)`.
    pub fn all_edges(&self) -> impl Iterator<Item = (StateId, TransitionId, StateId)> + '_ {
        self.state_ids()
            .flat_map(move |s| self.edges(s).iter().map(move |&(t, to)| (s, t, to)))
    }

    /// Looks up the state with the given marking in O(1) via the arena's
    /// hash index.
    pub fn find_state(&self, m: &Marking) -> Option<StateId> {
        if m.len() != self.store.stride() {
            return None;
        }
        self.store.find(m.as_slice()).map(StateId)
    }

    /// The underlying directed graph over state indices (labels dropped).
    pub fn as_digraph(&self) -> DiGraph {
        let mut g = DiGraph::new(self.state_count());
        for (from, _, to) in self.all_edges() {
            g.add_edge(from.index(), to.index());
        }
        g
    }

    /// States with no outgoing edges (deadlocks).
    pub fn deadlock_states(&self) -> Vec<StateId> {
        self.state_ids()
            .filter(|s| self.edge_off[s.index()] == self.edge_off[s.index() + 1])
            .collect()
    }

    /// The largest token count any place reaches in any state: the bound
    /// `k` for which the net is `k`-bounded (given a complete graph).
    pub fn token_bound(&self) -> u32 {
        self.store
            .iter()
            .flat_map(|m| m.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// Bytes resident in the marking arena and its hash index — the
    /// counter reported as `peak_resident_marking_bytes` in
    /// `BENCH_explore.json`.
    pub fn resident_marking_bytes(&self) -> usize {
        self.store.resident_bytes()
    }
}

impl<L: Label> PetriNet<L> {
    /// Builds the reachability graph of the net breadth-first.
    ///
    /// With `options.threads > 1` the sharded parallel explorer is used;
    /// its result is bit-identical to the sequential one.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::StateBudgetExceeded`] when more than
    /// `options.max_states` distinct markings are discovered — either the
    /// net is unbounded (use
    /// [`coverability`](crate::coverability::CoverabilityTree) to decide)
    /// or the budget is too small for its finite state space.
    pub fn reachability(
        &self,
        options: &ReachabilityOptions,
    ) -> Result<ReachabilityGraph, PetriError> {
        let budget = Budget::states(options.max_states);
        let built = if options.stubborn {
            self.reachability_stubborn_bounded(&budget, &[])
        } else if options.threads > 1 {
            self.reachability_bounded_parallel(&budget, options.threads)
        } else {
            self.reachability_bounded(&budget)
        };
        match built {
            Bounded::Complete(rg) => Ok(rg),
            Bounded::Exhausted { .. } => Err(PetriError::StateBudgetExceeded {
                budget: options.max_states,
            }),
        }
    }

    /// Builds the reachability graph breadth-first under a [`Budget`],
    /// degrading gracefully instead of erroring.
    ///
    /// When the budget runs out, exploration stops immediately and the
    /// partial graph discovered so far is returned in
    /// [`Bounded::Exhausted`] together with exploration statistics. The
    /// partial graph is a sound prefix: every state and edge in it is
    /// genuinely reachable, but states on the unexpanded frontier may be
    /// missing outgoing edges.
    pub fn reachability_bounded(&self, budget: &Budget) -> Bounded<ReachabilityGraph> {
        explore_compiled(&self.compile(), self.initial_marking().as_slice(), budget)
    }

    /// Builds a **stubborn-set reduced** reachability graph breadth-first
    /// under a [`Budget`].
    ///
    /// At every marking only a stubborn subset of the enabled transitions
    /// is fired ([`CompiledNet::stubborn_enabled`]), which preserves:
    ///
    /// * **every deadlock marking** of the full graph, and
    /// * every reachable valuation of the `watched` places — any
    ///   transition touching a watched place is seeded into every
    ///   stubborn set, so a predicate over `watched` holds somewhere in
    ///   the full graph iff it holds somewhere in the reduced one (the
    ///   attractor/up-set reachability argument). Witness markings for
    ///   such a predicate are genuine but may differ from the full
    ///   graph's.
    ///
    /// Everything else (state counts, languages, token bounds on
    /// unwatched places, liveness) is generally under-approximated.
    pub fn reachability_stubborn_bounded(
        &self,
        budget: &Budget,
        watched: &[PlaceId],
    ) -> Bounded<ReachabilityGraph> {
        let compiled = self.compile();
        let seeds = stubborn_seeds(&compiled, watched);
        explore_stubborn(&compiled, self.initial_marking().as_slice(), budget, &seeds)
    }

    /// Builds the reachability graph with `threads` lock-free workers.
    ///
    /// Discovered markings are published to a single shared CAS-claimed
    /// index, the frontier is traded through work-stealing deques, and a
    /// final canonical BFS-order renumbering pass makes the result
    /// **bit-identical** to [`PetriNet::reachability_bounded`] for every
    /// thread count. When the budget is exhausted mid-flight, the
    /// partial exploration is discarded and the sequential explorer
    /// re-runs under the same budget, so `Exhausted` prefixes and
    /// statistics are also identical.
    pub fn reachability_bounded_parallel(
        &self,
        budget: &Budget,
        threads: usize,
    ) -> Bounded<ReachabilityGraph> {
        reachability_bounded_parallel_compiled(
            &self.compile(),
            self.initial_marking().as_slice(),
            budget,
            threads,
        )
    }

    /// The pre-arena explorer (interpreted firing rule, `Vec<Marking>` +
    /// `HashMap` double storage), kept as the reference implementation
    /// for the kernel-equivalence property suite and the memory baseline
    /// of the `explore_kernel` bench. Semantically identical to
    /// [`PetriNet::reachability_bounded`], only slower and hungrier.
    pub fn reachability_bounded_legacy(&self, budget: &Budget) -> Bounded<ReachabilityGraph> {
        let mut meter = Meter::new(budget);
        let initial = self.initial_marking();
        let mut states: Vec<Marking> = vec![initial.clone()];
        let mut index: HashMap<Marking, StateId> = HashMap::new();
        index.insert(initial, StateId(0));
        let mut edges: Vec<Vec<(TransitionId, StateId)>> = vec![Vec::new()];
        // The initial state always exists, even under a zero budget.
        meter.take_state();

        let mut frontier = 0usize;
        'explore: while frontier < states.len() {
            if meter.should_stop() {
                break 'explore;
            }
            let marking = states[frontier].clone();
            for t in self.transition_ids() {
                if !self.is_enabled(&marking, t) {
                    continue;
                }
                if !meter.take_transition() {
                    break 'explore;
                }
                let Ok(next) = self.fire(&marking, t) else {
                    // Unreachable for an enabled transition; skip rather
                    // than panic so the builder stays total.
                    continue;
                };
                let target = match index.get(&next) {
                    Some(&existing) => existing,
                    None => {
                        if !meter.take_state() {
                            break 'explore;
                        }
                        let new_id = StateId::from_index(states.len());
                        states.push(next.clone());
                        edges.push(Vec::new());
                        index.insert(next, new_id);
                        new_id
                    }
                };
                edges[frontier].push((t, target));
            }
            frontier += 1;
        }

        // Convert to the arena-backed representation (insertion order is
        // already canonical BFS order).
        let mut store = MarkingStore::with_capacity(self.place_count(), states.len());
        for m in &states {
            store.intern(m.as_slice());
        }
        let mut edge_off = Vec::with_capacity(states.len() + 1);
        let mut edge_data = Vec::new();
        edge_off.push(0);
        for outs in &edges {
            edge_data.extend_from_slice(outs);
            edge_off.push(edge_data.len());
        }
        meter.finish(ReachabilityGraph {
            store,
            edge_data,
            edge_off,
            initial: StateId(0),
        })
    }
}

/// Explores a pre-compiled net under a [`Budget`], producing the same
/// graph as [`PetriNet::reachability_bounded`] on the source net.
///
/// The entry point for callers that amortize [`PetriNet::compile`]
/// across many explorations — e.g. the `cpn-serve` session cache, which
/// keys compiled nets by document content hash and re-explores them
/// under different budgets per request.
pub fn reachability_bounded_compiled(
    compiled: &CompiledNet,
    m0: &[u32],
    budget: &Budget,
) -> Bounded<ReachabilityGraph> {
    explore_compiled(compiled, m0, budget)
}

/// [`PetriNet::reachability_bounded_parallel`] over a pre-compiled net —
/// the multi-threaded sibling of [`reachability_bounded_compiled`], used
/// by `cpn-serve` when a request carries `threads > 1`.
///
/// `threads` is clamped to `1..=64`. One thread (or a degenerate budget)
/// runs the sequential kernel directly; any budget or table exhaustion
/// inside the lock-free kernel falls back to a sequential replay under
/// the same budget, so `Exhausted` results are deterministic too.
pub fn reachability_bounded_parallel_compiled(
    compiled: &CompiledNet,
    m0: &[u32],
    budget: &Budget,
    threads: usize,
) -> Bounded<ReachabilityGraph> {
    let threads = threads.clamp(1, 64);
    if threads == 1 || budget.max_states < 2 {
        return explore_compiled(compiled, m0, budget);
    }
    match explore_parallel(compiled, m0, budget, threads) {
        Some(rg) => Bounded::Complete(rg),
        // Budget hit: replay sequentially for a deterministic prefix.
        None => explore_compiled(compiled, m0, budget),
    }
}

// ----------------------------------------------------------------------
// Sequential compiled explorer
// ----------------------------------------------------------------------

fn explore_compiled(
    compiled: &CompiledNet,
    m0: &[u32],
    budget: &Budget,
) -> Bounded<ReachabilityGraph> {
    let mut meter = Meter::new(budget);
    let stride = compiled.place_count();
    // Pre-size the probe table from the state budget so big bounded
    // explorations skip the rehash cascade (store.rs, budget hint).
    let mut store = MarkingStore::with_state_budget(stride, budget.max_states);
    store.intern(m0);
    // The initial state always exists, even under a zero budget.
    meter.take_state();

    let mut edge_data: Vec<(TransitionId, StateId)> = Vec::new();
    let mut edge_off: Vec<usize> = vec![0];
    let mut cur: Vec<u32> = Vec::with_capacity(stride);
    let mut cands: Vec<u32> = Vec::new();
    let mut scratch = CandidateScratch::new(compiled.transition_count());

    let mut frontier = 0usize;
    'explore: while frontier < store.len() {
        // Per-state deadline/cancel poll (coarse: real wall-clock reads
        // happen every POLL_INTERVAL ticks inside the meter).
        if meter.should_stop() {
            break 'explore;
        }
        cur.clear();
        cur.extend_from_slice(store.get(frontier));
        let cur_hash = store.hash_of(frontier);
        compiled.enabled_candidates(&cur, &mut scratch, &mut cands);
        for &t in &cands {
            if !compiled.is_enabled(&cur, t) {
                continue;
            }
            if !meter.take_transition() {
                break 'explore;
            }
            // Fire in place with a delta-updated hash, probe/insert the
            // successor straight out of `cur`, then revert — no
            // per-successor copy or full-stride rehash.
            let hash = compiled.apply_hashed(&mut cur, cur_hash, t);
            debug_assert_eq!(hash, MarkingStore::hash_slice(&cur));
            let found = store.find_hashed(&cur, hash);
            let target = match found {
                Some(id) => id,
                None => {
                    if !meter.take_state() {
                        compiled.unapply(&mut cur, t);
                        break 'explore;
                    }
                    match store.insert_new_hashed(&cur, hash) {
                        Ok(id) => id,
                        Err(_) => {
                            compiled.unapply(&mut cur, t);
                            break 'explore;
                        }
                    }
                }
            };
            compiled.unapply(&mut cur, t);
            edge_data.push((TransitionId::from_index(t as usize), StateId(target)));
        }
        edge_off.push(edge_data.len());
        frontier += 1;
    }
    // On early exit the offsets of unexpanded (and the partially
    // expanded) states still need closing so the CSR stays well-formed.
    while edge_off.len() <= store.len() {
        edge_off.push(edge_data.len());
    }

    meter.finish(ReachabilityGraph {
        store,
        edge_data,
        edge_off,
        initial: StateId(0),
    })
}

// ----------------------------------------------------------------------
// Stubborn-set reduced explorer
// ----------------------------------------------------------------------

/// Transitions adjacent to a watched place (take **or** give): the seed
/// set forcing every stubborn set to contain all transitions that can
/// change a watched valuation. Sorted ascending.
fn stubborn_seeds(compiled: &CompiledNet, watched: &[PlaceId]) -> Vec<u32> {
    if watched.is_empty() {
        return Vec::new();
    }
    let mut mark = vec![false; compiled.place_count()];
    for p in watched {
        mark[p.index()] = true;
    }
    let mut seeds = Vec::new();
    for t in 0..compiled.transition_count() as u32 {
        let touches = compiled
            .take_set(t)
            .iter()
            .chain(compiled.give_set(t))
            .any(|&p| mark[p as usize]);
        if touches {
            seeds.push(t);
        }
    }
    seeds
}

/// [`explore_compiled`] with the candidate set replaced by the stubborn
/// filter; everything else (arena, delta hashing, meter accounting, CSR
/// closing) is identical.
fn explore_stubborn(
    compiled: &CompiledNet,
    m0: &[u32],
    budget: &Budget,
    seeds: &[u32],
) -> Bounded<ReachabilityGraph> {
    let mut meter = Meter::new(budget);
    let stride = compiled.place_count();
    let mut store = MarkingStore::with_state_budget(stride, budget.max_states);
    store.intern(m0);
    meter.take_state();

    let mut edge_data: Vec<(TransitionId, StateId)> = Vec::new();
    let mut edge_off: Vec<usize> = vec![0];
    let mut cur: Vec<u32> = Vec::with_capacity(stride);
    let mut cands: Vec<u32> = Vec::new();
    let mut scratch = StubbornScratch::new(compiled.transition_count());

    let mut frontier = 0usize;
    'explore: while frontier < store.len() {
        if meter.should_stop() {
            break 'explore;
        }
        cur.clear();
        cur.extend_from_slice(store.get(frontier));
        let cur_hash = store.hash_of(frontier);
        compiled.stubborn_enabled(&cur, seeds, &mut scratch, &mut cands);
        for &t in &cands {
            if !meter.take_transition() {
                break 'explore;
            }
            let hash = compiled.apply_hashed(&mut cur, cur_hash, t);
            debug_assert_eq!(hash, MarkingStore::hash_slice(&cur));
            let found = store.find_hashed(&cur, hash);
            let target = match found {
                Some(id) => id,
                None => {
                    if !meter.take_state() {
                        compiled.unapply(&mut cur, t);
                        break 'explore;
                    }
                    match store.insert_new_hashed(&cur, hash) {
                        Ok(id) => id,
                        Err(_) => {
                            compiled.unapply(&mut cur, t);
                            break 'explore;
                        }
                    }
                }
            };
            compiled.unapply(&mut cur, t);
            edge_data.push((TransitionId::from_index(t as usize), StateId(target)));
        }
        edge_off.push(edge_data.len());
        frontier += 1;
    }
    while edge_off.len() <= store.len() {
        edge_off.push(edge_data.len());
    }

    meter.finish(ReachabilityGraph {
        store,
        edge_data,
        edge_off,
        initial: StateId(0),
    })
}

// ----------------------------------------------------------------------
// Out-of-core explorer over the spillable tiered store
// ----------------------------------------------------------------------

/// A reachability graph whose markings live in a [`SpillStore`]: resident
/// segments are delta-encoded, cold ones are paged out to an unlinked
/// temp file, and only the hash index stays pinned in memory.
///
/// State ids, edge order, and counts are **identical** to the resident
/// [`ReachabilityGraph`] the sequential kernel would build — the store
/// tier changes where markings live, not which states exist. Marking
/// access takes `&mut self` because reading a spilled row may page its
/// segment back in (and evict another).
#[derive(Debug)]
pub struct SpilledReachability {
    store: SpillStore,
    edge_data: Vec<(TransitionId, StateId)>,
    edge_off: Vec<usize>,
    initial: StateId,
}

impl SpilledReachability {
    /// Number of reachable states.
    pub fn state_count(&self) -> usize {
        self.store.len()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_data.len()
    }

    /// The state corresponding to the initial marking.
    pub fn initial_state(&self) -> StateId {
        self.initial
    }

    /// Decodes the marking of a state into `out` (cleared first), paging
    /// its segment in if it was spilled.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::SpillIo`] when the page-in fails.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn marking_into(&mut self, s: StateId, out: &mut Vec<u32>) -> Result<(), PetriError> {
        self.store.get_into(s.index(), out)
    }

    /// Outgoing edges of a state.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn edges(&self, s: StateId) -> &[(TransitionId, StateId)] {
        &self.edge_data[self.edge_off[s.index()]..self.edge_off[s.index() + 1]]
    }

    /// Looks up a marking's state id, paging candidate segments in as
    /// needed for confirmation.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::SpillIo`] when a page-in fails.
    pub fn find_state(&mut self, m: &Marking) -> Result<Option<StateId>, PetriError> {
        if m.len() != self.store.stride() {
            return Ok(None);
        }
        let hash = MarkingStore::hash_slice(m.as_slice());
        Ok(self.store.find_hashed(m.as_slice(), hash)?.map(StateId))
    }

    /// States with no outgoing edges (deadlocks).
    pub fn deadlock_states(&self) -> Vec<StateId> {
        (0..self.store.len())
            .filter(|&i| self.edge_off[i] == self.edge_off[i + 1])
            .map(StateId::from_index)
            .collect()
    }

    /// The largest token count any place reaches in any state (tracked
    /// incrementally at insert, so no decode pass is needed).
    pub fn token_bound(&self) -> u32 {
        self.store.max_word()
    }

    /// Spill-tier counters: segment totals, page-in/out traffic, bytes on
    /// disk, and the resident ceiling.
    pub fn spill_stats(&self) -> SpillStats {
        self.store.stats()
    }

    /// Bytes currently resident (index, hashes, and in-memory segments).
    pub fn resident_bytes(&self) -> usize {
        self.store.resident_bytes()
    }
}

/// Sequential BFS over a [`SpillStore`]: the out-of-core sibling of
/// [`reachability_bounded_compiled`], for state spaces whose resident
/// marking set outgrows RAM.
///
/// Visits states in the exact order of the resident kernel, so ids and
/// edges match byte-for-byte; only the marking storage tier differs. A
/// spill i/o failure is treated like budget exhaustion — the prefix built
/// so far is sound and is returned as [`Bounded::Exhausted`].
pub fn reachability_bounded_spilled(
    compiled: &CompiledNet,
    m0: &[u32],
    budget: &Budget,
    config: &SpillConfig,
) -> Bounded<SpilledReachability> {
    let mut meter = Meter::new(budget);
    let stride = compiled.place_count();
    let hint = if budget.max_states < usize::MAX / 2 {
        budget.max_states + 1
    } else {
        0
    };
    let mut store = SpillStore::new(stride, config, hint);
    let h0 = MarkingStore::hash_slice(m0);
    match store.insert_new_hashed(m0, h0) {
        Ok(_) => {}
        Err(e) => panic!("spill store rejected the initial marking: {e}"),
    }
    // The initial state always exists, even under a zero budget.
    meter.take_state();

    let mut edge_data: Vec<(TransitionId, StateId)> = Vec::new();
    let mut edge_off: Vec<usize> = vec![0];
    let mut cur: Vec<u32> = Vec::with_capacity(stride);
    let mut cands: Vec<u32> = Vec::new();
    let mut scratch = CandidateScratch::new(compiled.transition_count());

    let mut frontier = 0usize;
    'explore: while frontier < store.len() {
        if meter.should_stop() {
            break 'explore;
        }
        if store.get_into(frontier, &mut cur).is_err() {
            // Disk trouble: stop with the sound prefix built so far.
            break 'explore;
        }
        let cur_hash = MarkingStore::hash_slice(&cur);
        compiled.enabled_candidates(&cur, &mut scratch, &mut cands);
        for &t in &cands {
            if !compiled.is_enabled(&cur, t) {
                continue;
            }
            if !meter.take_transition() {
                break 'explore;
            }
            let hash = compiled.apply_hashed(&mut cur, cur_hash, t);
            let found = match store.find_hashed(&cur, hash) {
                Ok(found) => found,
                Err(_) => {
                    compiled.unapply(&mut cur, t);
                    break 'explore;
                }
            };
            let target = match found {
                Some(id) => id,
                None => {
                    if !meter.take_state() {
                        compiled.unapply(&mut cur, t);
                        break 'explore;
                    }
                    match store.insert_new_hashed(&cur, hash) {
                        Ok(id) => id,
                        Err(_) => {
                            compiled.unapply(&mut cur, t);
                            break 'explore;
                        }
                    }
                }
            };
            compiled.unapply(&mut cur, t);
            edge_data.push((TransitionId::from_index(t as usize), StateId(target)));
        }
        edge_off.push(edge_data.len());
        frontier += 1;
    }
    while edge_off.len() <= store.len() {
        edge_off.push(edge_data.len());
    }

    meter.finish(SpilledReachability {
        store,
        edge_data,
        edge_off,
        initial: StateId(0),
    })
}

// ----------------------------------------------------------------------
// Lock-free parallel BFS (kernel v3)
// ----------------------------------------------------------------------
//
// One shared open-addressing table, claimed slot-by-slot with CAS; no
// rounds, no barriers, no mailboxes. Each worker appends the markings it
// discovers to its own segmented arena (stable addresses, readable by
// every worker), publishes them by CAS-ing a packed entry into the
// table, and trades frontier work through per-worker steal deques. A
// global in-flight counter detects termination. A final renumbering pass
// replays the sequential discovery recurrence over the logged edges, so
// the output is byte-identical to `explore_compiled` for any thread
// count. See DESIGN.md §5f.

/// Empty table slot.
const EMPTY_SLOT: u64 = 0;
/// Published-entry marker (keeps every live entry nonzero).
const PRESENT: u64 = 1 << 63;
/// Entry layout below the marker: 23 hash tag bits, 8 worker bits,
/// 32 local-id bits.
const TAG_SHIFT: u32 = 40;
const TAG_BITS: u64 = 0x7F_FFFF;
const TAG_FIELD: u64 = TAG_BITS << TAG_SHIFT;
const GID_MASK: u64 = (1 << TAG_SHIFT) - 1;
/// Hard ceiling on the shared table (2^28 slots = 2 GiB of index).
const PAR_SLOTS_CAP: usize = 1 << 28;
/// Floor so tiny explorations don't immediately exhaust the 7/8 load cap.
const PAR_SLOTS_MIN: usize = 1 << 10;

/// Packs a worker-local state reference: `(worker << 32) | local`.
#[inline]
fn pack(worker: usize, local: u32) -> u64 {
    ((worker as u64) << 32) | u64::from(local)
}

#[inline]
fn unpack(packed: u64) -> (usize, u32) {
    ((packed >> 32) as usize, packed as u32)
}

/// The table entry publishing marking `(worker, local)` under `hash`.
/// The tag reuses the hash's top 23 bits — disjoint from the probe bits
/// (low `log2(slots) ≤ 28`), so tag collisions are independent of slot
/// clustering.
#[inline]
fn make_entry(hash: u64, worker: usize, local: u32) -> u64 {
    PRESENT | (((hash >> 41) & TAG_BITS) << TAG_SHIFT) | pack(worker, local)
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One worker's append-only marking arena. Rows live in fixed-size
/// segments allocated on demand through `OnceLock`, so a row's address
/// never moves after publication and other workers can read it without
/// locks: the publishing CAS (Release) on the table entry orders the
/// row's Relaxed stores before any reader that Acquire-loads the entry.
struct WorkerArena {
    stride: usize,
    seg_rows: usize,
    marks: Vec<OnceLock<Box<[AtomicU32]>>>,
    hashes: Vec<OnceLock<Box<[AtomicU64]>>>,
}

impl WorkerArena {
    fn new(stride: usize, cap_states: usize) -> Self {
        // ~4 MiB segments, clamped so huge strides still get a few rows
        // per segment and small ones don't balloon the pointer tables.
        let seg_rows = ((1usize << 20) / stride.max(1)).clamp(64, 8192);
        let segs = cap_states / seg_rows + 2;
        WorkerArena {
            stride,
            seg_rows,
            marks: (0..segs).map(|_| OnceLock::new()).collect(),
            hashes: (0..segs).map(|_| OnceLock::new()).collect(),
        }
    }

    #[inline]
    fn split(&self, local: u32) -> (usize, usize) {
        (
            local as usize / self.seg_rows,
            local as usize % self.seg_rows,
        )
    }

    /// Owner-side tentative append: writes row `local` before it is
    /// published. Safe to overwrite (a lost insert race reuses the row).
    fn write_row(&self, local: u32, m: &[u32], hash: u64) {
        let (s, r) = self.split(local);
        let seg = self.marks[s].get_or_init(|| {
            (0..self.seg_rows * self.stride)
                .map(|_| AtomicU32::new(0))
                .collect()
        });
        let hseg =
            self.hashes[s].get_or_init(|| (0..self.seg_rows).map(|_| AtomicU64::new(0)).collect());
        for (i, &w) in m.iter().enumerate() {
            seg[r * self.stride + i].store(w, Ordering::Relaxed);
        }
        hseg[r].store(hash, Ordering::Relaxed);
    }

    #[inline]
    fn row(&self, local: u32) -> &[AtomicU32] {
        let (s, r) = self.split(local);
        match self.marks[s].get() {
            Some(seg) => &seg[r * self.stride..(r + 1) * self.stride],
            None => unreachable!("arena row read before publication"),
        }
    }

    fn read_row_into(&self, local: u32, out: &mut Vec<u32>) {
        out.clear();
        out.extend(self.row(local).iter().map(|a| a.load(Ordering::Relaxed)));
    }

    #[inline]
    fn row_eq(&self, local: u32, m: &[u32]) -> bool {
        m.iter()
            .zip(self.row(local))
            .all(|(&w, a)| a.load(Ordering::Relaxed) == w)
    }

    #[inline]
    fn hash_of(&self, local: u32) -> u64 {
        let (s, r) = self.split(local);
        match self.hashes[s].get() {
            Some(h) => h[r].load(Ordering::Relaxed),
            None => unreachable!("arena hash read before publication"),
        }
    }
}

enum Probe {
    /// The marking is published under this packed `(worker, local)` gid.
    Found(u64),
    /// Not present; the probe stopped at this empty slot.
    Vacant(usize),
}

/// The shared lock-free insert-or-get index over all worker arenas.
struct SharedIndex<'a> {
    slots: &'a [AtomicU64],
    mask: usize,
    arenas: &'a [WorkerArena],
}

impl SharedIndex<'_> {
    /// Linear-probes from `slot`. Occupancy is monotone (slots fill,
    /// never empty), so a restarted probe never misses an insert that
    /// happened behind its scan frontier: every slot it passed was
    /// already occupied and stays occupied.
    fn probe_from(&self, mut slot: usize, m: &[u32], hash: u64) -> Probe {
        let tag = ((hash >> 41) & TAG_BITS) << TAG_SHIFT;
        loop {
            let e = self.slots[slot].load(Ordering::Acquire);
            if e == EMPTY_SLOT {
                return Probe::Vacant(slot);
            }
            if e & TAG_FIELD == tag {
                let (w, l) = unpack(e & GID_MASK);
                if self.arenas[w].hash_of(l) == hash && self.arenas[w].row_eq(l, m) {
                    return Probe::Found(e & GID_MASK);
                }
            }
            slot = (slot + 1) & self.mask;
        }
    }

    #[inline]
    fn find(&self, m: &[u32], hash: u64) -> Probe {
        self.probe_from((hash as usize) & self.mask, m, hash)
    }

    /// Races to claim the vacant `slot` for the tentative row
    /// `(me, local)`. Returns `None` when the claim won (the row is now
    /// published) or `Some(gid)` when a concurrent insert published an
    /// equal marking first (the tentative row must be rolled back).
    fn claim(&self, mut slot: usize, m: &[u32], hash: u64, me: usize, local: u32) -> Option<u64> {
        let entry = make_entry(hash, me, local);
        loop {
            // Release on success publishes the row's Relaxed stores to
            // every reader that Acquire-loads this entry.
            if self.slots[slot]
                .compare_exchange(EMPTY_SLOT, entry, Ordering::Release, Ordering::Acquire)
                .is_ok()
            {
                return None;
            }
            // Lost the slot: somebody filled it under us. Re-examine
            // from here — the newcomer may be our own marking.
            match self.probe_from(slot, m, hash) {
                Probe::Found(gid) => return Some(gid),
                Probe::Vacant(s) => slot = s,
            }
        }
    }
}

/// A worker's public deque plus an occupancy counter so peers can scan
/// for victims without taking the lock.
struct StealQueue {
    q: Mutex<VecDeque<u64>>,
    size: AtomicUsize,
}

/// One worker's exploration log: how many states it owns, which states
/// it expanded (in its own expansion order) and their edges, grouped
/// contiguously per expansion and ascending by transition id within one.
struct WorkerLog {
    len: u32,
    /// `(gid expanded, first index into edges)`; the range ends at the
    /// next entry's start (or `edges.len()`).
    srcs: Vec<(u64, usize)>,
    /// `(transition, target gid)`.
    edges: Vec<(u32, u64)>,
}

/// Pops local work, then the worker's own public deque, then steals half
/// of the first non-empty victim's deque (scanning round-robin from
/// `me + 1`). Returns `None` when no work is visible anywhere.
fn next_work(me: usize, local: &mut Vec<u64>, queues: &[StealQueue]) -> Option<u64> {
    if let Some(g) = local.pop() {
        return Some(g);
    }
    {
        let mut q = lock(&queues[me].q);
        if let Some(g) = q.pop_back() {
            queues[me].size.store(q.len(), Ordering::Relaxed);
            return Some(g);
        }
    }
    let n = queues.len();
    for d in 1..n {
        let v = (me + d) % n;
        if queues[v].size.load(Ordering::Relaxed) == 0 {
            continue;
        }
        let mut q = lock(&queues[v].q);
        let take = q.len().div_ceil(2);
        for _ in 0..take {
            if let Some(g) = q.pop_front() {
                local.push(g);
            }
        }
        queues[v].size.store(q.len(), Ordering::Relaxed);
        drop(q);
        if let Some(g) = local.pop() {
            return Some(g);
        }
    }
    None
}

/// Barrier-free work-stealing BFS. Returns `Some(graph)` on complete
/// exploration (already canonically renumbered), `None` when the budget
/// ran out or the fixed table filled (the caller replays sequentially
/// for a deterministic prefix).
fn explore_parallel(
    compiled: &CompiledNet,
    m0: &[u32],
    budget: &Budget,
    threads: usize,
) -> Option<ReachabilityGraph> {
    // An already-expired deadline or pre-cancelled token must produce
    // the same result as the sequential meter, whose very first tick
    // polls interrupts — so poll before any work happens. (Mid-flight
    // interrupts are wall-clock races either way; completes are always
    // the true graph.)
    if budget.interrupted().is_some() {
        return None;
    }
    let stride = compiled.place_count();
    let h0 = MarkingStore::hash_slice(m0);

    // Pre-size the shared table from the budget (it never grows — a
    // fixed table is what makes CAS claims sufficient). An effectively
    // infinite budget falls back to the workspace default; blowing past
    // the 7/8 load cap trips `stopped` and the sequential replay (which
    // does grow) takes over.
    let sizing = if budget.max_states < usize::MAX / 2 {
        budget.max_states + 1
    } else {
        crate::budget::DEFAULT_MAX_STATES
    };
    let slots = (sizing.min(PAR_SLOTS_CAP) * 8 / 7 + 1)
        .next_power_of_two()
        .clamp(PAR_SLOTS_MIN, PAR_SLOTS_CAP);
    let state_cap = budget.max_states.min(slots * 7 / 8);

    let slots_vec: Vec<AtomicU64> = (0..slots).map(|_| AtomicU64::new(EMPTY_SLOT)).collect();
    let arenas: Vec<WorkerArena> = (0..threads)
        .map(|_| WorkerArena::new(stride, state_cap))
        .collect();
    let index = SharedIndex {
        slots: &slots_vec,
        mask: slots - 1,
        arenas: &arenas,
    };

    // Seed: worker 0 owns the initial marking as (0, 0). Single-threaded
    // here, so a plain store publishes it.
    arenas[0].write_row(0, m0, h0);
    match index.find(m0, h0) {
        Probe::Vacant(s) => slots_vec[s].store(make_entry(h0, 0, 0), Ordering::Relaxed),
        Probe::Found(_) => unreachable!("empty table cannot contain the seed"),
    }

    let queues: Vec<StealQueue> = (0..threads)
        .map(|_| StealQueue {
            q: Mutex::new(VecDeque::new()),
            size: AtomicUsize::new(0),
        })
        .collect();
    // States discovered but not yet fully expanded. Insert increments
    // (before the state becomes visible), retiring an expansion
    // decrements; zero with empty queues means the wavefront is done.
    let in_flight = AtomicUsize::new(1);
    let states_used = AtomicUsize::new(1); // the seed's ticket
    let trans_used = AtomicUsize::new(0);
    let stopped = AtomicBool::new(false);

    let mut logs: Vec<WorkerLog> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for me in 0..threads {
            let index = &index;
            let arenas = &arenas;
            let queues = &queues;
            let in_flight = &in_flight;
            let states_used = &states_used;
            let trans_used = &trans_used;
            let stopped = &stopped;
            handles.push(scope.spawn(move || {
                let mut my_len: u32 = u32::from(me == 0);
                let mut local: Vec<u64> = if me == 0 {
                    vec![pack(0, 0)]
                } else {
                    Vec::new()
                };
                let mut srcs: Vec<(u64, usize)> = Vec::new();
                let mut edges: Vec<(u32, u64)> = Vec::new();
                let mut cur: Vec<u32> = Vec::with_capacity(stride);
                let mut cands: Vec<u32> = Vec::new();
                let mut scratch = CandidateScratch::new(compiled.transition_count());
                let mut expansions: u32 = 0;

                'work: loop {
                    let Some(gid) = next_work(me, &mut local, queues) else {
                        if stopped.load(Ordering::Relaxed) {
                            break 'work;
                        }
                        if in_flight.load(Ordering::Acquire) == 0 {
                            break 'work;
                        }
                        // Poll the deadline/cancel while starved so a
                        // stall cannot outlive the budget (cancellation
                        // lands mid-steal, not just mid-expansion).
                        if budget.interrupted().is_some() {
                            stopped.store(true, Ordering::Relaxed);
                            break 'work;
                        }
                        std::thread::yield_now();
                        continue 'work;
                    };
                    if stopped.load(Ordering::Relaxed) {
                        break 'work;
                    }
                    expansions = expansions.wrapping_add(1);
                    if expansions & 0x3F == 0 && budget.interrupted().is_some() {
                        stopped.store(true, Ordering::Relaxed);
                        break 'work;
                    }

                    let (ow, ol) = unpack(gid);
                    arenas[ow].read_row_into(ol, &mut cur);
                    let cur_hash = arenas[ow].hash_of(ol);
                    srcs.push((gid, edges.len()));
                    compiled.enabled_candidates(&cur, &mut scratch, &mut cands);
                    for &t in &cands {
                        if !compiled.is_enabled(&cur, t) {
                            continue;
                        }
                        if trans_used.fetch_add(1, Ordering::Relaxed) >= budget.max_transitions {
                            stopped.store(true, Ordering::Relaxed);
                            break 'work;
                        }
                        let hash = compiled.apply_hashed(&mut cur, cur_hash, t);
                        let target = match index.find(&cur, hash) {
                            Probe::Found(g) => g,
                            Probe::Vacant(slot) => {
                                // Tentative append: write the row, take a
                                // state ticket, then race for the slot.
                                // The ticket precedes the CAS so total
                                // published states never exceed the
                                // table's load cap — that is what bounds
                                // every probe loop.
                                arenas[me].write_row(my_len, &cur, hash);
                                if states_used.fetch_add(1, Ordering::Relaxed) >= state_cap {
                                    stopped.store(true, Ordering::Relaxed);
                                    break 'work;
                                }
                                match index.claim(slot, &cur, hash, me, my_len) {
                                    Some(existing) => {
                                        // Lost to an equal marking: roll
                                        // back the append, refund the
                                        // ticket.
                                        states_used.fetch_sub(1, Ordering::Relaxed);
                                        existing
                                    }
                                    None => {
                                        let g = pack(me, my_len);
                                        my_len += 1;
                                        // Count the child before it can
                                        // become visible so `in_flight`
                                        // never dips to zero with work
                                        // still queued.
                                        in_flight.fetch_add(1, Ordering::Relaxed);
                                        local.push(g);
                                        g
                                    }
                                }
                            }
                        };
                        compiled.unapply(&mut cur, t);
                        edges.push((t, target));
                    }
                    in_flight.fetch_sub(1, Ordering::Release);
                    // Offer surplus to starving peers: cheap occupancy
                    // check first, lock only when actually publishing.
                    if local.len() > 1 && queues[me].size.load(Ordering::Relaxed) == 0 {
                        let give = local.len() / 2;
                        let mut q = lock(&queues[me].q);
                        q.extend(local.drain(..give));
                        queues[me].size.store(q.len(), Ordering::Relaxed);
                    }
                }
                WorkerLog {
                    len: my_len,
                    srcs,
                    edges,
                }
            }));
        }
        for h in handles {
            match h.join() {
                Ok(log) => logs.push(log),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });

    if stopped.load(Ordering::Relaxed) {
        return None;
    }
    Some(merge_lockfree(&arenas, &logs, stride))
}

/// Renumbers the lock-free exploration into canonical (sequential) BFS
/// order.
///
/// Each expanded state's edge range is already in ascending transition
/// order (candidates are examined ascending and each state is expanded
/// by exactly one worker), so replaying the sequential discovery
/// recurrence — scan states in discovery order, number new targets in
/// edge order — reproduces the sequential numbering exactly. The rebuilt
/// arena re-interns markings in that order, making the result
/// byte-identical to `explore_compiled`.
fn merge_lockfree(arenas: &[WorkerArena], logs: &[WorkerLog], stride: usize) -> ReachabilityGraph {
    let total: usize = logs.iter().map(|o| o.len as usize).sum();
    // Locate each state's expansion: owner gid -> (expander, src slot).
    let mut expander: Vec<Vec<(u32, u32)>> = logs
        .iter()
        .map(|o| vec![(u32::MAX, 0); o.len as usize])
        .collect();
    for (ew, o) in logs.iter().enumerate() {
        for (si, &(gid, _)) in o.srcs.iter().enumerate() {
            let (w, l) = unpack(gid);
            expander[w][l as usize] = (ew as u32, si as u32);
        }
    }
    let edge_range = |ew: usize, si: usize| {
        let o = &logs[ew];
        let begin = o.srcs[si].1;
        let end = o.srcs.get(si + 1).map_or(o.edges.len(), |s| s.1);
        &o.edges[begin..end]
    };

    let mut new_id: Vec<Vec<u32>> = logs
        .iter()
        .map(|o| vec![u32::MAX; o.len as usize])
        .collect();
    let mut order: Vec<u64> = Vec::with_capacity(total);
    order.push(pack(0, 0));
    new_id[0][0] = 0;
    let mut head = 0usize;
    while head < order.len() {
        let (w, l) = unpack(order[head]);
        head += 1;
        let (ew, si) = expander[w][l as usize];
        debug_assert_ne!(ew, u32::MAX, "complete run expanded every state");
        for &(_, tgt) in edge_range(ew as usize, si as usize) {
            let (tw, tl) = unpack(tgt);
            if new_id[tw][tl as usize] == u32::MAX {
                new_id[tw][tl as usize] = order.len() as u32;
                order.push(tgt);
            }
        }
    }
    debug_assert_eq!(order.len(), total, "every discovered state is reachable");

    let mut store = MarkingStore::with_capacity(stride, total);
    let mut buf: Vec<u32> = Vec::with_capacity(stride);
    let mut edge_data: Vec<(TransitionId, StateId)> = Vec::new();
    let mut edge_off: Vec<usize> = Vec::with_capacity(total + 1);
    edge_off.push(0);
    for &gid in &order {
        let (w, l) = unpack(gid);
        arenas[w].read_row_into(l, &mut buf);
        if store.insert_new_hashed(&buf, arenas[w].hash_of(l)).is_err() {
            // Unreachable: `total` ids fit u32 by construction.
            debug_assert!(false, "id overflow during merge");
        }
        let (ew, si) = expander[w][l as usize];
        for &(t, tgt) in edge_range(ew as usize, si as usize) {
            let (tw, tl) = unpack(tgt);
            edge_data.push((
                TransitionId::from_index(t as usize),
                StateId(new_id[tw][tl as usize]),
            ));
        }
        edge_off.push(edge_data.len());
    }
    ReachabilityGraph {
        store,
        edge_data,
        edge_off,
        initial: StateId(0),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn diamond() -> PetriNet<&'static str> {
        // Fork into two concurrent tokens, then join: 4 states.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let pa = net.add_place("pa");
        let pb = net.add_place("pb");
        let pa2 = net.add_place("pa2");
        let pb2 = net.add_place("pb2");
        let end = net.add_place("end");
        net.add_transition([p0], "fork", [pa, pb]).unwrap();
        net.add_transition([pa], "a", [pa2]).unwrap();
        net.add_transition([pb], "b", [pb2]).unwrap();
        net.add_transition([pa2, pb2], "join", [end]).unwrap();
        net.set_initial(p0, 1);
        net
    }

    fn graphs_identical(a: &ReachabilityGraph, b: &ReachabilityGraph) -> bool {
        a.state_count() == b.state_count()
            && a.edge_count() == b.edge_count()
            && a.initial_state() == b.initial_state()
            && a.state_ids()
                .all(|s| a.marking_slice(s) == b.marking_slice(s) && a.edges(s) == b.edges(s))
    }

    #[test]
    fn diamond_has_interleaved_states() {
        let rg = diamond()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        // p0; {pa,pb}; {pa2,pb}; {pa,pb2}; {pa2,pb2}; end
        assert_eq!(rg.state_count(), 6);
        assert_eq!(rg.edge_count(), 6);
        assert_eq!(rg.deadlock_states().len(), 1);
        assert_eq!(rg.token_bound(), 1);
    }

    #[test]
    fn initial_state_has_initial_marking() {
        let net = diamond();
        let rg = net.reachability(&ReachabilityOptions::default()).unwrap();
        assert_eq!(rg.marking(rg.initial_state()), net.initial_marking());
        assert_eq!(
            rg.find_state(&net.initial_marking()),
            Some(rg.initial_state())
        );
    }

    #[test]
    fn find_state_locates_every_state_and_rejects_unreachable() {
        let rg = diamond()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        for s in rg.state_ids() {
            assert_eq!(rg.find_state(&rg.marking(s)), Some(s));
        }
        let mut bogus = rg.marking(rg.initial_state());
        bogus.set(crate::net::PlaceId::from_index(0), 99);
        assert_eq!(rg.find_state(&bogus), None);
        // A marking over a different place count is never present.
        assert_eq!(rg.find_state(&Marking::empty(2)), None);
    }

    #[test]
    fn budget_exceeded_on_unbounded_net() {
        // t: {} is not allowed, so use a producer cycle that pumps tokens.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let sink = net.add_place("sink");
        net.add_transition([p], "pump", [p, sink]).unwrap();
        net.set_initial(p, 1);
        let err = net
            .reachability(&ReachabilityOptions::with_max_states(100))
            .unwrap_err();
        assert_eq!(err, PetriError::StateBudgetExceeded { budget: 100 });
    }

    #[test]
    fn multiset_markings_explored() {
        // Two tokens circulate through one place: states distinguish counts.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "a", [q]).unwrap();
        net.add_transition([q], "b", [p]).unwrap();
        net.set_initial(p, 2);
        let rg = net.reachability(&ReachabilityOptions::default()).unwrap();
        // (2,0), (1,1), (0,2)
        assert_eq!(rg.state_count(), 3);
        assert_eq!(rg.token_bound(), 2);
    }

    #[test]
    fn all_edges_enumerates_everything() {
        let rg = diamond()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        assert_eq!(rg.all_edges().count(), rg.edge_count());
    }

    #[test]
    fn as_digraph_mirrors_edges() {
        let rg = diamond()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        let g = rg.as_digraph();
        assert_eq!(g.node_count(), rg.state_count());
        let seen = g.reachable_from(rg.initial_state().index());
        assert!(seen.iter().all(|&b| b), "every state reachable from init");
    }

    #[test]
    fn compiled_matches_legacy_on_diamond() {
        let net = diamond();
        let a = net.reachability_bounded(&Budget::default()).into_value();
        let b = net
            .reachability_bounded_legacy(&Budget::default())
            .into_value();
        assert!(graphs_identical(&a, &b));
    }

    #[test]
    fn compiled_matches_legacy_under_exhaustion() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let sink = net.add_place("sink");
        net.add_transition([p], "pump", [p, sink]).unwrap();
        net.set_initial(p, 1);
        for budget in [Budget::states(5), Budget::new(100, 7), Budget::states(0)] {
            let a = net.reachability_bounded(&budget);
            let b = net.reachability_bounded_legacy(&budget);
            assert_eq!(a.exhausted(), b.exhausted(), "same exhaustion stats");
            assert!(graphs_identical(a.value(), b.value()), "same prefix");
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let net = diamond();
        let seq = net.reachability_bounded(&Budget::default()).into_value();
        for threads in [1, 2, 3, 4] {
            let par = net
                .reachability_bounded_parallel(&Budget::default(), threads)
                .into_value();
            assert!(
                graphs_identical(&seq, &par),
                "thread count {threads} changed the graph"
            );
        }
    }

    #[test]
    fn parallel_exhaustion_matches_sequential() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let sink = net.add_place("sink");
        net.add_transition([p], "pump", [p, sink]).unwrap();
        net.set_initial(p, 1);
        let budget = Budget::states(17);
        let seq = net.reachability_bounded(&budget);
        for threads in [2, 4] {
            let par = net.reachability_bounded_parallel(&budget, threads);
            assert_eq!(seq.exhausted(), par.exhausted());
            assert!(graphs_identical(seq.value(), par.value()));
        }
    }

    #[test]
    fn parallel_handles_empty_preset_sources() {
        // An always-enabled source transition pumps a bounded buffer
        // drained by a consumer: candidate generation must include the
        // empty-preset transition in every state.
        let mut net: PetriNet<&str> = PetriNet::new();
        let buf = net.add_place("buf");
        net.add_transition([], "arrive", [buf]).unwrap();
        net.add_transition([buf], "serve", []).unwrap();
        let budget = Budget::states(50);
        let seq = net.reachability_bounded(&budget);
        let par = net.reachability_bounded_parallel(&budget, 4);
        assert_eq!(seq.exhausted(), par.exhausted());
        assert!(graphs_identical(seq.value(), par.value()));
    }

    #[test]
    fn edge_count_is_cached_and_consistent() {
        let rg = diamond()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        let summed: usize = rg.state_ids().map(|s| rg.edges(s).len()).sum();
        assert_eq!(rg.edge_count(), summed);
    }

    #[test]
    fn options_builders_compose() {
        let o = ReachabilityOptions::with_max_states(10).with_threads(4);
        assert_eq!(o.max_states, 10);
        assert_eq!(o.threads, 4);
        assert_eq!(ReachabilityOptions::default().threads, 1);
        let from_budget = ReachabilityOptions::from(Budget::states(7));
        assert_eq!(from_budget.max_states, 7);
        assert_eq!(from_budget.threads, 1);
    }

    #[test]
    fn try_from_index_rejects_overflow() {
        assert!(StateId::try_from_index(usize::MAX).is_err());
        assert_eq!(StateId::try_from_index(3).unwrap(), StateId(3));
    }

    #[test]
    fn resident_bytes_reported() {
        let rg = diamond()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        assert!(rg.resident_marking_bytes() > 0);
    }
}
