//! Explicit reachability graphs.
//!
//! The reachability graph `RG(N)` (Section 2.1 of the paper) is the
//! transitive closure of the next-state relation: nodes are reachable
//! markings, edges are labeled by the transition fired. The kernel builds
//! it breadth-first under a configurable state budget so that analyses
//! never silently diverge on unbounded nets.

use crate::budget::{Bounded, Budget, Meter};
use crate::error::PetriError;
use crate::graph::DiGraph;
use crate::label::Label;
use crate::marking::Marking;
use crate::net::{PetriNet, TransitionId};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a state (reachable marking) in a [`ReachabilityGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(u32);

impl StateId {
    /// The arena index of this state.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `StateId` from an arena index.
    pub fn from_index(i: usize) -> Self {
        StateId(u32::try_from(i).expect("state index overflow"))
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Options controlling reachability exploration.
#[derive(Clone, Debug)]
pub struct ReachabilityOptions {
    /// Maximum number of distinct states to discover before giving up with
    /// [`PetriError::StateBudgetExceeded`]. Defaults to
    /// [`crate::budget::DEFAULT_MAX_STATES`], the workspace-wide state
    /// budget shared with [`Budget`].
    pub max_states: usize,
}

impl Default for ReachabilityOptions {
    fn default() -> Self {
        ReachabilityOptions {
            max_states: crate::budget::DEFAULT_MAX_STATES,
        }
    }
}

impl ReachabilityOptions {
    /// Options with an explicit state budget.
    pub fn with_max_states(max_states: usize) -> Self {
        ReachabilityOptions { max_states }
    }
}

impl From<Budget> for ReachabilityOptions {
    /// Projects a [`Budget`] onto the legacy options type (only the state
    /// cap is representable).
    fn from(b: Budget) -> Self {
        ReachabilityOptions {
            max_states: b.max_states,
        }
    }
}

impl From<&Budget> for ReachabilityOptions {
    fn from(b: &Budget) -> Self {
        ReachabilityOptions::from(*b)
    }
}

/// The reachability graph of a net: every reachable marking plus the
/// labeled next-state edges between them.
///
/// # Example
///
/// ```
/// use cpn_petri::{PetriNet, ReachabilityOptions};
///
/// # fn main() -> Result<(), cpn_petri::PetriError> {
/// let mut net: PetriNet<&str> = PetriNet::new();
/// let p = net.add_place("p");
/// let q = net.add_place("q");
/// let r = net.add_place("r");
/// net.add_transition([p], "a", [q])?;
/// net.add_transition([p], "b", [r])?;
/// net.set_initial(p, 1);
/// let rg = net.reachability(&ReachabilityOptions::default())?;
/// assert_eq!(rg.state_count(), 3);
/// assert_eq!(rg.edges(rg.initial_state()).len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ReachabilityGraph {
    states: Vec<Marking>,
    /// Outgoing edges per state: `(transition fired, successor)`.
    edges: Vec<Vec<(TransitionId, StateId)>>,
    /// Marking → state index, built once during exploration and kept so
    /// analyses get O(1) lookups.
    index: HashMap<Marking, StateId>,
    initial: StateId,
}

impl ReachabilityGraph {
    /// Number of reachable states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(|e| e.len()).sum()
    }

    /// The state corresponding to the initial marking.
    pub fn initial_state(&self) -> StateId {
        self.initial
    }

    /// The marking of a state.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn marking(&self, s: StateId) -> &Marking {
        &self.states[s.index()]
    }

    /// Outgoing edges of a state.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn edges(&self, s: StateId) -> &[(TransitionId, StateId)] {
        &self.edges[s.index()]
    }

    /// Iterates over all state ids.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> {
        (0..self.states.len()).map(StateId::from_index)
    }

    /// Iterates over all edges as `(source, transition, target)`.
    pub fn all_edges(&self) -> impl Iterator<Item = (StateId, TransitionId, StateId)> + '_ {
        self.edges.iter().enumerate().flat_map(|(i, outs)| {
            outs.iter()
                .map(move |&(t, to)| (StateId::from_index(i), t, to))
        })
    }

    /// Looks up the state with the given marking in O(1) via the index
    /// built during exploration.
    pub fn find_state(&self, m: &Marking) -> Option<StateId> {
        self.index.get(m).copied()
    }

    /// The underlying directed graph over state indices (labels dropped).
    pub fn as_digraph(&self) -> DiGraph {
        let mut g = DiGraph::new(self.state_count());
        for (from, _, to) in self.all_edges() {
            g.add_edge(from.index(), to.index());
        }
        g
    }

    /// States with no outgoing edges (deadlocks).
    pub fn deadlock_states(&self) -> Vec<StateId> {
        self.state_ids()
            .filter(|s| self.edges[s.index()].is_empty())
            .collect()
    }

    /// The largest token count any place reaches in any state: the bound
    /// `k` for which the net is `k`-bounded (given a complete graph).
    pub fn token_bound(&self) -> u32 {
        self.states
            .iter()
            .map(Marking::max_tokens)
            .max()
            .unwrap_or(0)
    }
}

impl<L: Label> PetriNet<L> {
    /// Builds the reachability graph of the net breadth-first.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::StateBudgetExceeded`] when more than
    /// `options.max_states` distinct markings are discovered — either the
    /// net is unbounded (use
    /// [`coverability`](crate::coverability::CoverabilityTree) to decide)
    /// or the budget is too small for its finite state space.
    pub fn reachability(
        &self,
        options: &ReachabilityOptions,
    ) -> Result<ReachabilityGraph, PetriError> {
        match self.reachability_bounded(&Budget::states(options.max_states)) {
            Bounded::Complete(rg) => Ok(rg),
            Bounded::Exhausted { .. } => Err(PetriError::StateBudgetExceeded {
                budget: options.max_states,
            }),
        }
    }

    /// Builds the reachability graph breadth-first under a [`Budget`],
    /// degrading gracefully instead of erroring.
    ///
    /// When the budget runs out, exploration stops immediately and the
    /// partial graph discovered so far is returned in
    /// [`Bounded::Exhausted`] together with exploration statistics. The
    /// partial graph is a sound prefix: every state and edge in it is
    /// genuinely reachable, but states on the unexpanded frontier may be
    /// missing outgoing edges.
    pub fn reachability_bounded(&self, budget: &Budget) -> Bounded<ReachabilityGraph> {
        let mut meter = Meter::new(budget);
        let initial = self.initial_marking();
        let mut states: Vec<Marking> = vec![initial.clone()];
        let mut index: HashMap<Marking, StateId> = HashMap::new();
        index.insert(initial, StateId::from_index(0));
        let mut edges: Vec<Vec<(TransitionId, StateId)>> = vec![Vec::new()];
        // The initial state always exists, even under a zero budget.
        meter.take_state();

        let mut frontier = 0usize;
        'explore: while frontier < states.len() {
            let sid = StateId::from_index(frontier);
            let marking = states[frontier].clone();
            for t in self.transition_ids() {
                if !self.is_enabled(&marking, t) {
                    continue;
                }
                if !meter.take_transition() {
                    break 'explore;
                }
                let Ok(next) = self.fire(&marking, t) else {
                    // Unreachable for an enabled transition; skip rather
                    // than panic so the builder stays total.
                    continue;
                };
                let target = match index.get(&next) {
                    Some(&existing) => existing,
                    None => {
                        if !meter.take_state() {
                            break 'explore;
                        }
                        let new_id = StateId::from_index(states.len());
                        states.push(next.clone());
                        edges.push(Vec::new());
                        index.insert(next, new_id);
                        new_id
                    }
                };
                edges[sid.index()].push((t, target));
            }
            frontier += 1;
        }

        meter.finish(ReachabilityGraph {
            states,
            edges,
            index,
            initial: StateId::from_index(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> PetriNet<&'static str> {
        // Fork into two concurrent tokens, then join: 4 states.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let pa = net.add_place("pa");
        let pb = net.add_place("pb");
        let pa2 = net.add_place("pa2");
        let pb2 = net.add_place("pb2");
        let end = net.add_place("end");
        net.add_transition([p0], "fork", [pa, pb]).unwrap();
        net.add_transition([pa], "a", [pa2]).unwrap();
        net.add_transition([pb], "b", [pb2]).unwrap();
        net.add_transition([pa2, pb2], "join", [end]).unwrap();
        net.set_initial(p0, 1);
        net
    }

    #[test]
    fn diamond_has_interleaved_states() {
        let rg = diamond()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        // p0; {pa,pb}; {pa2,pb}; {pa,pb2}; {pa2,pb2}; end
        assert_eq!(rg.state_count(), 6);
        assert_eq!(rg.edge_count(), 6);
        assert_eq!(rg.deadlock_states().len(), 1);
        assert_eq!(rg.token_bound(), 1);
    }

    #[test]
    fn initial_state_has_initial_marking() {
        let net = diamond();
        let rg = net.reachability(&ReachabilityOptions::default()).unwrap();
        assert_eq!(rg.marking(rg.initial_state()), &net.initial_marking());
        assert_eq!(
            rg.find_state(&net.initial_marking()),
            Some(rg.initial_state())
        );
    }

    #[test]
    fn find_state_locates_every_state_and_rejects_unreachable() {
        let rg = diamond()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        for s in rg.state_ids() {
            assert_eq!(rg.find_state(rg.marking(s)), Some(s));
        }
        let mut bogus = rg.marking(rg.initial_state()).clone();
        bogus.set(crate::net::PlaceId::from_index(0), 99);
        assert_eq!(rg.find_state(&bogus), None);
    }

    #[test]
    fn budget_exceeded_on_unbounded_net() {
        // t: {} is not allowed, so use a producer cycle that pumps tokens.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let sink = net.add_place("sink");
        net.add_transition([p], "pump", [p, sink]).unwrap();
        net.set_initial(p, 1);
        let err = net
            .reachability(&ReachabilityOptions::with_max_states(100))
            .unwrap_err();
        assert_eq!(err, PetriError::StateBudgetExceeded { budget: 100 });
    }

    #[test]
    fn multiset_markings_explored() {
        // Two tokens circulate through one place: states distinguish counts.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "a", [q]).unwrap();
        net.add_transition([q], "b", [p]).unwrap();
        net.set_initial(p, 2);
        let rg = net.reachability(&ReachabilityOptions::default()).unwrap();
        // (2,0), (1,1), (0,2)
        assert_eq!(rg.state_count(), 3);
        assert_eq!(rg.token_bound(), 2);
    }

    #[test]
    fn all_edges_enumerates_everything() {
        let rg = diamond()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        assert_eq!(rg.all_edges().count(), rg.edge_count());
    }

    #[test]
    fn as_digraph_mirrors_edges() {
        let rg = diamond()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        let g = rg.as_digraph();
        assert_eq!(g.node_count(), rg.state_count());
        let seen = g.reachable_from(rg.initial_state().index());
        assert!(seen.iter().all(|&b| b), "every state reachable from init");
    }
}
