//! Explicit reachability graphs (exploration kernel v2).
//!
//! The reachability graph `RG(N)` (Section 2.1 of the paper) is the
//! transitive closure of the next-state relation: nodes are reachable
//! markings, edges are labeled by the transition fired. The kernel builds
//! it breadth-first under a configurable state budget so that analyses
//! never silently diverge on unbounded nets.
//!
//! Three layers make the build fast:
//!
//! 1. [`MarkingStore`] — every discovered marking is interned once into a
//!    flat arena; the open-addressing index stores only `(hash, id)`
//!    pairs, so there is no per-state allocation and no duplicate key
//!    storage.
//! 2. [`CompiledNet`] — the firing rule in
//!    CSR form with a place → consumers adjacency, so each state only
//!    re-tests transitions whose preset touches a marked place instead of
//!    scanning all of `transition_ids()`.
//! 3. An opt-in deterministic parallel BFS
//!    ([`ReachabilityOptions::threads`]) that shards markings by content
//!    hash across `std::thread` workers and renumbers the result into
//!    canonical BFS order, so the graph is **bit-identical for every
//!    thread count** (and to the sequential explorer).
//!
//! The pre-arena explorer survives as
//! [`PetriNet::reachability_bounded_legacy`], the reference
//! implementation the equivalence property suite differentiates against.

use crate::budget::{Bounded, Budget, Meter};
use crate::compiled::{CandidateScratch, CompiledNet, StubbornScratch};
use crate::error::PetriError;
use crate::graph::DiGraph;
use crate::label::Label;
use crate::marking::Marking;
use crate::net::{PetriNet, PlaceId, TransitionId};
use crate::store::MarkingStore;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

/// Identifier of a state (reachable marking) in a [`ReachabilityGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(u32);

impl StateId {
    /// The arena index of this state.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `StateId` from an arena index.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::IndexOverflow`] when the index does not fit
    /// the 32-bit id space.
    pub fn try_from_index(i: usize) -> Result<Self, PetriError> {
        match u32::try_from(i) {
            Ok(v) => Ok(StateId(v)),
            Err(_) => Err(PetriError::IndexOverflow { index: i }),
        }
    }

    /// Builds a `StateId` from an arena index.
    ///
    /// # Panics
    ///
    /// Panics if the index exceeds the 32-bit id space; use
    /// [`StateId::try_from_index`] on paths where the index is not known
    /// to be in range.
    pub fn from_index(i: usize) -> Self {
        match Self::try_from_index(i) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Options controlling reachability exploration.
#[derive(Clone, Debug)]
pub struct ReachabilityOptions {
    /// Maximum number of distinct states to discover before giving up with
    /// [`PetriError::StateBudgetExceeded`]. Defaults to
    /// [`crate::budget::DEFAULT_MAX_STATES`], the workspace-wide state
    /// budget shared with [`Budget`].
    pub max_states: usize,
    /// Number of exploration worker threads. `0` and `1` both mean
    /// sequential; larger values opt into the sharded parallel BFS, whose
    /// output is bit-identical to the sequential explorer's for every
    /// thread count. Defaults to `1`.
    pub threads: usize,
    /// Opt into stubborn-set partial-order reduction. The reduced graph
    /// contains **every deadlock marking** of the full graph but in
    /// general fewer states and interleavings, so it is valid for
    /// deadlock-style queries only — language, liveness, and safety must
    /// explore unreduced. Forces sequential exploration (the sharded BFS
    /// never runs reduced). Defaults to `false`.
    pub stubborn: bool,
}

impl Default for ReachabilityOptions {
    fn default() -> Self {
        ReachabilityOptions {
            max_states: crate::budget::DEFAULT_MAX_STATES,
            threads: 1,
            stubborn: false,
        }
    }
}

impl ReachabilityOptions {
    /// Options with an explicit state budget (sequential).
    pub fn with_max_states(max_states: usize) -> Self {
        ReachabilityOptions {
            max_states,
            threads: 1,
            stubborn: false,
        }
    }

    /// Returns the options with the worker-thread count replaced.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns the options with stubborn-set reduction toggled.
    pub fn with_stubborn(mut self, stubborn: bool) -> Self {
        self.stubborn = stubborn;
        self
    }
}

impl From<Budget> for ReachabilityOptions {
    /// Projects a [`Budget`] onto the options type (only the state cap is
    /// representable; exploration stays sequential and unreduced).
    fn from(b: Budget) -> Self {
        ReachabilityOptions {
            max_states: b.max_states,
            threads: 1,
            stubborn: false,
        }
    }
}

impl From<&Budget> for ReachabilityOptions {
    fn from(b: &Budget) -> Self {
        ReachabilityOptions::from(*b)
    }
}

/// The reachability graph of a net: every reachable marking plus the
/// labeled next-state edges between them.
///
/// Markings live interned in a [`MarkingStore`] arena and edges in one
/// CSR array, so the graph's resident size is dominated by
/// `state_count × place_count` `u32`s rather than per-state heap
/// allocations.
///
/// # Example
///
/// ```
/// use cpn_petri::{PetriNet, ReachabilityOptions};
///
/// # fn main() -> Result<(), cpn_petri::PetriError> {
/// let mut net: PetriNet<&str> = PetriNet::new();
/// let p = net.add_place("p");
/// let q = net.add_place("q");
/// let r = net.add_place("r");
/// net.add_transition([p], "a", [q])?;
/// net.add_transition([p], "b", [r])?;
/// net.set_initial(p, 1);
/// let rg = net.reachability(&ReachabilityOptions::default())?;
/// assert_eq!(rg.state_count(), 3);
/// assert_eq!(rg.edges(rg.initial_state()).len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ReachabilityGraph {
    store: MarkingStore,
    /// All edges, grouped by source state (CSR payload).
    edge_data: Vec<(TransitionId, StateId)>,
    /// CSR offsets: edges of state `s` are
    /// `edge_data[edge_off[s]..edge_off[s+1]]`.
    edge_off: Vec<usize>,
    initial: StateId,
}

impl ReachabilityGraph {
    /// Number of reachable states.
    pub fn state_count(&self) -> usize {
        self.store.len()
    }

    /// Total number of edges (O(1): the CSR payload length is cached by
    /// construction).
    pub fn edge_count(&self) -> usize {
        self.edge_data.len()
    }

    /// The state corresponding to the initial marking.
    pub fn initial_state(&self) -> StateId {
        self.initial
    }

    /// The marking of a state, materialized from the arena.
    ///
    /// For allocation-free access use [`ReachabilityGraph::marking_slice`].
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn marking(&self, s: StateId) -> Marking {
        Marking::from_counts(self.store.get(s.index()).to_vec())
    }

    /// The raw per-place token counts of a state, borrowed straight from
    /// the arena (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn marking_slice(&self, s: StateId) -> &[u32] {
        self.store.get(s.index())
    }

    /// Outgoing edges of a state.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn edges(&self, s: StateId) -> &[(TransitionId, StateId)] {
        &self.edge_data[self.edge_off[s.index()]..self.edge_off[s.index() + 1]]
    }

    /// Iterates over all state ids.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> {
        (0..self.store.len()).map(StateId::from_index)
    }

    /// Iterates over all edges as `(source, transition, target)`.
    pub fn all_edges(&self) -> impl Iterator<Item = (StateId, TransitionId, StateId)> + '_ {
        self.state_ids()
            .flat_map(move |s| self.edges(s).iter().map(move |&(t, to)| (s, t, to)))
    }

    /// Looks up the state with the given marking in O(1) via the arena's
    /// hash index.
    pub fn find_state(&self, m: &Marking) -> Option<StateId> {
        if m.len() != self.store.stride() {
            return None;
        }
        self.store.find(m.as_slice()).map(StateId)
    }

    /// The underlying directed graph over state indices (labels dropped).
    pub fn as_digraph(&self) -> DiGraph {
        let mut g = DiGraph::new(self.state_count());
        for (from, _, to) in self.all_edges() {
            g.add_edge(from.index(), to.index());
        }
        g
    }

    /// States with no outgoing edges (deadlocks).
    pub fn deadlock_states(&self) -> Vec<StateId> {
        self.state_ids()
            .filter(|s| self.edge_off[s.index()] == self.edge_off[s.index() + 1])
            .collect()
    }

    /// The largest token count any place reaches in any state: the bound
    /// `k` for which the net is `k`-bounded (given a complete graph).
    pub fn token_bound(&self) -> u32 {
        self.store
            .iter()
            .flat_map(|m| m.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// Bytes resident in the marking arena and its hash index — the
    /// counter reported as `peak_resident_marking_bytes` in
    /// `BENCH_explore.json`.
    pub fn resident_marking_bytes(&self) -> usize {
        self.store.resident_bytes()
    }
}

impl<L: Label> PetriNet<L> {
    /// Builds the reachability graph of the net breadth-first.
    ///
    /// With `options.threads > 1` the sharded parallel explorer is used;
    /// its result is bit-identical to the sequential one.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::StateBudgetExceeded`] when more than
    /// `options.max_states` distinct markings are discovered — either the
    /// net is unbounded (use
    /// [`coverability`](crate::coverability::CoverabilityTree) to decide)
    /// or the budget is too small for its finite state space.
    pub fn reachability(
        &self,
        options: &ReachabilityOptions,
    ) -> Result<ReachabilityGraph, PetriError> {
        let budget = Budget::states(options.max_states);
        let built = if options.stubborn {
            self.reachability_stubborn_bounded(&budget, &[])
        } else if options.threads > 1 {
            self.reachability_bounded_parallel(&budget, options.threads)
        } else {
            self.reachability_bounded(&budget)
        };
        match built {
            Bounded::Complete(rg) => Ok(rg),
            Bounded::Exhausted { .. } => Err(PetriError::StateBudgetExceeded {
                budget: options.max_states,
            }),
        }
    }

    /// Builds the reachability graph breadth-first under a [`Budget`],
    /// degrading gracefully instead of erroring.
    ///
    /// When the budget runs out, exploration stops immediately and the
    /// partial graph discovered so far is returned in
    /// [`Bounded::Exhausted`] together with exploration statistics. The
    /// partial graph is a sound prefix: every state and edge in it is
    /// genuinely reachable, but states on the unexpanded frontier may be
    /// missing outgoing edges.
    pub fn reachability_bounded(&self, budget: &Budget) -> Bounded<ReachabilityGraph> {
        explore_compiled(&self.compile(), self.initial_marking().as_slice(), budget)
    }

    /// Builds a **stubborn-set reduced** reachability graph breadth-first
    /// under a [`Budget`].
    ///
    /// At every marking only a stubborn subset of the enabled transitions
    /// is fired ([`CompiledNet::stubborn_enabled`]), which preserves:
    ///
    /// * **every deadlock marking** of the full graph, and
    /// * every reachable valuation of the `watched` places — any
    ///   transition touching a watched place is seeded into every
    ///   stubborn set, so a predicate over `watched` holds somewhere in
    ///   the full graph iff it holds somewhere in the reduced one (the
    ///   attractor/up-set reachability argument). Witness markings for
    ///   such a predicate are genuine but may differ from the full
    ///   graph's.
    ///
    /// Everything else (state counts, languages, token bounds on
    /// unwatched places, liveness) is generally under-approximated.
    pub fn reachability_stubborn_bounded(
        &self,
        budget: &Budget,
        watched: &[PlaceId],
    ) -> Bounded<ReachabilityGraph> {
        let compiled = self.compile();
        let seeds = stubborn_seeds(&compiled, watched);
        explore_stubborn(&compiled, self.initial_marking().as_slice(), budget, &seeds)
    }

    /// Builds the reachability graph with `threads` sharded workers.
    ///
    /// Marking ownership is decided by content hash, `Budget` accounting
    /// runs over shared atomic counters, and a final canonical BFS-order
    /// renumbering pass makes the result **bit-identical** to
    /// [`PetriNet::reachability_bounded`] for every thread count. When
    /// the budget is exhausted mid-flight, the partially explored shards
    /// are discarded and the sequential explorer re-runs under the same
    /// budget, so `Exhausted` prefixes and statistics are also identical.
    pub fn reachability_bounded_parallel(
        &self,
        budget: &Budget,
        threads: usize,
    ) -> Bounded<ReachabilityGraph> {
        let compiled = self.compile();
        let m0 = self.initial_marking();
        let threads = threads.clamp(1, 64);
        if threads == 1 || budget.max_states < 2 {
            return explore_compiled(&compiled, m0.as_slice(), budget);
        }
        match explore_parallel(&compiled, m0.as_slice(), budget, threads) {
            Some(rg) => Bounded::Complete(rg),
            // Budget hit: replay sequentially for a deterministic prefix.
            None => explore_compiled(&compiled, m0.as_slice(), budget),
        }
    }

    /// The pre-arena explorer (interpreted firing rule, `Vec<Marking>` +
    /// `HashMap` double storage), kept as the reference implementation
    /// for the kernel-equivalence property suite and the memory baseline
    /// of the `explore_kernel` bench. Semantically identical to
    /// [`PetriNet::reachability_bounded`], only slower and hungrier.
    pub fn reachability_bounded_legacy(&self, budget: &Budget) -> Bounded<ReachabilityGraph> {
        let mut meter = Meter::new(budget);
        let initial = self.initial_marking();
        let mut states: Vec<Marking> = vec![initial.clone()];
        let mut index: HashMap<Marking, StateId> = HashMap::new();
        index.insert(initial, StateId(0));
        let mut edges: Vec<Vec<(TransitionId, StateId)>> = vec![Vec::new()];
        // The initial state always exists, even under a zero budget.
        meter.take_state();

        let mut frontier = 0usize;
        'explore: while frontier < states.len() {
            if meter.should_stop() {
                break 'explore;
            }
            let marking = states[frontier].clone();
            for t in self.transition_ids() {
                if !self.is_enabled(&marking, t) {
                    continue;
                }
                if !meter.take_transition() {
                    break 'explore;
                }
                let Ok(next) = self.fire(&marking, t) else {
                    // Unreachable for an enabled transition; skip rather
                    // than panic so the builder stays total.
                    continue;
                };
                let target = match index.get(&next) {
                    Some(&existing) => existing,
                    None => {
                        if !meter.take_state() {
                            break 'explore;
                        }
                        let new_id = StateId::from_index(states.len());
                        states.push(next.clone());
                        edges.push(Vec::new());
                        index.insert(next, new_id);
                        new_id
                    }
                };
                edges[frontier].push((t, target));
            }
            frontier += 1;
        }

        // Convert to the arena-backed representation (insertion order is
        // already canonical BFS order).
        let mut store = MarkingStore::with_capacity(self.place_count(), states.len());
        for m in &states {
            store.intern(m.as_slice());
        }
        let mut edge_off = Vec::with_capacity(states.len() + 1);
        let mut edge_data = Vec::new();
        edge_off.push(0);
        for outs in &edges {
            edge_data.extend_from_slice(outs);
            edge_off.push(edge_data.len());
        }
        meter.finish(ReachabilityGraph {
            store,
            edge_data,
            edge_off,
            initial: StateId(0),
        })
    }
}

/// Explores a pre-compiled net under a [`Budget`], producing the same
/// graph as [`PetriNet::reachability_bounded`] on the source net.
///
/// The entry point for callers that amortize [`PetriNet::compile`]
/// across many explorations — e.g. the `cpn-serve` session cache, which
/// keys compiled nets by document content hash and re-explores them
/// under different budgets per request.
pub fn reachability_bounded_compiled(
    compiled: &CompiledNet,
    m0: &[u32],
    budget: &Budget,
) -> Bounded<ReachabilityGraph> {
    explore_compiled(compiled, m0, budget)
}

// ----------------------------------------------------------------------
// Sequential compiled explorer
// ----------------------------------------------------------------------

fn explore_compiled(
    compiled: &CompiledNet,
    m0: &[u32],
    budget: &Budget,
) -> Bounded<ReachabilityGraph> {
    let mut meter = Meter::new(budget);
    let stride = compiled.place_count();
    let mut store = MarkingStore::new(stride);
    store.intern(m0);
    // The initial state always exists, even under a zero budget.
    meter.take_state();

    let mut edge_data: Vec<(TransitionId, StateId)> = Vec::new();
    let mut edge_off: Vec<usize> = vec![0];
    let mut cur: Vec<u32> = Vec::with_capacity(stride);
    let mut cands: Vec<u32> = Vec::new();
    let mut scratch = CandidateScratch::new(compiled.transition_count());

    let mut frontier = 0usize;
    'explore: while frontier < store.len() {
        // Per-state deadline/cancel poll (coarse: real wall-clock reads
        // happen every POLL_INTERVAL ticks inside the meter).
        if meter.should_stop() {
            break 'explore;
        }
        cur.clear();
        cur.extend_from_slice(store.get(frontier));
        let cur_hash = store.hash_of(frontier);
        compiled.enabled_candidates(&cur, &mut scratch, &mut cands);
        for &t in &cands {
            if !compiled.is_enabled(&cur, t) {
                continue;
            }
            if !meter.take_transition() {
                break 'explore;
            }
            // Fire in place with a delta-updated hash, probe/insert the
            // successor straight out of `cur`, then revert — no
            // per-successor copy or full-stride rehash.
            let hash = compiled.apply_hashed(&mut cur, cur_hash, t);
            debug_assert_eq!(hash, MarkingStore::hash_slice(&cur));
            let found = store.find_hashed(&cur, hash);
            let target = match found {
                Some(id) => id,
                None => {
                    if !meter.take_state() {
                        compiled.unapply(&mut cur, t);
                        break 'explore;
                    }
                    match store.insert_new_hashed(&cur, hash) {
                        Ok(id) => id,
                        Err(_) => {
                            compiled.unapply(&mut cur, t);
                            break 'explore;
                        }
                    }
                }
            };
            compiled.unapply(&mut cur, t);
            edge_data.push((TransitionId::from_index(t as usize), StateId(target)));
        }
        edge_off.push(edge_data.len());
        frontier += 1;
    }
    // On early exit the offsets of unexpanded (and the partially
    // expanded) states still need closing so the CSR stays well-formed.
    while edge_off.len() <= store.len() {
        edge_off.push(edge_data.len());
    }

    meter.finish(ReachabilityGraph {
        store,
        edge_data,
        edge_off,
        initial: StateId(0),
    })
}

// ----------------------------------------------------------------------
// Stubborn-set reduced explorer
// ----------------------------------------------------------------------

/// Transitions adjacent to a watched place (take **or** give): the seed
/// set forcing every stubborn set to contain all transitions that can
/// change a watched valuation. Sorted ascending.
fn stubborn_seeds(compiled: &CompiledNet, watched: &[PlaceId]) -> Vec<u32> {
    if watched.is_empty() {
        return Vec::new();
    }
    let mut mark = vec![false; compiled.place_count()];
    for p in watched {
        mark[p.index()] = true;
    }
    let mut seeds = Vec::new();
    for t in 0..compiled.transition_count() as u32 {
        let touches = compiled
            .take_set(t)
            .iter()
            .chain(compiled.give_set(t))
            .any(|&p| mark[p as usize]);
        if touches {
            seeds.push(t);
        }
    }
    seeds
}

/// [`explore_compiled`] with the candidate set replaced by the stubborn
/// filter; everything else (arena, delta hashing, meter accounting, CSR
/// closing) is identical.
fn explore_stubborn(
    compiled: &CompiledNet,
    m0: &[u32],
    budget: &Budget,
    seeds: &[u32],
) -> Bounded<ReachabilityGraph> {
    let mut meter = Meter::new(budget);
    let stride = compiled.place_count();
    let mut store = MarkingStore::new(stride);
    store.intern(m0);
    meter.take_state();

    let mut edge_data: Vec<(TransitionId, StateId)> = Vec::new();
    let mut edge_off: Vec<usize> = vec![0];
    let mut cur: Vec<u32> = Vec::with_capacity(stride);
    let mut cands: Vec<u32> = Vec::new();
    let mut scratch = StubbornScratch::new(compiled.transition_count());

    let mut frontier = 0usize;
    'explore: while frontier < store.len() {
        if meter.should_stop() {
            break 'explore;
        }
        cur.clear();
        cur.extend_from_slice(store.get(frontier));
        let cur_hash = store.hash_of(frontier);
        compiled.stubborn_enabled(&cur, seeds, &mut scratch, &mut cands);
        for &t in &cands {
            if !meter.take_transition() {
                break 'explore;
            }
            let hash = compiled.apply_hashed(&mut cur, cur_hash, t);
            debug_assert_eq!(hash, MarkingStore::hash_slice(&cur));
            let found = store.find_hashed(&cur, hash);
            let target = match found {
                Some(id) => id,
                None => {
                    if !meter.take_state() {
                        compiled.unapply(&mut cur, t);
                        break 'explore;
                    }
                    match store.insert_new_hashed(&cur, hash) {
                        Ok(id) => id,
                        Err(_) => {
                            compiled.unapply(&mut cur, t);
                            break 'explore;
                        }
                    }
                }
            };
            compiled.unapply(&mut cur, t);
            edge_data.push((TransitionId::from_index(t as usize), StateId(target)));
        }
        edge_off.push(edge_data.len());
        frontier += 1;
    }
    while edge_off.len() <= store.len() {
        edge_off.push(edge_data.len());
    }

    meter.finish(ReachabilityGraph {
        store,
        edge_data,
        edge_off,
        initial: StateId(0),
    })
}

// ----------------------------------------------------------------------
// Deterministic parallel BFS
// ----------------------------------------------------------------------

/// One worker's slice of the state space: the markings it owns (those
/// whose hash shards to it) plus their outgoing edges as packed
/// `(shard, local)` targets.
struct ShardGraph {
    store: MarkingStore,
    /// Outgoing edges per local state: `(transition, packed target)`.
    edges: Vec<Vec<(u32, u64)>>,
}

#[inline]
fn pack(shard: usize, local: u32) -> u64 {
    ((shard as u64) << 32) | u64::from(local)
}

#[inline]
fn unpack(packed: u64) -> (usize, u32) {
    ((packed >> 32) as usize, packed as u32)
}

/// Shard ownership: a pure function of the marking's content hash, so
/// every worker routes a given marking to the same owner without
/// coordination. Uses bits disjoint from the table-probe bits.
#[inline]
fn shard_of(hash: u64, shards: usize) -> usize {
    ((hash >> 33) as usize) % shards
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A reply mailbox cell: resolved `(src_local, transition,
/// packed_target)` triples for one `(src, dst)` worker pair.
type ReplyBox = Mutex<Vec<(u32, u32, u64)>>;

/// Level-synchronous sharded BFS. Returns `Some(graph)` on complete
/// exploration (already canonically renumbered), `None` when the budget
/// ran out (the caller replays sequentially for a deterministic prefix).
fn explore_parallel(
    compiled: &CompiledNet,
    m0: &[u32],
    budget: &Budget,
    threads: usize,
) -> Option<ReachabilityGraph> {
    let stride = compiled.place_count();
    let h0 = MarkingStore::hash_slice(m0);
    let owner0 = shard_of(h0, threads);

    // Shared budget accounting: `fetch_add` tickets replicate
    // `Meter::take_*` — a ticket below the cap is a successful take, at
    // or above it trips the stop flag. On a completed run the number of
    // successful takes equals the sequential meter's counts exactly.
    let states_used = AtomicUsize::new(1); // the initial marking's take
    let trans_used = AtomicUsize::new(0);
    let stopped = AtomicBool::new(false);
    // Next-level population, double-buffered by round parity so resets
    // never race with increments.
    let pending = [AtomicUsize::new(0), AtomicUsize::new(0)];
    let barrier = Barrier::new(threads);

    // Mailboxes. `firings[dst][src]` carries flat records
    // `[src_local, transition, hash_lo, hash_hi, marking words…]` from
    // src's expansion to the marking's owner dst (the hash rides along
    // so the owner never rehashes); `replies[src][dst]` carries the
    // resolved `(src_local, transition, packed_target)` back. Each cell
    // has one writer and one reader per phase, separated by barriers.
    let firings: Vec<Vec<Mutex<Vec<u32>>>> = (0..threads)
        .map(|_| (0..threads).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    let replies: Vec<Vec<ReplyBox>> = (0..threads)
        .map(|_| (0..threads).map(|_| Mutex::new(Vec::new())).collect())
        .collect();

    let mut shards: Vec<Option<ShardGraph>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for me in 0..threads {
            let firings = &firings;
            let replies = &replies;
            let states_used = &states_used;
            let trans_used = &trans_used;
            let stopped = &stopped;
            let pending = &pending;
            let barrier = &barrier;
            handles.push(scope.spawn(move || {
                let mut shard = ShardGraph {
                    store: MarkingStore::new(stride),
                    edges: Vec::new(),
                };
                let mut level: Vec<u32> = Vec::new();
                if me == owner0 {
                    match shard.store.insert_new_hashed(m0, h0) {
                        Ok(id) => {
                            shard.edges.push(Vec::new());
                            level.push(id);
                        }
                        Err(_) => stopped.store(true, Ordering::SeqCst),
                    }
                }
                let mut next_level: Vec<u32> = Vec::new();
                let mut cur: Vec<u32> = Vec::with_capacity(stride);
                let mut cands: Vec<u32> = Vec::new();
                let mut scratch = CandidateScratch::new(compiled.transition_count());
                let mut out_firings: Vec<Vec<u32>> = vec![Vec::new(); threads];
                let mut out_replies: Vec<Vec<(u32, u32, u64)>> = vec![Vec::new(); threads];
                let mut round = 0usize;
                // Coarse per-worker deadline/cancel poll; a trip turns
                // into `stopped`, which the sequential replay then
                // reproduces deterministically.
                let mut tick = 0u32;

                loop {
                    // Phase 1: expand the local frontier level.
                    if !stopped.load(Ordering::SeqCst) {
                        'states: for &local in &level {
                            cur.clear();
                            cur.extend_from_slice(shard.store.get(local as usize));
                            let cur_hash = shard.store.hash_of(local as usize);
                            compiled.enabled_candidates(&cur, &mut scratch, &mut cands);
                            for &t in &cands {
                                if !compiled.is_enabled(&cur, t) {
                                    continue;
                                }
                                tick = tick.wrapping_add(1);
                                if tick & 0xFFF == 0 && budget.interrupted().is_some() {
                                    stopped.store(true, Ordering::SeqCst);
                                    break 'states;
                                }
                                if trans_used.fetch_add(1, Ordering::SeqCst)
                                    >= budget.max_transitions
                                {
                                    stopped.store(true, Ordering::SeqCst);
                                    break 'states;
                                }
                                // Fire in place with a delta-updated hash
                                // (see the sequential explorer); `cur` is
                                // reloaded after a `break`, so unapply
                                // only matters on the continue paths.
                                let hash = compiled.apply_hashed(&mut cur, cur_hash, t);
                                let dst = shard_of(hash, threads);
                                if dst == me {
                                    let target = match shard.store.find_hashed(&cur, hash) {
                                        Some(id) => id,
                                        None => {
                                            if states_used.fetch_add(1, Ordering::SeqCst)
                                                >= budget.max_states
                                            {
                                                stopped.store(true, Ordering::SeqCst);
                                                break 'states;
                                            }
                                            let Ok(id) = shard.store.insert_new_hashed(&cur, hash)
                                            else {
                                                stopped.store(true, Ordering::SeqCst);
                                                break 'states;
                                            };
                                            shard.edges.push(Vec::new());
                                            next_level.push(id);
                                            id
                                        }
                                    };
                                    shard.edges[local as usize].push((t, pack(me, target)));
                                } else {
                                    // Record carries the already-computed
                                    // hash so the owner never rehashes:
                                    // `[src_local, t, hash_lo, hash_hi,
                                    //   marking…]`.
                                    let buf = &mut out_firings[dst];
                                    buf.push(local);
                                    buf.push(t);
                                    buf.push(hash as u32);
                                    buf.push((hash >> 32) as u32);
                                    buf.extend_from_slice(&cur);
                                }
                                compiled.unapply(&mut cur, t);
                            }
                        }
                    }
                    for dst in 0..threads {
                        if dst != me && !out_firings[dst].is_empty() {
                            *lock(&firings[dst][me]) = std::mem::take(&mut out_firings[dst]);
                        }
                    }
                    barrier.wait();

                    // Phase 2: resolve firings arriving at markings this
                    // shard owns; queue replies with the assigned ids.
                    if !stopped.load(Ordering::SeqCst) {
                        'drain: for src in 0..threads {
                            if src == me {
                                continue;
                            }
                            let buf = std::mem::take(&mut *lock(&firings[me][src]));
                            let mut k = 0;
                            while k < buf.len() {
                                let src_local = buf[k];
                                let t = buf[k + 1];
                                let hash = u64::from(buf[k + 2]) | (u64::from(buf[k + 3]) << 32);
                                let m = &buf[k + 4..k + 4 + stride];
                                k += 4 + stride;
                                let target = match shard.store.find_hashed(m, hash) {
                                    Some(id) => id,
                                    None => {
                                        if states_used.fetch_add(1, Ordering::SeqCst)
                                            >= budget.max_states
                                        {
                                            stopped.store(true, Ordering::SeqCst);
                                            break 'drain;
                                        }
                                        let Ok(id) = shard.store.insert_new_hashed(m, hash) else {
                                            stopped.store(true, Ordering::SeqCst);
                                            break 'drain;
                                        };
                                        shard.edges.push(Vec::new());
                                        next_level.push(id);
                                        id
                                    }
                                };
                                out_replies[src].push((src_local, t, pack(me, target)));
                            }
                        }
                    }
                    for src in 0..threads {
                        if src != me && !out_replies[src].is_empty() {
                            *lock(&replies[src][me]) = std::mem::take(&mut out_replies[src]);
                        }
                    }
                    pending[(round + 1) % 2].store(0, Ordering::SeqCst);
                    pending[round % 2].fetch_add(next_level.len(), Ordering::SeqCst);
                    barrier.wait();

                    // Phase 3: record edges from replies; agree on
                    // termination (all stop-flag writes happened before
                    // the barrier, so every worker reads the same state).
                    for (dst, cell) in replies[me].iter().enumerate() {
                        if dst != me {
                            let buf = std::mem::take(&mut *lock(cell));
                            for (src_local, t, packed) in buf {
                                shard.edges[src_local as usize].push((t, packed));
                            }
                        }
                    }
                    let total_next = pending[round % 2].load(Ordering::SeqCst);
                    let stop_now = stopped.load(Ordering::SeqCst);
                    // Third barrier: every worker must read the verdict
                    // before any worker can enter the next round and
                    // write `stopped` again — otherwise a fast worker's
                    // round-`r+1` budget trip could leak into a slow
                    // worker's round-`r` read and the two would disagree
                    // on the exit round, stranding one on the barrier.
                    barrier.wait();
                    level.clear();
                    std::mem::swap(&mut level, &mut next_level);
                    round += 1;
                    if stop_now || total_next == 0 {
                        break;
                    }
                }
                shard
            }));
        }
        for h in handles {
            match h.join() {
                Ok(shard) => shards.push(Some(shard)),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });

    if stopped.load(Ordering::SeqCst) {
        return None;
    }
    let shards: Vec<ShardGraph> = shards.into_iter().flatten().collect();
    Some(merge_shards(shards, owner0, stride))
}

/// Renumbers the sharded graph into canonical (sequential) BFS order.
///
/// Each state's edges are sorted by transition id — the order the
/// sequential explorer emits them in, since candidates are examined
/// ascending and each enabled transition fires exactly once per state —
/// and the rebuilt id assignment follows the exact discovery recurrence
/// of the sequential BFS. The output is therefore bit-identical to
/// `explore_compiled` on the same net.
fn merge_shards(mut shards: Vec<ShardGraph>, owner0: usize, stride: usize) -> ReachabilityGraph {
    for shard in &mut shards {
        for outs in &mut shard.edges {
            outs.sort_unstable_by_key(|&(t, _)| t);
        }
    }
    let total: usize = shards.iter().map(|s| s.store.len()).sum();
    let mut new_id: Vec<Vec<u32>> = shards
        .iter()
        .map(|s| vec![u32::MAX; s.store.len()])
        .collect();
    let mut order: Vec<u64> = Vec::with_capacity(total);
    order.push(pack(owner0, 0));
    new_id[owner0][0] = 0;
    let mut head = 0usize;
    while head < order.len() {
        let (sh, local) = unpack(order[head]);
        head += 1;
        for &(_, target) in &shards[sh].edges[local as usize] {
            let (ts, tl) = unpack(target);
            if new_id[ts][tl as usize] == u32::MAX {
                new_id[ts][tl as usize] = order.len() as u32;
                order.push(target);
            }
        }
    }
    debug_assert_eq!(order.len(), total, "every discovered state is reachable");

    let mut store = MarkingStore::with_capacity(stride, total);
    let mut edge_data: Vec<(TransitionId, StateId)> = Vec::new();
    let mut edge_off: Vec<usize> = Vec::with_capacity(total + 1);
    edge_off.push(0);
    for &packed in &order {
        let (sh, local) = unpack(packed);
        let src = &shards[sh];
        if store
            .insert_new_hashed(
                src.store.get(local as usize),
                src.store.hash_of(local as usize),
            )
            .is_err()
        {
            // Unreachable: `total` ids fit u32 by construction.
            debug_assert!(false, "id overflow during merge");
        }
        for &(t, target) in &src.edges[local as usize] {
            let (ts, tl) = unpack(target);
            edge_data.push((
                TransitionId::from_index(t as usize),
                StateId(new_id[ts][tl as usize]),
            ));
        }
        edge_off.push(edge_data.len());
    }
    ReachabilityGraph {
        store,
        edge_data,
        edge_off,
        initial: StateId(0),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn diamond() -> PetriNet<&'static str> {
        // Fork into two concurrent tokens, then join: 4 states.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let pa = net.add_place("pa");
        let pb = net.add_place("pb");
        let pa2 = net.add_place("pa2");
        let pb2 = net.add_place("pb2");
        let end = net.add_place("end");
        net.add_transition([p0], "fork", [pa, pb]).unwrap();
        net.add_transition([pa], "a", [pa2]).unwrap();
        net.add_transition([pb], "b", [pb2]).unwrap();
        net.add_transition([pa2, pb2], "join", [end]).unwrap();
        net.set_initial(p0, 1);
        net
    }

    fn graphs_identical(a: &ReachabilityGraph, b: &ReachabilityGraph) -> bool {
        a.state_count() == b.state_count()
            && a.edge_count() == b.edge_count()
            && a.initial_state() == b.initial_state()
            && a.state_ids()
                .all(|s| a.marking_slice(s) == b.marking_slice(s) && a.edges(s) == b.edges(s))
    }

    #[test]
    fn diamond_has_interleaved_states() {
        let rg = diamond()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        // p0; {pa,pb}; {pa2,pb}; {pa,pb2}; {pa2,pb2}; end
        assert_eq!(rg.state_count(), 6);
        assert_eq!(rg.edge_count(), 6);
        assert_eq!(rg.deadlock_states().len(), 1);
        assert_eq!(rg.token_bound(), 1);
    }

    #[test]
    fn initial_state_has_initial_marking() {
        let net = diamond();
        let rg = net.reachability(&ReachabilityOptions::default()).unwrap();
        assert_eq!(rg.marking(rg.initial_state()), net.initial_marking());
        assert_eq!(
            rg.find_state(&net.initial_marking()),
            Some(rg.initial_state())
        );
    }

    #[test]
    fn find_state_locates_every_state_and_rejects_unreachable() {
        let rg = diamond()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        for s in rg.state_ids() {
            assert_eq!(rg.find_state(&rg.marking(s)), Some(s));
        }
        let mut bogus = rg.marking(rg.initial_state());
        bogus.set(crate::net::PlaceId::from_index(0), 99);
        assert_eq!(rg.find_state(&bogus), None);
        // A marking over a different place count is never present.
        assert_eq!(rg.find_state(&Marking::empty(2)), None);
    }

    #[test]
    fn budget_exceeded_on_unbounded_net() {
        // t: {} is not allowed, so use a producer cycle that pumps tokens.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let sink = net.add_place("sink");
        net.add_transition([p], "pump", [p, sink]).unwrap();
        net.set_initial(p, 1);
        let err = net
            .reachability(&ReachabilityOptions::with_max_states(100))
            .unwrap_err();
        assert_eq!(err, PetriError::StateBudgetExceeded { budget: 100 });
    }

    #[test]
    fn multiset_markings_explored() {
        // Two tokens circulate through one place: states distinguish counts.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "a", [q]).unwrap();
        net.add_transition([q], "b", [p]).unwrap();
        net.set_initial(p, 2);
        let rg = net.reachability(&ReachabilityOptions::default()).unwrap();
        // (2,0), (1,1), (0,2)
        assert_eq!(rg.state_count(), 3);
        assert_eq!(rg.token_bound(), 2);
    }

    #[test]
    fn all_edges_enumerates_everything() {
        let rg = diamond()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        assert_eq!(rg.all_edges().count(), rg.edge_count());
    }

    #[test]
    fn as_digraph_mirrors_edges() {
        let rg = diamond()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        let g = rg.as_digraph();
        assert_eq!(g.node_count(), rg.state_count());
        let seen = g.reachable_from(rg.initial_state().index());
        assert!(seen.iter().all(|&b| b), "every state reachable from init");
    }

    #[test]
    fn compiled_matches_legacy_on_diamond() {
        let net = diamond();
        let a = net.reachability_bounded(&Budget::default()).into_value();
        let b = net
            .reachability_bounded_legacy(&Budget::default())
            .into_value();
        assert!(graphs_identical(&a, &b));
    }

    #[test]
    fn compiled_matches_legacy_under_exhaustion() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let sink = net.add_place("sink");
        net.add_transition([p], "pump", [p, sink]).unwrap();
        net.set_initial(p, 1);
        for budget in [Budget::states(5), Budget::new(100, 7), Budget::states(0)] {
            let a = net.reachability_bounded(&budget);
            let b = net.reachability_bounded_legacy(&budget);
            assert_eq!(a.exhausted(), b.exhausted(), "same exhaustion stats");
            assert!(graphs_identical(a.value(), b.value()), "same prefix");
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        let net = diamond();
        let seq = net.reachability_bounded(&Budget::default()).into_value();
        for threads in [1, 2, 3, 4] {
            let par = net
                .reachability_bounded_parallel(&Budget::default(), threads)
                .into_value();
            assert!(
                graphs_identical(&seq, &par),
                "thread count {threads} changed the graph"
            );
        }
    }

    #[test]
    fn parallel_exhaustion_matches_sequential() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let sink = net.add_place("sink");
        net.add_transition([p], "pump", [p, sink]).unwrap();
        net.set_initial(p, 1);
        let budget = Budget::states(17);
        let seq = net.reachability_bounded(&budget);
        for threads in [2, 4] {
            let par = net.reachability_bounded_parallel(&budget, threads);
            assert_eq!(seq.exhausted(), par.exhausted());
            assert!(graphs_identical(seq.value(), par.value()));
        }
    }

    #[test]
    fn parallel_handles_empty_preset_sources() {
        // An always-enabled source transition pumps a bounded buffer
        // drained by a consumer: candidate generation must include the
        // empty-preset transition in every state.
        let mut net: PetriNet<&str> = PetriNet::new();
        let buf = net.add_place("buf");
        net.add_transition([], "arrive", [buf]).unwrap();
        net.add_transition([buf], "serve", []).unwrap();
        let budget = Budget::states(50);
        let seq = net.reachability_bounded(&budget);
        let par = net.reachability_bounded_parallel(&budget, 4);
        assert_eq!(seq.exhausted(), par.exhausted());
        assert!(graphs_identical(seq.value(), par.value()));
    }

    #[test]
    fn edge_count_is_cached_and_consistent() {
        let rg = diamond()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        let summed: usize = rg.state_ids().map(|s| rg.edges(s).len()).sum();
        assert_eq!(rg.edge_count(), summed);
    }

    #[test]
    fn options_builders_compose() {
        let o = ReachabilityOptions::with_max_states(10).with_threads(4);
        assert_eq!(o.max_states, 10);
        assert_eq!(o.threads, 4);
        assert_eq!(ReachabilityOptions::default().threads, 1);
        let from_budget = ReachabilityOptions::from(Budget::states(7));
        assert_eq!(from_budget.max_states, 7);
        assert_eq!(from_budget.threads, 1);
    }

    #[test]
    fn try_from_index_rejects_overflow() {
        assert!(StateId::try_from_index(usize::MAX).is_err());
        assert_eq!(StateId::try_from_index(3).unwrap(), StateId(3));
    }

    #[test]
    fn resident_bytes_reported() {
        let rg = diamond()
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        assert!(rg.resident_marking_bytes() > 0);
    }
}
