//! General labeled Petri net kernel.
//!
//! This crate implements the Petri net substrate of de Jong & Lin,
//! *"A Communicating Petri Net Model for the Design of Concurrent
//! Asynchronous Modules"* (DAC 1994), Section 2.1: labeled Petri nets
//! `N = (A, P, →, M0)` with a set of action labels `A`, places `P`, a
//! transition relation `→ ⊆ 2^P × A × 2^P`, and an initial marking
//! `M0 : P → ℕ`.
//!
//! The kernel is deliberately *general*: markings are multisets (nets need
//! not be safe), presets and postsets are place **sets** as in the paper,
//! and every analysis that requires boundedness detects — rather than
//! assumes — it.
//!
//! # Modules
//!
//! * [`alphabet`] — the interned alphabet layer: dense [`Sym`] symbols,
//!   the label [`Interner`], and [`AlphaSet`] bitset label sets.
//! * [`net`] — the arena-indexed [`PetriNet`] data structure and builder API.
//! * [`budget`] — exploration [`Budget`]s, the [`Bounded`] partial-result
//!   wrapper and the tri-state [`Verdict`] of budgeted checkers.
//! * [`marking`] — multiset [`Marking`]s and the firing rule (Def 2.2).
//! * [`store`] — the interned flat-arena [`MarkingStore`] with its
//!   open-addressing hash index (the exploration kernel's state storage).
//! * [`compiled`] — the CSR-compiled firing rule ([`CompiledNet`]) with
//!   place→consumer candidate generation, and the [`NetId`]-keyed
//!   [`CompiledStore`].
//! * [`hash`] — the shared deterministic content-hash primitives
//!   (FNV-1a 64/128, SplitMix64 finalizer).
//! * [`netid`] — content-addressed structural identity: canonical form
//!   and the [`NetId`] cache key.
//! * [`reachability`] — explicit reachability graphs with state budgets,
//!   sequential or deterministically parallel.
//! * [`coverability`] — Karp–Miller style boundedness detection.
//! * [`analysis`] — liveness, safety, k-boundedness, deadlock, reversibility.
//! * [`structural`] — net-class recognition (state machine, marked graph,
//!   free choice) and strong connectivity.
//! * [`invariant`] — minimal P/T-semiflows via the Farkas algorithm.
//! * [`dead`] — dead-transition detection and removal (reachability-based
//!   and structural, for marked graphs).
//! * [`graph`] — the small directed-graph toolkit (Tarjan SCC,
//!   Bellman–Ford difference constraints) shared by the analyses.
//!
//! # Example
//!
//! ```
//! use cpn_petri::{PetriNet, ReachabilityOptions};
//!
//! # fn main() -> Result<(), cpn_petri::PetriError> {
//! // A two-place cycle: a fires, then b, forever.
//! let mut net: PetriNet<&'static str> = PetriNet::new();
//! let p = net.add_place("p");
//! let q = net.add_place("q");
//! net.add_transition([p], "a", [q])?;
//! net.add_transition([q], "b", [p])?;
//! net.set_initial(p, 1);
//!
//! let rg = net.reachability(&ReachabilityOptions::default())?;
//! assert_eq!(rg.state_count(), 2);
//! assert!(net.analysis(&rg).live);
//! # Ok(())
//! # }
//! ```

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod alphabet;
pub mod analysis;
pub mod budget;
pub mod compiled;
pub mod coverability;
pub mod dead;
pub mod error;
pub mod graph;
pub mod hash;
pub mod invariant;
pub mod label;
pub mod marking;
pub mod mg;
pub mod net;
pub mod netid;
pub mod reachability;
pub mod siphon;
pub mod store;
pub mod structural;

pub use alphabet::{AlphaSet, Interner, Sym};
pub use analysis::{Analysis, LivenessLevel};
pub use budget::{
    Bounded, Budget, CancelScope, CancelToken, Deadline, Exhausted, Meter, Resource, Verdict,
    DEFAULT_MAX_STATES, DEFAULT_MAX_TRANSITIONS, POLL_INTERVAL,
};
pub use compiled::{
    CandidateScratch, CompiledNet, CompiledStore, CompiledStoreStats, StubbornScratch, OMEGA,
};
pub use coverability::{CoverabilityOutcome, CoverabilityTree};
pub use dead::{dead_transitions_rg, dead_transitions_structural_mg, remove_dead};
pub use error::PetriError;
pub use invariant::{semiflows_p, semiflows_t, Semiflow};
pub use label::Label;
pub use marking::Marking;
pub use mg::{mg_live_structural, mg_place_bounds, mg_safe_structural, token_free_cycle};
pub use net::{PetriNet, Place, PlaceId, Transition, TransitionId};
pub use netid::{canonical_form, canonical_order, CanonicalOrder, NetId};
pub use reachability::{
    reachability_bounded_compiled, reachability_bounded_parallel_compiled,
    reachability_bounded_spilled, ReachabilityGraph, ReachabilityOptions, SpilledReachability,
    StateId,
};
pub use siphon::{commoner_live, is_siphon, is_trap, max_siphon_in, max_trap_in, minimal_siphons};
pub use store::{MarkingStore, SpillConfig, SpillStats, SpillStore};
pub use structural::{NetClass, StructuralReport};
