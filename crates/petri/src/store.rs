//! The interned marking arena behind every explorer.
//!
//! [`MarkingStore`] keeps each distinct marking exactly once, in one flat
//! `Vec<u32>` with `stride = place count` — no per-marking heap
//! allocation, no duplicate key storage. Membership queries go through an
//! in-tree open-addressing hash index whose slots hold only a
//! `(hash fragment, state id)` pair packed in a `u64`; full-marking
//! comparison reads straight out of the arena. This replaces the seed
//! kernel's double storage (a `Vec<Marking>` *plus* a
//! `HashMap<Marking, StateId>` cloning every marking into its key set),
//! cutting resident marking memory by more than half and removing one
//! allocation per discovered state from the hot loop.
//!
//! Collision policy: linear probing, no deletions (exploration only ever
//! inserts), table grown at 7/8 load with a full rehash from the per-state
//! hash cache. The 64-bit hash is also the shard-ownership key of the
//! parallel explorer (`shard = high bits mod threads`), so a marking's
//! owner is a pure function of its content.

use crate::error::PetriError;

/// Sentinel for an empty index slot.
const EMPTY: u64 = 0;
/// Initial table capacity (power of two).
const INITIAL_SLOTS: usize = 16;

/// A deduplicating arena of fixed-stride `u32` vectors (markings, or any
/// packed per-state payload such as the STG kernel's marking+encoding
/// words).
///
/// Ids are dense `u32`s in insertion order, so the store doubles as the
/// state numbering of a breadth-first exploration.
///
/// # Example
///
/// ```
/// use cpn_petri::store::MarkingStore;
///
/// let mut store = MarkingStore::new(3);
/// let (a, new_a) = store.intern(&[1, 0, 2]);
/// let (b, new_b) = store.intern(&[1, 0, 2]);
/// assert_eq!((a, new_a), (0, true));
/// assert_eq!((b, new_b), (0, false));
/// assert_eq!(store.get(0), &[1, 0, 2]);
/// assert_eq!(store.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct MarkingStore {
    stride: usize,
    /// Flat arena: marking `i` lives at `data[i*stride .. (i+1)*stride]`.
    data: Vec<u32>,
    /// Full 64-bit hash per stored marking (rehash + shard ownership).
    hashes: Vec<u64>,
    /// Open-addressing slots: `(hash & HIGH_MASK) | (id + 1)`, 0 = empty.
    table: Vec<u64>,
    mask: usize,
    len: usize,
}

const HIGH_MASK: u64 = 0xFFFF_FFFF_0000_0000;

impl MarkingStore {
    /// An empty store over `stride` places.
    pub fn new(stride: usize) -> Self {
        Self::with_capacity(stride, 0)
    }

    /// An empty store pre-sized for about `cap` markings.
    pub fn with_capacity(stride: usize, cap: usize) -> Self {
        let slots = (cap * 8 / 7 + 1).next_power_of_two().max(INITIAL_SLOTS);
        MarkingStore {
            stride,
            data: Vec::with_capacity(cap * stride),
            hashes: Vec::with_capacity(cap),
            table: vec![EMPTY; slots],
            mask: slots - 1,
            len: 0,
        }
    }

    /// The per-marking stride (place count).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of distinct markings stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no markings.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The marking with id `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> &[u32] {
        assert!(i < self.len, "marking id {i} out of range");
        &self.data[i * self.stride..(i + 1) * self.stride]
    }

    /// The cached 64-bit hash of marking `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn hash_of(&self, i: usize) -> u64 {
        self.hashes[i]
    }

    /// Iterates over all stored markings in id order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// SplitMix64 finalizer: full avalanche, so summing outputs keeps
    /// high-bit entropy (the index tag and the shard router both read
    /// the high bits).
    #[inline]
    fn mix(z: u64) -> u64 {
        let z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The contribution of `(position, value)` to a marking's hash.
    ///
    /// [`MarkingStore::hash_slice`] is the wrapping **sum** of these
    /// per-entry terms, so firing a transition can update a cached hash
    /// in O(places touched): subtract the old entry's term, add the new
    /// one (see `CompiledNet::apply_hashed`). The position is folded
    /// into the mixed word, so permuted slices still hash differently.
    #[inline]
    pub fn entry_hash(pos: usize, val: u32) -> u64 {
        Self::mix(((pos as u64) << 32) ^ u64::from(val))
    }

    /// The content hash used by the index and the parallel shard router.
    ///
    /// A commutative sum of [`MarkingStore::entry_hash`] terms seeded by
    /// the length: deterministic, allocation-free, identical across runs
    /// and thread counts, and incrementally updatable under firing.
    #[inline]
    pub fn hash_slice(m: &[u32]) -> u64 {
        let mut h = Self::mix(0x9E37_79B9_7F4A_7C15 ^ (m.len() as u64));
        for (i, &w) in m.iter().enumerate() {
            h = h.wrapping_add(Self::entry_hash(i, w));
        }
        h
    }

    /// Looks up a marking, returning its id if present.
    pub fn find(&self, m: &[u32]) -> Option<u32> {
        self.find_hashed(m, Self::hash_slice(m))
    }

    /// [`MarkingStore::find`] with the hash precomputed by the caller.
    pub fn find_hashed(&self, m: &[u32], hash: u64) -> Option<u32> {
        debug_assert_eq!(m.len(), self.stride, "marking over different net");
        let tag = hash & HIGH_MASK;
        let mut slot = (hash as usize) & self.mask;
        loop {
            let entry = self.table[slot];
            if entry == EMPTY {
                return None;
            }
            if entry & HIGH_MASK == tag {
                let id = ((entry & !HIGH_MASK) - 1) as usize;
                if &self.data[id * self.stride..(id + 1) * self.stride] == m {
                    return Some(id as u32);
                }
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Inserts a marking the caller has verified to be absent
    /// (via [`MarkingStore::find_hashed`] with the same hash) and returns
    /// its new id.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::IndexOverflow`] when the store already holds
    /// `u32::MAX - 1` markings (the id space of the packed index slots),
    /// or [`PetriError::AllocationFailed`] when growing the arena or the
    /// slot table is refused by the allocator. Either way the store is
    /// left unchanged and fully usable — explorers treat both exactly
    /// like budget exhaustion and hand back the prefix built so far, so
    /// one pathological net degrades a worker instead of killing it.
    pub fn insert_new_hashed(&mut self, m: &[u32], hash: u64) -> Result<u32, PetriError> {
        debug_assert_eq!(m.len(), self.stride, "marking over different net");
        debug_assert!(self.find_hashed(m, hash).is_none(), "duplicate insert");
        if self.len >= (u32::MAX - 1) as usize {
            return Err(PetriError::IndexOverflow { index: self.len });
        }
        if (self.len + 1) * 8 >= self.table.len() * 7 {
            self.grow()?;
        }
        self.data
            .try_reserve(self.stride)
            .map_err(|_| PetriError::AllocationFailed {
                bytes: self.stride * std::mem::size_of::<u32>(),
            })?;
        self.hashes
            .try_reserve(1)
            .map_err(|_| PetriError::AllocationFailed {
                bytes: std::mem::size_of::<u64>(),
            })?;
        let id = self.len as u32;
        self.data.extend_from_slice(m);
        self.hashes.push(hash);
        self.len += 1;
        self.place_slot(hash, id);
        Ok(id)
    }

    /// Finds or inserts a marking; returns `(id, newly_inserted)`.
    ///
    /// # Errors
    ///
    /// Propagates [`MarkingStore::insert_new_hashed`] failures (id-space
    /// overflow, allocator refusal); the store is unchanged on error.
    pub fn try_intern(&mut self, m: &[u32]) -> Result<(u32, bool), PetriError> {
        let hash = Self::hash_slice(m);
        match self.find_hashed(m, hash) {
            Some(id) => Ok((id, false)),
            None => self.insert_new_hashed(m, hash).map(|id| (id, true)),
        }
    }

    /// Finds or inserts a marking; returns `(id, newly_inserted)`.
    ///
    /// # Panics
    ///
    /// Panics if the 32-bit id space overflows (more than ~4 billion
    /// distinct markings) or the allocator refuses growth; budgeted
    /// explorers stop long before and use the fallible
    /// [`MarkingStore::try_intern`] / [`MarkingStore::insert_new_hashed`]
    /// on their hot paths.
    pub fn intern(&mut self, m: &[u32]) -> (u32, bool) {
        match self.try_intern(m) {
            Ok(r) => r,
            Err(e) => panic!("marking arena overflow: {e}"),
        }
    }

    /// Bytes resident in the arena, hash cache and index — the
    /// `peak_resident_markings` counter of `BENCH_explore.json`.
    pub fn resident_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<u32>()
            + self.hashes.capacity() * std::mem::size_of::<u64>()
            + self.table.capacity() * std::mem::size_of::<u64>()
    }

    fn place_slot(&mut self, hash: u64, id: u32) {
        let entry = (hash & HIGH_MASK) | (u64::from(id) + 1);
        let mut slot = (hash as usize) & self.mask;
        while self.table[slot] != EMPTY {
            slot = (slot + 1) & self.mask;
        }
        self.table[slot] = entry;
    }

    /// Doubles the slot table. On allocator refusal the old table (and
    /// the whole store) is left intact, so a failed grow is retryable
    /// and never corrupts the index — the caller sees a graceful
    /// [`PetriError::AllocationFailed`] instead of an abort.
    fn grow(&mut self) -> Result<(), PetriError> {
        let new_slots = self.table.len() * 2;
        let mut table = Vec::new();
        table
            .try_reserve_exact(new_slots)
            .map_err(|_| PetriError::AllocationFailed {
                bytes: new_slots * std::mem::size_of::<u64>(),
            })?;
        table.resize(new_slots, EMPTY);
        self.table = table;
        self.mask = new_slots - 1;
        for i in 0..self.len {
            let hash = self.hashes[i];
            self.place_slot(hash, i as u32);
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_and_preserves_order() {
        let mut s = MarkingStore::new(2);
        assert_eq!(s.intern(&[0, 1]), (0, true));
        assert_eq!(s.intern(&[1, 0]), (1, true));
        assert_eq!(s.intern(&[0, 1]), (0, false));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0), &[0, 1]);
        assert_eq!(s.get(1), &[1, 0]);
    }

    #[test]
    fn find_distinguishes_all_members() {
        let mut s = MarkingStore::new(3);
        for i in 0..500u32 {
            s.intern(&[i, i / 3, i % 7]);
        }
        assert_eq!(s.len(), 500);
        for i in 0..500u32 {
            assert_eq!(s.find(&[i, i / 3, i % 7]), Some(i));
        }
        assert_eq!(s.find(&[1000, 0, 0]), None);
    }

    #[test]
    fn growth_rehashes_correctly() {
        let mut s = MarkingStore::with_capacity(1, 0);
        for i in 0..10_000u32 {
            assert_eq!(s.intern(&[i]), (i, true));
        }
        for i in 0..10_000u32 {
            assert_eq!(s.find(&[i]), Some(i));
            assert_eq!(s.get(i as usize), &[i]);
        }
    }

    #[test]
    fn zero_stride_degenerate_net() {
        let mut s = MarkingStore::new(0);
        assert_eq!(s.intern(&[]), (0, true));
        assert_eq!(s.intern(&[]), (0, false));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0), &[] as &[u32]);
    }

    #[test]
    fn try_intern_matches_intern_and_survives_growth() {
        let mut a = MarkingStore::new(2);
        let mut b = MarkingStore::new(2);
        for i in 0..5_000u32 {
            let m = [i % 97, i];
            assert_eq!(a.try_intern(&m).unwrap(), b.intern(&m));
        }
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn failed_insert_leaves_store_usable() {
        // Simulate the id-space cap by filling `len` artificially is not
        // possible without 4 billion inserts; instead check the error
        // path contract at the API level: an error from
        // `insert_new_hashed` must not disturb existing content.
        let mut s = MarkingStore::new(1);
        s.intern(&[1]);
        s.intern(&[2]);
        // A duplicate insert is a caller bug (debug_assert), so probe the
        // non-mutating failure contract via find on the intact store.
        assert_eq!(s.find(&[1]), Some(0));
        assert_eq!(s.find(&[2]), Some(1));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn hash_is_content_deterministic() {
        let a = MarkingStore::hash_slice(&[1, 2, 3]);
        let b = MarkingStore::hash_slice(&[1, 2, 3]);
        let c = MarkingStore::hash_slice(&[3, 2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c, "order must matter");
    }

    #[test]
    fn resident_bytes_scales_with_content() {
        let mut s = MarkingStore::new(4);
        let before = s.resident_bytes();
        for i in 0..1000u32 {
            s.intern(&[i, 0, 0, 0]);
        }
        assert!(s.resident_bytes() > before);
        // Arena dominates: 16 bytes of marking + 8 of hash per state,
        // plus the slot table.
        assert!(s.resident_bytes() < 1000 * 64);
    }
}
