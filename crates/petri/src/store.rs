//! The interned marking arena behind every explorer.
//!
//! [`MarkingStore`] keeps each distinct marking exactly once, in one flat
//! `Vec<u32>` with `stride = place count` — no per-marking heap
//! allocation, no duplicate key storage. Membership queries go through an
//! in-tree open-addressing hash index whose slots hold only a
//! `(hash fragment, state id)` pair packed in a `u64`; full-marking
//! comparison reads straight out of the arena. This replaces the seed
//! kernel's double storage (a `Vec<Marking>` *plus* a
//! `HashMap<Marking, StateId>` cloning every marking into its key set),
//! cutting resident marking memory by more than half and removing one
//! allocation per discovered state from the hot loop.
//!
//! Collision policy: linear probing, no deletions (exploration only ever
//! inserts), table grown at 7/8 load with a full rehash from the per-state
//! hash cache. The 64-bit hash is also the shard-ownership key of the
//! parallel explorer (`shard = high bits mod threads`), so a marking's
//! owner is a pure function of its content.

use crate::error::PetriError;

/// Sentinel for an empty index slot.
const EMPTY: u64 = 0;
/// Initial table capacity (power of two).
const INITIAL_SLOTS: usize = 16;
/// Ceiling on what a [`Budget`](crate::budget::Budget) hint may pre-size
/// the slot table to (2^26 slots = 512 MiB of index).
const HINT_SLOTS_CAP: usize = 1 << 26;
/// Table size at which a pending budget hint is applied in one jump.
/// Below this a run has not proven it is big, and a tiny exploration
/// should not fault in a multi-megabyte table; above it, one resize
/// straight to the hinted size replaces the remaining doubling cascade.
const HINT_JUMP_SLOTS: usize = 1 << 15;

/// A deduplicating arena of fixed-stride `u32` vectors (markings, or any
/// packed per-state payload such as the STG kernel's marking+encoding
/// words).
///
/// Ids are dense `u32`s in insertion order, so the store doubles as the
/// state numbering of a breadth-first exploration.
///
/// # Example
///
/// ```
/// use cpn_petri::store::MarkingStore;
///
/// let mut store = MarkingStore::new(3);
/// let (a, new_a) = store.intern(&[1, 0, 2]);
/// let (b, new_b) = store.intern(&[1, 0, 2]);
/// assert_eq!((a, new_a), (0, true));
/// assert_eq!((b, new_b), (0, false));
/// assert_eq!(store.get(0), &[1, 0, 2]);
/// assert_eq!(store.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct MarkingStore {
    stride: usize,
    /// Flat arena: marking `i` lives at `data[i*stride .. (i+1)*stride]`.
    data: Vec<u32>,
    /// Full 64-bit hash per stored marking (rehash + shard ownership).
    hashes: Vec<u64>,
    /// Open-addressing slots: `(hash & HIGH_MASK) | (id + 1)`, 0 = empty.
    table: Vec<u64>,
    mask: usize,
    len: usize,
    /// Slot-count target from a finite state budget (0 = no hint): once
    /// the table outgrows `HINT_JUMP_SLOTS`, the next growth jumps
    /// straight here instead of doubling through every power of two.
    hint_slots: usize,
}

const HIGH_MASK: u64 = 0xFFFF_FFFF_0000_0000;

impl MarkingStore {
    /// An empty store over `stride` places.
    pub fn new(stride: usize) -> Self {
        Self::with_capacity(stride, 0)
    }

    /// An empty store pre-sized for about `cap` markings.
    pub fn with_capacity(stride: usize, cap: usize) -> Self {
        let slots = (cap * 8 / 7 + 1).next_power_of_two().max(INITIAL_SLOTS);
        MarkingStore {
            stride,
            data: Vec::with_capacity(cap * stride),
            hashes: Vec::with_capacity(cap),
            table: vec![EMPTY; slots],
            mask: slots - 1,
            len: 0,
            hint_slots: 0,
        }
    }

    /// An empty store whose slot table growth is pre-planned from a state
    /// budget: explorations that stay small behave exactly like
    /// [`MarkingStore::new`], but once the table proves it is on a big
    /// run (> `HINT_JUMP_SLOTS` slots) the next growth resizes straight
    /// to a table fitting `max_states` at the 7/8 load ceiling — the
    /// doubling-and-rehash cascade of a multi-million-state exploration
    /// collapses into a single jump. An effectively infinite budget
    /// (`usize::MAX`-ish, as produced by [`crate::budget::Budget`] with
    /// no state cap) leaves growth untouched.
    pub fn with_state_budget(stride: usize, max_states: usize) -> Self {
        let mut store = Self::new(stride);
        if max_states < usize::MAX / 2 {
            let capped = max_states.min(HINT_SLOTS_CAP);
            let want = (capped * 8 / 7 + 1).next_power_of_two().min(HINT_SLOTS_CAP);
            if want > HINT_JUMP_SLOTS {
                store.hint_slots = want;
            }
        }
        store
    }

    /// The per-marking stride (place count).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of distinct markings stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no markings.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The marking with id `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> &[u32] {
        assert!(i < self.len, "marking id {i} out of range");
        &self.data[i * self.stride..(i + 1) * self.stride]
    }

    /// The cached 64-bit hash of marking `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn hash_of(&self, i: usize) -> u64 {
        self.hashes[i]
    }

    /// Iterates over all stored markings in id order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// SplitMix64 finalizer (see [`crate::hash::mix64`]): full avalanche,
    /// so summing outputs keeps high-bit entropy (the index tag and the
    /// shard router both read the high bits).
    #[inline]
    fn mix(z: u64) -> u64 {
        crate::hash::mix64(z)
    }

    /// The contribution of `(position, value)` to a marking's hash.
    ///
    /// [`MarkingStore::hash_slice`] is the wrapping **sum** of these
    /// per-entry terms, so firing a transition can update a cached hash
    /// in O(places touched): subtract the old entry's term, add the new
    /// one (see `CompiledNet::apply_hashed`). The position is folded
    /// into the mixed word, so permuted slices still hash differently.
    #[inline]
    pub fn entry_hash(pos: usize, val: u32) -> u64 {
        Self::mix(((pos as u64) << 32) ^ u64::from(val))
    }

    /// The content hash used by the index and the parallel shard router.
    ///
    /// A commutative sum of [`MarkingStore::entry_hash`] terms seeded by
    /// the length: deterministic, allocation-free, identical across runs
    /// and thread counts, and incrementally updatable under firing.
    #[inline]
    pub fn hash_slice(m: &[u32]) -> u64 {
        let mut h = Self::mix(0x9E37_79B9_7F4A_7C15 ^ (m.len() as u64));
        for (i, &w) in m.iter().enumerate() {
            h = h.wrapping_add(Self::entry_hash(i, w));
        }
        h
    }

    /// Looks up a marking, returning its id if present.
    pub fn find(&self, m: &[u32]) -> Option<u32> {
        self.find_hashed(m, Self::hash_slice(m))
    }

    /// [`MarkingStore::find`] with the hash precomputed by the caller.
    pub fn find_hashed(&self, m: &[u32], hash: u64) -> Option<u32> {
        debug_assert_eq!(m.len(), self.stride, "marking over different net");
        let tag = hash & HIGH_MASK;
        let mut slot = (hash as usize) & self.mask;
        loop {
            let entry = self.table[slot];
            if entry == EMPTY {
                return None;
            }
            if entry & HIGH_MASK == tag {
                let id = ((entry & !HIGH_MASK) - 1) as usize;
                if &self.data[id * self.stride..(id + 1) * self.stride] == m {
                    return Some(id as u32);
                }
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Inserts a marking the caller has verified to be absent
    /// (via [`MarkingStore::find_hashed`] with the same hash) and returns
    /// its new id.
    ///
    /// # Errors
    ///
    /// Returns [`PetriError::IndexOverflow`] when the store already holds
    /// `u32::MAX - 1` markings (the id space of the packed index slots),
    /// or [`PetriError::AllocationFailed`] when growing the arena or the
    /// slot table is refused by the allocator. Either way the store is
    /// left unchanged and fully usable — explorers treat both exactly
    /// like budget exhaustion and hand back the prefix built so far, so
    /// one pathological net degrades a worker instead of killing it.
    pub fn insert_new_hashed(&mut self, m: &[u32], hash: u64) -> Result<u32, PetriError> {
        debug_assert_eq!(m.len(), self.stride, "marking over different net");
        debug_assert!(self.find_hashed(m, hash).is_none(), "duplicate insert");
        if self.len >= (u32::MAX - 1) as usize {
            return Err(PetriError::IndexOverflow { index: self.len });
        }
        if (self.len + 1) * 8 >= self.table.len() * 7 {
            self.grow()?;
        }
        self.data
            .try_reserve(self.stride)
            .map_err(|_| PetriError::AllocationFailed {
                bytes: self.stride * std::mem::size_of::<u32>(),
            })?;
        self.hashes
            .try_reserve(1)
            .map_err(|_| PetriError::AllocationFailed {
                bytes: std::mem::size_of::<u64>(),
            })?;
        let id = self.len as u32;
        self.data.extend_from_slice(m);
        self.hashes.push(hash);
        self.len += 1;
        self.place_slot(hash, id);
        Ok(id)
    }

    /// Finds or inserts a marking; returns `(id, newly_inserted)`.
    ///
    /// # Errors
    ///
    /// Propagates [`MarkingStore::insert_new_hashed`] failures (id-space
    /// overflow, allocator refusal); the store is unchanged on error.
    pub fn try_intern(&mut self, m: &[u32]) -> Result<(u32, bool), PetriError> {
        let hash = Self::hash_slice(m);
        match self.find_hashed(m, hash) {
            Some(id) => Ok((id, false)),
            None => self.insert_new_hashed(m, hash).map(|id| (id, true)),
        }
    }

    /// Finds or inserts a marking; returns `(id, newly_inserted)`.
    ///
    /// # Panics
    ///
    /// Panics if the 32-bit id space overflows (more than ~4 billion
    /// distinct markings) or the allocator refuses growth; budgeted
    /// explorers stop long before and use the fallible
    /// [`MarkingStore::try_intern`] / [`MarkingStore::insert_new_hashed`]
    /// on their hot paths.
    pub fn intern(&mut self, m: &[u32]) -> (u32, bool) {
        match self.try_intern(m) {
            Ok(r) => r,
            Err(e) => panic!("marking arena overflow: {e}"),
        }
    }

    /// Bytes resident in the arena, hash cache and index — the
    /// `peak_resident_markings` counter of `BENCH_explore.json`.
    pub fn resident_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<u32>()
            + self.hashes.capacity() * std::mem::size_of::<u64>()
            + self.table.capacity() * std::mem::size_of::<u64>()
    }

    fn place_slot(&mut self, hash: u64, id: u32) {
        let entry = (hash & HIGH_MASK) | (u64::from(id) + 1);
        let mut slot = (hash as usize) & self.mask;
        while self.table[slot] != EMPTY {
            slot = (slot + 1) & self.mask;
        }
        self.table[slot] = entry;
    }

    /// Doubles the slot table. On allocator refusal the old table (and
    /// the whole store) is left intact, so a failed grow is retryable
    /// and never corrupts the index — the caller sees a graceful
    /// [`PetriError::AllocationFailed`] instead of an abort.
    fn grow(&mut self) -> Result<(), PetriError> {
        let doubled = self.table.len() * 2;
        let new_slots = if self.hint_slots > doubled && self.table.len() >= HINT_JUMP_SLOTS {
            self.hint_slots
        } else {
            doubled
        };
        let mut table = Vec::new();
        table
            .try_reserve_exact(new_slots)
            .map_err(|_| PetriError::AllocationFailed {
                bytes: new_slots * std::mem::size_of::<u64>(),
            })?;
        table.resize(new_slots, EMPTY);
        self.table = table;
        self.mask = new_slots - 1;
        for i in 0..self.len {
            let hash = self.hashes[i];
            self.place_slot(hash, i as u32);
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Spillable tier
// ----------------------------------------------------------------------

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Configuration of the spillable marking tier ([`SpillStore`]).
#[derive(Clone, Debug)]
pub struct SpillConfig {
    /// Ceiling on resident **encoded row payload** bytes (delta pairs +
    /// row offsets of all resident segments). When an insert pushes past
    /// it, cold sealed segments are written to disk and dropped from RAM
    /// until the payload fits again. The hash cache, the slot table and
    /// the per-segment reference markings always stay resident — they
    /// are what keeps lookups from touching disk on the hot path.
    pub resident_payload_bytes: usize,
    /// Rows per segment. Only full (sealed) segments spill; the tail
    /// segment currently being filled never does.
    pub segment_rows: usize,
    /// Directory for the spill file. `None` uses the system temp dir.
    /// The file is unlinked at creation where the platform allows it, so
    /// even a crashed process leaks no on-disk state.
    pub spill_dir: Option<PathBuf>,
}

impl Default for SpillConfig {
    /// 64 MiB of resident payload, 4096-row segments, system temp dir.
    fn default() -> Self {
        SpillConfig {
            resident_payload_bytes: 64 << 20,
            segment_rows: 4096,
            spill_dir: None,
        }
    }
}

impl SpillConfig {
    /// Config with the given resident-payload ceiling.
    pub fn with_resident_bytes(bytes: usize) -> Self {
        SpillConfig {
            resident_payload_bytes: bytes,
            ..Self::default()
        }
    }
}

/// Counters describing how much a [`SpillStore`] actually spilled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Total segments (resident + spilled).
    pub segments: usize,
    /// Segments currently resident in RAM.
    pub resident_segments: usize,
    /// Bytes ever written to the spill file (segments write at most once).
    pub spilled_bytes: u64,
    /// Segments re-read from disk (page-ins).
    pub page_ins: u64,
    /// Segments evicted to disk (page-outs).
    pub page_outs: u64,
    /// Encoded payload bytes currently resident.
    pub resident_payload_bytes: usize,
}

/// One run of `segment_rows` consecutive ids, delta-encoded against a
/// shared reference marking (the first row of the segment). BFS
/// successors differ from their parent in a handful of places, and BFS
/// discovery order keeps parents and children close in id space, so the
/// deltas stay short.
#[derive(Debug)]
struct Segment {
    /// The reference marking (always resident; also row 0's content).
    reference: Vec<u32>,
    /// Row `j`'s delta pairs live at
    /// `payload[offsets[j] as usize..offsets[j + 1] as usize]`.
    /// Empty when paged out.
    offsets: Vec<u32>,
    /// Flat `(position, value)` pairs. Empty when paged out.
    payload: Vec<u32>,
    /// Rows stored (== `segment_rows` once sealed).
    rows: usize,
    /// Byte offset + word counts in the spill file, once written.
    disk: Option<(u64, u32, u32)>,
    /// Sealed segments are immutable and eligible for eviction.
    sealed: bool,
    /// Whether `offsets`/`payload` are in RAM.
    resident: bool,
    /// Eviction clock stamp (oldest goes first).
    touch: u64,
}

impl Segment {
    fn fresh(reference: Vec<u32>) -> Self {
        Segment {
            reference,
            offsets: vec![0, 0],
            payload: Vec::new(),
            rows: 1,
            disk: None,
            sealed: false,
            resident: true,
            touch: 0,
        }
    }

    /// Resident payload footprint: encoded pairs plus the offset table.
    fn payload_bytes(&self) -> usize {
        (self.payload.len() + self.offsets.len()) * std::mem::size_of::<u32>()
    }
}

fn spill_err(e: std::io::Error) -> PetriError {
    PetriError::SpillIo {
        detail: e.to_string(),
    }
}

/// Append-only spill file. Sealed segments are immutable, so each is
/// written at most once; re-eviction after a page-in is free.
#[derive(Debug)]
struct Pager {
    file: File,
    end: u64,
    /// Kept only if the eager unlink failed (non-POSIX semantics); the
    /// `Drop` impl then removes the file by path.
    path: Option<PathBuf>,
}

impl Pager {
    fn open(dir: Option<&Path>) -> Result<Self, PetriError> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = dir.map_or_else(std::env::temp_dir, Path::to_path_buf);
        let name = format!(
            "cpn-spill-{}-{}.bin",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        );
        let path = dir.join(name);
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(spill_err)?;
        // On POSIX the unlinked file stays usable through the handle and
        // vanishes even if the process dies; elsewhere fall back to
        // removal on drop.
        let path = match std::fs::remove_file(&path) {
            Ok(()) => None,
            Err(_) => Some(path),
        };
        Ok(Pager { file, end: 0, path })
    }

    /// Appends two word runs back to back; returns the byte offset.
    fn append(&mut self, a: &[u32], b: &[u32]) -> Result<u64, PetriError> {
        let off = self.end;
        self.file.seek(SeekFrom::Start(off)).map_err(spill_err)?;
        let mut buf = Vec::with_capacity((a.len() + b.len()) * 4);
        for &w in a.iter().chain(b) {
            buf.extend_from_slice(&w.to_le_bytes());
        }
        self.file.write_all(&buf).map_err(spill_err)?;
        self.end = off + buf.len() as u64;
        Ok(off)
    }

    /// Reads `words` u32s starting at byte offset `off` into `out`.
    fn read_words(&mut self, off: u64, words: usize, out: &mut Vec<u32>) -> Result<(), PetriError> {
        self.file.seek(SeekFrom::Start(off)).map_err(spill_err)?;
        let mut buf = vec![0u8; words * 4];
        self.file.read_exact(&mut buf).map_err(spill_err)?;
        out.clear();
        out.reserve(words);
        for chunk in buf.chunks_exact(4) {
            out.push(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        Ok(())
    }
}

impl Drop for Pager {
    fn drop(&mut self) {
        if let Some(p) = &self.path {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// A [`MarkingStore`]-shaped arena whose marking rows are delta-encoded
/// in segments and spillable to disk, so an exploration's resident set is
/// bounded by [`SpillConfig::resident_payload_bytes`] instead of
/// `states × places × 4` bytes.
///
/// The membership index (slot table + full 64-bit hash per row) is always
/// resident: a negative lookup — the overwhelmingly common case during
/// exploration — never touches disk, and a positive lookup pages in at
/// most one segment. Ids are dense `u32`s in insertion order, exactly
/// like [`MarkingStore`], so the sequential explorer runs unchanged on
/// either tier and produces bit-identical numbering.
///
/// Rows are materialized by copy ([`SpillStore::get_into`]) rather than
/// borrowed: a paged-out row has no stable address to borrow from.
#[derive(Debug)]
pub struct SpillStore {
    stride: usize,
    len: usize,
    table: Vec<u64>,
    mask: usize,
    hashes: Vec<u64>,
    seg_rows: usize,
    segments: Vec<Segment>,
    resident_payload: usize,
    budget_bytes: usize,
    spill_dir: Option<PathBuf>,
    pager: Option<Pager>,
    clock: u64,
    page_ins: u64,
    page_outs: u64,
    spilled_bytes: u64,
    /// Largest token count ever inserted (the token bound of a completed
    /// exploration) — tracked incrementally so computing it never pages.
    max_word: u32,
}

impl SpillStore {
    /// An empty spillable store over `stride` places.
    ///
    /// `state_hint` pre-sizes the slot table like
    /// [`MarkingStore::with_state_budget`]; pass `usize::MAX` for no
    /// hint.
    pub fn new(stride: usize, config: &SpillConfig, state_hint: usize) -> Self {
        let slots = if state_hint < usize::MAX / 2 {
            let capped = state_hint.min(HINT_SLOTS_CAP);
            (capped * 8 / 7 + 1)
                .next_power_of_two()
                .clamp(INITIAL_SLOTS, HINT_SLOTS_CAP)
        } else {
            INITIAL_SLOTS
        };
        SpillStore {
            stride,
            len: 0,
            table: vec![EMPTY; slots],
            mask: slots - 1,
            hashes: Vec::new(),
            seg_rows: config.segment_rows.max(2),
            segments: Vec::new(),
            resident_payload: 0,
            budget_bytes: config.resident_payload_bytes,
            spill_dir: config.spill_dir.clone(),
            pager: None,
            clock: 0,
            page_ins: 0,
            page_outs: 0,
            spilled_bytes: 0,
            max_word: 0,
        }
    }

    /// The per-marking stride (place count).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of distinct markings stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no markings.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The cached 64-bit hash of marking `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn hash_of(&self, i: usize) -> u64 {
        self.hashes[i]
    }

    /// The largest token count any stored marking puts in any place.
    pub fn max_word(&self) -> u32 {
        self.max_word
    }

    /// Spill activity counters.
    pub fn stats(&self) -> SpillStats {
        SpillStats {
            segments: self.segments.len(),
            resident_segments: self.segments.iter().filter(|s| s.resident).count(),
            spilled_bytes: self.spilled_bytes,
            page_ins: self.page_ins,
            page_outs: self.page_outs,
            resident_payload_bytes: self.resident_payload,
        }
    }

    /// Bytes currently resident: index + hashes + references + payload.
    pub fn resident_bytes(&self) -> usize {
        self.table.capacity() * std::mem::size_of::<u64>()
            + self.hashes.capacity() * std::mem::size_of::<u64>()
            + self
                .segments
                .iter()
                .map(|s| s.reference.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>()
            + self.resident_payload
    }

    /// Materializes marking `i` into `out` (cleared first), paging its
    /// segment in if needed.
    ///
    /// # Errors
    ///
    /// [`PetriError::SpillIo`] if the page-in fails.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get_into(&mut self, i: usize, out: &mut Vec<u32>) -> Result<(), PetriError> {
        assert!(i < self.len, "marking id {i} out of range");
        let seg_idx = i / self.seg_rows;
        self.ensure_resident(seg_idx)?;
        let seg = &self.segments[seg_idx];
        let row = i % self.seg_rows;
        out.clear();
        out.extend_from_slice(&seg.reference);
        let (a, b) = (seg.offsets[row] as usize, seg.offsets[row + 1] as usize);
        for pair in seg.payload[a..b].chunks_exact(2) {
            out[pair[0] as usize] = pair[1];
        }
        Ok(())
    }

    /// Looks up a marking, returning its id if present. May page in the
    /// candidate's segment to confirm equality (at most one segment: the
    /// full 64-bit hash is compared first, so false candidates are
    /// rejected without touching disk in all but ~2^-64 of probes).
    ///
    /// # Errors
    ///
    /// [`PetriError::SpillIo`] if a confirming page-in fails.
    pub fn find_hashed(&mut self, m: &[u32], hash: u64) -> Result<Option<u32>, PetriError> {
        debug_assert_eq!(m.len(), self.stride, "marking over different net");
        let tag = hash & HIGH_MASK;
        let mut slot = (hash as usize) & self.mask;
        loop {
            let entry = self.table[slot];
            if entry == EMPTY {
                return Ok(None);
            }
            if entry & HIGH_MASK == tag {
                let id = ((entry & !HIGH_MASK) - 1) as usize;
                if self.hashes[id] == hash && self.row_matches(id, m)? {
                    return Ok(Some(id as u32));
                }
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Inserts a marking the caller has verified absent (via
    /// [`SpillStore::find_hashed`] with the same hash); returns its id.
    ///
    /// # Errors
    ///
    /// [`PetriError::IndexOverflow`] at the 32-bit id cap,
    /// [`PetriError::AllocationFailed`] on refused growth, or
    /// [`PetriError::SpillIo`] if making room required an eviction that
    /// failed. The store stays usable on error.
    pub fn insert_new_hashed(&mut self, m: &[u32], hash: u64) -> Result<u32, PetriError> {
        debug_assert_eq!(m.len(), self.stride, "marking over different net");
        if self.len >= (u32::MAX - 1) as usize {
            return Err(PetriError::IndexOverflow { index: self.len });
        }
        if (self.len + 1) * 8 >= self.table.len() * 7 {
            self.grow()?;
        }
        let start_new = self
            .segments
            .last()
            .is_none_or(|tail| tail.rows == self.seg_rows);
        if start_new {
            if let Some(tail) = self.segments.last_mut() {
                tail.sealed = true;
            }
            self.segments.push(Segment::fresh(m.to_vec()));
            self.resident_payload += self.segments[self.segments.len() - 1].payload_bytes();
            self.enforce_budget(usize::MAX)?;
            for &w in m {
                self.max_word = self.max_word.max(w);
            }
        } else {
            let tail_idx = self.segments.len() - 1;
            let before = self.segments[tail_idx].payload_bytes();
            let tail = &mut self.segments[tail_idx];
            for (pos, (&new, &old)) in m.iter().zip(&tail.reference).enumerate() {
                if new != old {
                    tail.payload.push(pos as u32);
                    tail.payload.push(new);
                    self.max_word = self.max_word.max(new);
                }
            }
            tail.offsets.push(tail.payload.len() as u32);
            tail.rows += 1;
            self.resident_payload += self.segments[tail_idx].payload_bytes() - before;
        }
        let id = self.len as u32;
        self.hashes.push(hash);
        self.len += 1;
        self.place_slot(hash, id);
        Ok(id)
    }

    /// Finds or inserts; returns `(id, newly_inserted)`.
    ///
    /// # Errors
    ///
    /// Propagates [`SpillStore::find_hashed`] /
    /// [`SpillStore::insert_new_hashed`] failures.
    pub fn try_intern(&mut self, m: &[u32]) -> Result<(u32, bool), PetriError> {
        let hash = MarkingStore::hash_slice(m);
        match self.find_hashed(m, hash)? {
            Some(id) => Ok((id, false)),
            None => self.insert_new_hashed(m, hash).map(|id| (id, true)),
        }
    }

    /// Compares row `id` against `m` without materializing the row:
    /// interleaves the reference run-compare with the delta pairs.
    fn row_matches(&mut self, id: usize, m: &[u32]) -> Result<bool, PetriError> {
        let seg_idx = id / self.seg_rows;
        self.ensure_resident(seg_idx)?;
        let seg = &self.segments[seg_idx];
        let row = id % self.seg_rows;
        let (a, b) = (seg.offsets[row] as usize, seg.offsets[row + 1] as usize);
        let mut next = 0usize;
        for pair in seg.payload[a..b].chunks_exact(2) {
            let pos = pair[0] as usize;
            if m[next..pos] != seg.reference[next..pos] || m[pos] != pair[1] {
                return Ok(false);
            }
            next = pos + 1;
        }
        Ok(m[next..] == seg.reference[next..])
    }

    fn ensure_resident(&mut self, seg_idx: usize) -> Result<(), PetriError> {
        self.clock += 1;
        let clock = self.clock;
        if !self.segments[seg_idx].resident {
            let (off, off_words, pay_words) = match self.segments[seg_idx].disk {
                Some(d) => d,
                // A non-resident segment always has a disk extent.
                None => unreachable!("paged-out segment without disk extent"),
            };
            let pager = match self.pager.as_mut() {
                Some(p) => p,
                None => unreachable!("paged-out segment without pager"),
            };
            let mut words = Vec::new();
            pager.read_words(off, off_words as usize + pay_words as usize, &mut words)?;
            let seg = &mut self.segments[seg_idx];
            seg.payload = words.split_off(off_words as usize);
            seg.offsets = words;
            seg.resident = true;
            self.page_ins += 1;
            self.resident_payload += self.segments[seg_idx].payload_bytes();
            self.enforce_budget(seg_idx)?;
        }
        self.segments[seg_idx].touch = clock;
        Ok(())
    }

    /// Evicts cold sealed segments (never `protect`, never the tail)
    /// until the resident payload fits the budget or nothing evictable
    /// remains.
    fn enforce_budget(&mut self, protect: usize) -> Result<(), PetriError> {
        while self.resident_payload > self.budget_bytes {
            let victim = self
                .segments
                .iter()
                .enumerate()
                .filter(|(i, s)| *i != protect && s.sealed && s.resident)
                .min_by_key(|(_, s)| s.touch)
                .map(|(i, _)| i);
            let Some(v) = victim else { return Ok(()) };
            self.evict(v)?;
        }
        Ok(())
    }

    fn evict(&mut self, seg_idx: usize) -> Result<(), PetriError> {
        if self.segments[seg_idx].disk.is_none() {
            if self.pager.is_none() {
                self.pager = Some(Pager::open(self.spill_dir.as_deref())?);
            }
            let pager = match self.pager.as_mut() {
                Some(p) => p,
                None => unreachable!("pager just created"),
            };
            let seg = &self.segments[seg_idx];
            let off = pager.append(&seg.offsets, &seg.payload)?;
            let extent = (off, seg.offsets.len() as u32, seg.payload.len() as u32);
            self.spilled_bytes += (seg.offsets.len() + seg.payload.len()) as u64 * 4;
            self.segments[seg_idx].disk = Some(extent);
        }
        let seg = &mut self.segments[seg_idx];
        self.resident_payload -= seg.payload_bytes();
        seg.offsets = Vec::new();
        seg.payload = Vec::new();
        seg.resident = false;
        self.page_outs += 1;
        Ok(())
    }

    fn place_slot(&mut self, hash: u64, id: u32) {
        let entry = (hash & HIGH_MASK) | (u64::from(id) + 1);
        let mut slot = (hash as usize) & self.mask;
        while self.table[slot] != EMPTY {
            slot = (slot + 1) & self.mask;
        }
        self.table[slot] = entry;
    }

    fn grow(&mut self) -> Result<(), PetriError> {
        let new_slots = self.table.len() * 2;
        let mut table = Vec::new();
        table
            .try_reserve_exact(new_slots)
            .map_err(|_| PetriError::AllocationFailed {
                bytes: new_slots * std::mem::size_of::<u64>(),
            })?;
        table.resize(new_slots, EMPTY);
        self.table = table;
        self.mask = new_slots - 1;
        for i in 0..self.len {
            let hash = self.hashes[i];
            self.place_slot(hash, i as u32);
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_and_preserves_order() {
        let mut s = MarkingStore::new(2);
        assert_eq!(s.intern(&[0, 1]), (0, true));
        assert_eq!(s.intern(&[1, 0]), (1, true));
        assert_eq!(s.intern(&[0, 1]), (0, false));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0), &[0, 1]);
        assert_eq!(s.get(1), &[1, 0]);
    }

    #[test]
    fn find_distinguishes_all_members() {
        let mut s = MarkingStore::new(3);
        for i in 0..500u32 {
            s.intern(&[i, i / 3, i % 7]);
        }
        assert_eq!(s.len(), 500);
        for i in 0..500u32 {
            assert_eq!(s.find(&[i, i / 3, i % 7]), Some(i));
        }
        assert_eq!(s.find(&[1000, 0, 0]), None);
    }

    #[test]
    fn growth_rehashes_correctly() {
        let mut s = MarkingStore::with_capacity(1, 0);
        for i in 0..10_000u32 {
            assert_eq!(s.intern(&[i]), (i, true));
        }
        for i in 0..10_000u32 {
            assert_eq!(s.find(&[i]), Some(i));
            assert_eq!(s.get(i as usize), &[i]);
        }
    }

    #[test]
    fn zero_stride_degenerate_net() {
        let mut s = MarkingStore::new(0);
        assert_eq!(s.intern(&[]), (0, true));
        assert_eq!(s.intern(&[]), (0, false));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0), &[] as &[u32]);
    }

    #[test]
    fn try_intern_matches_intern_and_survives_growth() {
        let mut a = MarkingStore::new(2);
        let mut b = MarkingStore::new(2);
        for i in 0..5_000u32 {
            let m = [i % 97, i];
            assert_eq!(a.try_intern(&m).unwrap(), b.intern(&m));
        }
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn failed_insert_leaves_store_usable() {
        // Simulate the id-space cap by filling `len` artificially is not
        // possible without 4 billion inserts; instead check the error
        // path contract at the API level: an error from
        // `insert_new_hashed` must not disturb existing content.
        let mut s = MarkingStore::new(1);
        s.intern(&[1]);
        s.intern(&[2]);
        // A duplicate insert is a caller bug (debug_assert), so probe the
        // non-mutating failure contract via find on the intact store.
        assert_eq!(s.find(&[1]), Some(0));
        assert_eq!(s.find(&[2]), Some(1));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn hash_is_content_deterministic() {
        let a = MarkingStore::hash_slice(&[1, 2, 3]);
        let b = MarkingStore::hash_slice(&[1, 2, 3]);
        let c = MarkingStore::hash_slice(&[3, 2, 1]);
        assert_eq!(a, b);
        assert_ne!(a, c, "order must matter");
    }

    fn tiny_spill_config() -> SpillConfig {
        // Zero payload budget + tiny segments: every sealed segment is
        // forced to disk immediately, so the spill path is exercised
        // even by small test stores.
        SpillConfig {
            resident_payload_bytes: 0,
            segment_rows: 8,
            spill_dir: None,
        }
    }

    fn pseudo_marking(i: u32, stride: usize) -> Vec<u32> {
        (0..stride as u32)
            .map(|p| MarkingStore::mix(u64::from(i) << 16 | u64::from(p)) as u32 % 5)
            .collect()
    }

    #[test]
    fn budget_hint_jumps_growth_to_target() {
        let mut hinted = MarkingStore::with_state_budget(1, 300_000);
        let mut plain = MarkingStore::new(1);
        for i in 0..200_000u32 {
            assert_eq!(hinted.intern(&[i]), plain.intern(&[i]));
        }
        // The hint sized the table for 300k states in one jump; the
        // plain store doubled its way to the same occupancy.
        assert_eq!(hinted.table.len(), hinted.hint_slots);
        assert!(hinted.table.len() > plain.table.len());
        for i in 0..200_000u32 {
            assert_eq!(hinted.find(&[i]), Some(i));
        }
    }

    #[test]
    fn infinite_budget_means_no_hint() {
        let s = MarkingStore::with_state_budget(4, usize::MAX);
        assert_eq!(s.hint_slots, 0);
        assert_eq!(s.table.len(), INITIAL_SLOTS);
    }

    #[test]
    fn spill_roundtrips_every_row_exactly() {
        let stride = 11;
        let mut spill = SpillStore::new(stride, &tiny_spill_config(), usize::MAX);
        let mut resident = MarkingStore::new(stride);
        for i in 0..2_000u32 {
            let m = pseudo_marking(i, stride);
            let (a, new_a) = spill.try_intern(&m).unwrap();
            let (b, new_b) = resident.intern(&m);
            assert_eq!((a, new_a), (b, new_b), "id divergence at {i}");
        }
        let stats = spill.stats();
        assert!(stats.page_outs > 0, "tiny budget must force spilling");
        assert!(stats.spilled_bytes > 0);
        let mut buf = Vec::new();
        for id in 0..resident.len() {
            spill.get_into(id, &mut buf).unwrap();
            assert_eq!(buf.as_slice(), resident.get(id), "row {id} corrupt");
            assert_eq!(spill.hash_of(id), resident.hash_of(id));
        }
        // Lookups agree after all that paging, too.
        for i in 0..2_000u32 {
            let m = pseudo_marking(i, stride);
            let hash = MarkingStore::hash_slice(&m);
            assert_eq!(
                spill.find_hashed(&m, hash).unwrap(),
                resident.find_hashed(&m, hash)
            );
        }
    }

    #[test]
    fn spill_find_rejects_absent_markings() {
        let mut spill = SpillStore::new(3, &tiny_spill_config(), usize::MAX);
        for i in 0..100u32 {
            spill.try_intern(&[i, i % 3, 1]).unwrap();
        }
        let absent = [999u32, 0, 1];
        assert_eq!(
            spill
                .find_hashed(&absent, MarkingStore::hash_slice(&absent))
                .unwrap(),
            None
        );
    }

    #[test]
    fn spill_tracks_max_word_incrementally() {
        let mut spill = SpillStore::new(2, &tiny_spill_config(), usize::MAX);
        spill.try_intern(&[1, 0]).unwrap();
        spill.try_intern(&[1, 7]).unwrap();
        spill.try_intern(&[3, 2]).unwrap();
        assert_eq!(spill.max_word(), 7);
    }

    #[test]
    fn spill_resident_bytes_bounded_by_budget() {
        let stride = 64;
        let cfg = SpillConfig {
            resident_payload_bytes: 4 << 10,
            segment_rows: 32,
            spill_dir: None,
        };
        let mut spill = SpillStore::new(stride, &cfg, usize::MAX);
        let mut m = vec![0u32; stride];
        for i in 0..4_000u32 {
            m[(i as usize * 7) % stride] = i % 9;
            m[(i as usize * 13) % stride] = i % 4;
            spill.try_intern(&m).unwrap();
        }
        let stats = spill.stats();
        // The sealed payload must respect the ceiling (the tail segment
        // and references stay resident by design).
        assert!(
            stats.resident_payload_bytes
                <= cfg.resident_payload_bytes + (stride * 8 + 8) * std::mem::size_of::<u32>(),
            "resident payload {} exceeds budget",
            stats.resident_payload_bytes
        );
        assert!(stats.page_outs > 0);
    }

    #[test]
    fn resident_bytes_scales_with_content() {
        let mut s = MarkingStore::new(4);
        let before = s.resident_bytes();
        for i in 0..1000u32 {
            s.intern(&[i, 0, 0, 0]);
        }
        assert!(s.resident_bytes() > before);
        // Arena dominates: 16 bytes of marking + 8 of hash per state,
        // plus the slot table.
        assert!(s.resident_bytes() < 1000 * 64);
    }
}
