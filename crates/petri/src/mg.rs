//! Structural analysis of **marked graphs**: liveness and safety without
//! building the state space.
//!
//! Classical results (Genrich/Lautenbach, Commoner):
//!
//! * a marked graph is live iff every directed cycle carries at least
//!   one token;
//! * in a live strongly-connected marked graph, the maximum token count
//!   a place ever reaches equals the **minimum token count over the
//!   cycles through it** — so safety is a shortest-path computation.
//!
//! These are the "polynomial on the net" checks the paper leans on for
//! STGs (Sections 5.1–5.3); the receptiveness Theorem 5.7 builds on the
//! same state-equation structure (see `cpn-core`).

use crate::error::PetriError;
use crate::graph::DiGraph;
use crate::label::Label;
use crate::net::{PetriNet, PlaceId};

/// A token-free directed cycle of a marked graph, as a list of places,
/// or `None` if every cycle is marked.
///
/// # Errors
///
/// [`PetriError::NotMarkedGraph`] if the net is not a marked graph.
pub fn token_free_cycle<L: Label>(net: &PetriNet<L>) -> Result<Option<Vec<PlaceId>>, PetriError> {
    let flows = net.marked_graph_flows()?;
    let m0 = net.initial_marking();
    // Graph over transitions through token-free places.
    let mut g = DiGraph::new(net.transition_count());
    let mut arc_place = std::collections::BTreeMap::new();
    for (p, &(prod, cons)) in flows.iter().enumerate() {
        if m0.as_slice()[p] == 0 {
            g.add_edge(prod.index(), cons.index());
            arc_place.insert((prod.index(), cons.index()), PlaceId::from_index(p));
        }
    }
    let Some(component) = g.find_cycle() else {
        return Ok(None);
    };
    // Recover the places along one cycle inside the component.
    let inside: std::collections::BTreeSet<usize> = component.iter().copied().collect();
    let mut cycle = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    let mut cur = component[0];
    loop {
        if !seen.insert(cur) {
            break;
        }
        // Every node of a strongly-connected component has a successor
        // inside it; stop defensively if the invariant is ever violated.
        let Some(next) = g
            .successors(cur)
            .iter()
            .copied()
            .find(|n| inside.contains(n))
        else {
            break;
        };
        if let Some(&p) = arc_place.get(&(cur, next)) {
            cycle.push(p);
        }
        cur = next;
    }
    Ok(Some(cycle))
}

/// Structural liveness for marked graphs: live iff no token-free cycle.
///
/// Exact for strongly-connected marked graphs; on disconnected ones a
/// token-free cycle is still a definite non-liveness witness, and an
/// acyclic token-free region yields dead transitions (see
/// [`crate::dead::dead_transitions_structural_mg`]).
///
/// # Errors
///
/// [`PetriError::NotMarkedGraph`] if the net is not a marked graph.
pub fn mg_live_structural<L: Label>(net: &PetriNet<L>) -> Result<bool, PetriError> {
    Ok(token_free_cycle(net)?.is_none())
}

/// The minimum token count over the directed cycles through each place
/// of a marked graph (`None` for places on no cycle — their token count
/// is unbounded in a live net with sources, or frozen otherwise).
///
/// In a **live** marked graph this is exactly the bound each place
/// reaches, hence: safe iff every entry is `Some(k)` with `k ≤ 1`.
///
/// # Errors
///
/// [`PetriError::NotMarkedGraph`] if the net is not a marked graph.
pub fn mg_place_bounds<L: Label>(net: &PetriNet<L>) -> Result<Vec<Option<u64>>, PetriError> {
    let flows = net.marked_graph_flows()?;
    let m0 = net.initial_marking();
    let n = net.transition_count();

    // Shortest path between transitions where traversing place p costs
    // M0(p). min-cycle through p = M0(p) + dist(cons(p) → prod(p)).
    // Floyd–Warshall: nets here are small and this is by far the
    // simplest correct choice (weights ≥ 0).
    const INF: u64 = u64::MAX / 4;
    let mut dist = vec![vec![INF; n]; n];
    for (i, row) in dist.iter_mut().enumerate() {
        row[i] = 0;
    }
    for (p, &(prod, cons)) in flows.iter().enumerate() {
        let w = u64::from(m0.as_slice()[p]);
        let d = &mut dist[prod.index()][cons.index()];
        *d = (*d).min(w);
    }
    for k in 0..n {
        for i in 0..n {
            if dist[i][k] == INF {
                continue;
            }
            for j in 0..n {
                let via = dist[i][k] + dist[k][j];
                if via < dist[i][j] {
                    dist[i][j] = via;
                }
            }
        }
    }

    Ok(flows
        .iter()
        .enumerate()
        .map(|(p, &(prod, cons))| {
            let back = dist[cons.index()][prod.index()];
            if back >= INF {
                None
            } else {
                Some(u64::from(m0.as_slice()[p]) + back)
            }
        })
        .collect())
}

/// Structural safety for **live** marked graphs: every place lies on a
/// cycle of token count ≤ 1.
///
/// # Errors
///
/// * [`PetriError::NotMarkedGraph`] if the net is not a marked graph.
/// * [`PetriError::Precondition`] if the net has a token-free cycle
///   (not live — the bound characterization needs liveness).
pub fn mg_safe_structural<L: Label>(net: &PetriNet<L>) -> Result<bool, PetriError> {
    if !mg_live_structural(net)? {
        return Err(PetriError::Precondition(
            "structural safety needs a live marked graph".to_owned(),
        ));
    }
    Ok(mg_place_bounds(net)?
        .iter()
        .all(|b| matches!(b, Some(k) if *k <= 1)))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::reachability::ReachabilityOptions;

    fn ring(tokens: &[u32]) -> PetriNet<String> {
        let mut net: PetriNet<String> = PetriNet::new();
        let n = tokens.len();
        let ps: Vec<PlaceId> = (0..n).map(|i| net.add_place(format!("p{i}"))).collect();
        for i in 0..n {
            net.add_transition([ps[i]], format!("t{i}"), [ps[(i + 1) % n]])
                .unwrap();
        }
        for (i, &t) in tokens.iter().enumerate() {
            net.set_initial(ps[i], t);
        }
        net
    }

    #[test]
    fn marked_ring_is_live_unmarked_is_not() {
        assert!(mg_live_structural(&ring(&[1, 0, 0])).unwrap());
        assert!(!mg_live_structural(&ring(&[0, 0, 0])).unwrap());
        let cycle = token_free_cycle(&ring(&[0, 0, 0])).unwrap().unwrap();
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn ring_bounds_are_total_token_count() {
        let bounds = mg_place_bounds(&ring(&[2, 1, 0])).unwrap();
        assert_eq!(bounds, vec![Some(3), Some(3), Some(3)]);
        assert!(!mg_safe_structural(&ring(&[2, 1, 0])).unwrap());
        assert!(mg_safe_structural(&ring(&[1, 0, 0])).unwrap());
    }

    #[test]
    fn fork_join_bounds() {
        // p0 -fork-> {a, b}; {a2, b2} -join-> p0 with chains.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p0 = net.add_place("p0");
        let a = net.add_place("a");
        let b = net.add_place("b");
        net.add_transition([p0], "fork", [a, b]).unwrap();
        net.add_transition([a, b], "join", [p0]).unwrap();
        net.set_initial(p0, 1);
        assert!(mg_live_structural(&net).unwrap());
        assert!(mg_safe_structural(&net).unwrap());
        assert_eq!(mg_place_bounds(&net).unwrap(), vec![Some(1); 3]);
    }

    #[test]
    fn structural_agrees_with_reachability_on_random_rings() {
        for seed in 0u64..24 {
            let n = 3 + (seed % 3) as usize;
            let tokens: Vec<u32> = (0..n).map(|i| ((seed >> i) & 1) as u32).collect();
            let net = ring(&tokens);
            let live_struct = mg_live_structural(&net).unwrap();
            let rg = net.reachability(&ReachabilityOptions::default()).unwrap();
            let analysis = net.analysis(&rg);
            assert_eq!(live_struct, analysis.live, "seed {seed}");
            if live_struct {
                assert_eq!(
                    mg_safe_structural(&net).unwrap(),
                    analysis.safe,
                    "seed {seed}"
                );
                // And the per-place bounds match the observed bound.
                let bounds = mg_place_bounds(&net).unwrap();
                let max_bound = bounds.iter().map(|b| b.unwrap()).max().unwrap();
                assert_eq!(max_bound, u64::from(analysis.bound), "seed {seed}");
            }
        }
    }

    #[test]
    fn non_marked_graph_rejected() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "x", [q]).unwrap();
        net.add_transition([p], "y", [q]).unwrap();
        assert!(matches!(
            mg_live_structural(&net),
            Err(PetriError::NotMarkedGraph)
        ));
    }

    #[test]
    fn safety_check_requires_liveness() {
        assert!(matches!(
            mg_safe_structural(&ring(&[0, 0])),
            Err(PetriError::Precondition(_))
        ));
    }
}
