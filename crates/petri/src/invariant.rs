//! Place and transition semiflows via the Farkas algorithm.
//!
//! A P-semiflow is a non-negative integer vector `y` with `yᵀ·C = 0`; a
//! net covered by a positive P-semiflow is structurally bounded, which
//! gives a cheap sufficient boundedness certificate complementing the
//! Karp–Miller construction. T-semiflows (`C·x = 0`) witness cyclic
//! behaviour and are used by the marked-graph analyses.

use crate::label::Label;
use crate::net::PetriNet;

/// A non-negative integer semiflow with support over places (P) or
/// transitions (T), depending on which function produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Semiflow {
    /// Weight per place (for P-semiflows) or per transition (for
    /// T-semiflows), in arena order.
    pub weights: Vec<u64>,
}

impl Semiflow {
    /// Indices with non-zero weight.
    pub fn support(&self) -> Vec<usize> {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether this semiflow's support covers every index.
    pub fn is_positive(&self) -> bool {
        self.weights.iter().all(|&w| w > 0)
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Runs the Farkas algorithm on matrix `m` (rows = items we want weights
/// for, columns = constraints), returning the minimal-support semiflows.
///
/// `row_budget` caps the intermediate row count (the algorithm is
/// worst-case exponential); `None` is returned when it is exceeded.
fn farkas(m: &[Vec<i64>], row_budget: usize) -> Option<Vec<Semiflow>> {
    let rows = m.len();
    if rows == 0 {
        return Some(Vec::new());
    }
    let cols = m[0].len();
    // Each working row is (identity part, matrix part).
    let mut work: Vec<(Vec<i64>, Vec<i64>)> = (0..rows)
        .map(|i| {
            let mut id = vec![0i64; rows];
            id[i] = 1;
            (id, m[i].clone())
        })
        .collect();

    for c in 0..cols {
        let mut next: Vec<(Vec<i64>, Vec<i64>)> = Vec::new();
        // Keep zero rows, combine +/- pairs.
        for row in &work {
            if row.1[c] == 0 {
                next.push(row.clone());
            }
        }
        let pos: Vec<&(Vec<i64>, Vec<i64>)> = work.iter().filter(|r| r.1[c] > 0).collect();
        let neg: Vec<&(Vec<i64>, Vec<i64>)> = work.iter().filter(|r| r.1[c] < 0).collect();
        for p in &pos {
            for n in &neg {
                let a = p.1[c].unsigned_abs();
                let b = n.1[c].unsigned_abs();
                let g = gcd(a, b);
                let (fa, fb) = ((b / g) as i64, (a / g) as i64);
                let id: Vec<i64> = p.0.iter().zip(&n.0).map(|(x, y)| fa * x + fb * y).collect();
                let mat: Vec<i64> = p.1.iter().zip(&n.1).map(|(x, y)| fa * x + fb * y).collect();
                debug_assert_eq!(mat[c], 0);
                // Normalize by the gcd of all entries.
                let g_all = id
                    .iter()
                    .chain(mat.iter())
                    .fold(0u64, |acc, &v| gcd(acc, v.unsigned_abs()));
                let (id, mat) = if g_all > 1 {
                    (
                        id.iter().map(|&v| v / g_all as i64).collect(),
                        mat.iter().map(|&v| v / g_all as i64).collect(),
                    )
                } else {
                    (id, mat)
                };
                next.push((id, mat));
                if next.len() > row_budget {
                    return None;
                }
            }
        }
        // Minimal-support pruning keeps the set small and yields minimal
        // semiflows at the end.
        next = prune_non_minimal(next);
        if next.len() > row_budget {
            return None;
        }
        work = next;
    }

    let mut out: Vec<Semiflow> = work
        .into_iter()
        .map(|(id, _)| Semiflow {
            weights: id.iter().map(|&v| v.unsigned_abs()).collect(),
        })
        .filter(|s| s.weights.iter().any(|&w| w > 0))
        .collect();
    out.sort_by(|a, b| a.weights.cmp(&b.weights));
    out.dedup();
    Some(out)
}

fn prune_non_minimal(rows: Vec<(Vec<i64>, Vec<i64>)>) -> Vec<(Vec<i64>, Vec<i64>)> {
    let supports: Vec<Vec<bool>> = rows
        .iter()
        .map(|(id, _)| id.iter().map(|&v| v != 0).collect())
        .collect();
    let mut keep = vec![true; rows.len()];
    for i in 0..rows.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..rows.len() {
            if i == j || !keep[j] {
                continue;
            }
            // Drop i if j's support is a strict subset of i's.
            let j_subset = supports[j]
                .iter()
                .zip(&supports[i])
                .all(|(&sj, &si)| !sj || si);
            let strict = supports[j] != supports[i];
            if j_subset && strict {
                keep[i] = false;
                break;
            }
        }
    }
    rows.into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(r, _)| r)
        .collect()
}

/// Computes the minimal P-semiflows of `net` (weights over places).
///
/// Returns `None` if the Farkas working set exceeds `row_budget` rows.
///
/// # Example
///
/// ```
/// use cpn_petri::{semiflows_p, PetriNet};
///
/// # fn main() -> Result<(), cpn_petri::PetriError> {
/// let mut net: PetriNet<&str> = PetriNet::new();
/// let p = net.add_place("p");
/// let q = net.add_place("q");
/// net.add_transition([p], "a", [q])?;
/// net.add_transition([q], "b", [p])?;
/// let flows = semiflows_p(&net, 10_000).unwrap();
/// assert_eq!(flows.len(), 1);
/// assert!(flows[0].is_positive()); // p + q is invariant ⇒ bounded
/// # Ok(())
/// # }
/// ```
pub fn semiflows_p<L: Label>(net: &PetriNet<L>, row_budget: usize) -> Option<Vec<Semiflow>> {
    farkas(&net.incidence_matrix(), row_budget)
}

/// Computes the minimal T-semiflows of `net` (weights over transitions).
pub fn semiflows_t<L: Label>(net: &PetriNet<L>, row_budget: usize) -> Option<Vec<Semiflow>> {
    // Transpose the incidence matrix.
    let c = net.incidence_matrix();
    let rows = net.transition_count();
    let cols = net.place_count();
    let mut ct = vec![vec![0i64; cols]; rows];
    for (p, row) in c.iter().enumerate() {
        for (t, &v) in row.iter().enumerate() {
            ct[t][p] = v;
        }
    }
    farkas(&ct, row_budget)
}

/// Whether the net is *structurally bounded by P-semiflow cover*: every
/// place lies in the support of some P-semiflow. A sufficient (not
/// necessary) condition for boundedness.
pub fn covered_by_p_semiflows<L: Label>(net: &PetriNet<L>, row_budget: usize) -> Option<bool> {
    let flows = semiflows_p(net, row_budget)?;
    let mut covered = vec![false; net.place_count()];
    for f in &flows {
        for i in f.support() {
            covered[i] = true;
        }
    }
    Some(covered.iter().all(|&c| c))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn cycle_has_token_conservation() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "a", [q]).unwrap();
        net.add_transition([q], "b", [p]).unwrap();
        let flows = semiflows_p(&net, 1000).unwrap();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].weights, vec![1, 1]);
        assert!(covered_by_p_semiflows(&net, 1000).unwrap());
    }

    #[test]
    fn pump_has_no_covering_semiflow() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let out = net.add_place("out");
        net.add_transition([p], "pump", [p, out]).unwrap();
        assert!(!covered_by_p_semiflows(&net, 1000).unwrap());
    }

    #[test]
    fn t_semiflow_of_cycle() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "a", [q]).unwrap();
        net.add_transition([q], "b", [p]).unwrap();
        let flows = semiflows_t(&net, 1000).unwrap();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].weights, vec![1, 1]);
    }

    #[test]
    fn weighted_invariant() {
        // t moves one token from p to two tokens... not expressible with
        // set-based arcs; instead: fork net p -> (a, b), join back.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let a = net.add_place("a");
        let b = net.add_place("b");
        net.add_transition([p], "fork", [a, b]).unwrap();
        net.add_transition([a, b], "join", [p]).unwrap();
        let flows = semiflows_p(&net, 1000).unwrap();
        // 2p + a + b is invariant; minimal ones: p+a, p+b.
        assert!(!flows.is_empty());
        for f in &flows {
            // Check invariance: weights · C = 0
            let c = net.incidence_matrix();
            for t in 0..net.transition_count() {
                let dot: i64 = c
                    .iter()
                    .enumerate()
                    .map(|(pl, row)| f.weights[pl] as i64 * row[t])
                    .sum();
                assert_eq!(dot, 0, "semiflow {:?} not invariant", f.weights);
            }
        }
        assert!(covered_by_p_semiflows(&net, 1000).unwrap());
    }

    #[test]
    fn budget_returns_none() {
        let mut net: PetriNet<String> = PetriNet::new();
        let mut prev = net.add_place("p0");
        for i in 1..8 {
            let next = net.add_place(format!("p{i}"));
            net.add_transition([prev], format!("t{i}"), [next]).unwrap();
            prev = next;
        }
        // Budget 0 can never hold even the seed rows.
        assert_eq!(semiflows_p(&net, 0), None);
    }

    #[test]
    fn support_and_positivity() {
        let s = Semiflow {
            weights: vec![0, 2, 1],
        };
        assert_eq!(s.support(), vec![1, 2]);
        assert!(!s.is_positive());
    }
}
