//! Behavioural analysis on the reachability graph: liveness, safety,
//! boundedness, deadlock-freedom and reversibility.
//!
//! These are the properties Definition 2.3 of the paper demands of a
//! classical STG ("strongly-connected live and safe") and the properties
//! whose closure under the algebra Section 5.2 discusses (Props 5.2/5.3).

use crate::graph::DiGraph;
use crate::label::Label;
use crate::net::{PetriNet, TransitionId};
use crate::reachability::ReachabilityGraph;

/// Per-transition liveness classification (a compact slice of the
/// classical L0–L4 hierarchy sufficient for the paper's needs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LivenessLevel {
    /// The transition can never fire (dead, L0).
    Dead,
    /// The transition can fire but may become permanently disabled.
    Quasi,
    /// From every reachable marking the transition can eventually fire
    /// again (live, L4).
    Live,
}

/// The result of [`PetriNet::analysis`]: behavioural properties derived
/// from a complete reachability graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Analysis {
    /// The smallest `k` such that the net is `k`-bounded (max tokens in
    /// any place over all reachable markings).
    pub bound: u32,
    /// Whether every reachable marking is safe (`bound ≤ 1`).
    pub safe: bool,
    /// Whether every transition is live.
    pub live: bool,
    /// Whether no reachable marking is a deadlock.
    pub deadlock_free: bool,
    /// Whether the initial marking is reachable from every reachable
    /// marking (the net is reversible / `M0` is a home marking).
    pub reversible: bool,
    /// Per-transition liveness, indexed by transition arena order.
    pub transition_liveness: Vec<LivenessLevel>,
}

impl Analysis {
    /// Transitions that can never fire.
    pub fn dead_transitions(&self) -> Vec<TransitionId> {
        self.transition_liveness
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == LivenessLevel::Dead)
            .map(|(i, _)| TransitionId::from_index(i))
            .collect()
    }

    /// Transitions that are not live (dead or quasi-live).
    pub fn non_live_transitions(&self) -> Vec<TransitionId> {
        self.transition_liveness
            .iter()
            .enumerate()
            .filter(|(_, l)| **l != LivenessLevel::Live)
            .map(|(i, _)| TransitionId::from_index(i))
            .collect()
    }
}

impl<L: Label> PetriNet<L> {
    /// Computes behavioural properties from a (complete) reachability
    /// graph previously built with
    /// [`reachability`](PetriNet::reachability).
    ///
    /// Liveness uses the terminal-SCC characterization: a transition is
    /// live iff every terminal strongly-connected component of the
    /// reachability graph contains a state in which it fires.
    ///
    /// # Panics
    ///
    /// Panics if `rg` was built from a different net (detected via place
    /// counts and transition indices).
    pub fn analysis(&self, rg: &ReachabilityGraph) -> Analysis {
        let bound = rg.token_bound();
        let safe = bound <= 1;
        let deadlock_free = rg.deadlock_states().is_empty();

        let g: DiGraph = rg.as_digraph();
        let sccs = g.tarjan_scc();
        let terminal = g.terminal_sccs(&sccs);

        // For each transition: does it fire anywhere at all, and does it
        // fire inside every terminal SCC?
        let tcount = self.transition_count();
        let mut fires_somewhere = vec![false; tcount];
        let mut comp_of = vec![usize::MAX; rg.state_count()];
        for (ci, comp) in sccs.iter().enumerate() {
            for &s in comp {
                comp_of[s] = ci;
            }
        }
        // fires_in_comp[ci] is a bitset over transitions (as Vec<bool>).
        let mut fires_in_comp: Vec<Vec<bool>> = vec![vec![false; tcount]; sccs.len()];
        for (from, t, _to) in rg.all_edges() {
            assert!(
                t.index() < tcount,
                "reachability graph from a different net"
            );
            fires_somewhere[t.index()] = true;
            fires_in_comp[comp_of[from.index()]][t.index()] = true;
        }

        let transition_liveness: Vec<LivenessLevel> = (0..tcount)
            .map(|ti| {
                if !fires_somewhere[ti] {
                    LivenessLevel::Dead
                } else if terminal.iter().all(|&ci| fires_in_comp[ci][ti]) {
                    LivenessLevel::Live
                } else {
                    LivenessLevel::Quasi
                }
            })
            .collect();

        let live = !transition_liveness.is_empty()
            && transition_liveness
                .iter()
                .all(|l| *l == LivenessLevel::Live);

        // Reversible iff the initial state is reachable from every state,
        // i.e. every state reaches s0 — check on the reversed graph.
        let back = g.reversed().reachable_from(rg.initial_state().index());
        let reversible = back.iter().all(|&b| b);

        Analysis {
            bound,
            safe,
            live: live || tcount == 0,
            deadlock_free,
            reversible,
            transition_liveness,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::reachability::ReachabilityOptions;

    fn analyze(net: &PetriNet<&'static str>) -> Analysis {
        let rg = net.reachability(&ReachabilityOptions::default()).unwrap();
        net.analysis(&rg)
    }

    #[test]
    fn live_safe_cycle() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "a", [q]).unwrap();
        net.add_transition([q], "b", [p]).unwrap();
        net.set_initial(p, 1);
        let a = analyze(&net);
        assert!(a.safe && a.live && a.deadlock_free && a.reversible);
        assert_eq!(a.bound, 1);
        assert!(a.dead_transitions().is_empty());
    }

    #[test]
    fn dead_transition_detected() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        let r = net.add_place("r");
        net.add_transition([p], "a", [q]).unwrap();
        net.add_transition([q], "b", [p]).unwrap();
        let dead = net.add_transition([r], "never", [p]).unwrap();
        net.set_initial(p, 1);
        let a = analyze(&net);
        assert!(!a.live);
        assert_eq!(a.dead_transitions(), vec![dead]);
        assert_eq!(a.transition_liveness[dead.index()], LivenessLevel::Dead);
    }

    #[test]
    fn quasi_live_choice_into_deadlock() {
        // a leads to a sink; b loops. a is quasi-live (fires once, then
        // never again on the loop side); b is quasi-live too since taking
        // a kills it.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let sink = net.add_place("sink");
        net.add_transition([p], "a", [sink]).unwrap();
        net.add_transition([p], "b", [p]).unwrap();
        net.set_initial(p, 1);
        let a = analyze(&net);
        assert!(!a.live);
        assert!(!a.deadlock_free);
        assert_eq!(
            a.transition_liveness,
            vec![LivenessLevel::Quasi, LivenessLevel::Quasi]
        );
    }

    #[test]
    fn unsafe_net_reported() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "a", [q]).unwrap();
        net.add_transition([q], "b", [p]).unwrap();
        net.set_initial(p, 3);
        let a = analyze(&net);
        assert!(!a.safe);
        assert_eq!(a.bound, 3);
        assert!(a.live);
    }

    #[test]
    fn non_reversible_progression() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "a", [q]).unwrap();
        net.set_initial(p, 1);
        let a = analyze(&net);
        assert!(!a.reversible);
        assert!(!a.deadlock_free);
    }

    #[test]
    fn empty_net_is_vacuously_fine() {
        let net: PetriNet<&str> = PetriNet::new();
        let a = analyze(&net);
        assert!(a.live && a.safe && a.reversible);
        assert_eq!(a.bound, 0);
    }
}
