//! The interned alphabet layer: dense symbols, a label interner and
//! bitset alphabets.
//!
//! The paper carries the alphabet `A` of a net explicitly (Definition
//! 2.1), and every operator of the Section 4 algebra works with label
//! *sets*: parallel composition synchronizes on `A1 ∩ A2` (Def 4.7),
//! hiding removes a set from `A` (Def 4.10), projection keeps one. With
//! structured label types (`String`, STG edges, CIP channel operations)
//! those sets were `BTreeSet<L>` and every membership test paid a full
//! label comparison, every index insertion a clone.
//!
//! This module replaces that representation at the core: each
//! [`PetriNet`](crate::PetriNet) owns an [`Interner`] mapping its labels
//! to dense [`Sym`] symbols, transitions store a `Sym` (4 bytes, `Copy`),
//! and alphabet/sync/keep/hide sets are [`AlphaSet`] bitsets with
//! word-parallel set algebra. Labels are materialized only at API
//! boundaries (display, the text format, errors); everything between —
//! contraction worklists, rendez-vous matching, trace languages — runs
//! on symbols.

use crate::label::Label;
use std::collections::HashMap;
use std::fmt;

/// A dense interned symbol standing for one label of an [`Interner`].
///
/// Symbols are meaningful only relative to the interner that produced
/// them; two nets over the same label type may assign different symbols
/// to the same label. Cross-net operations remap through
/// [`Interner::merge`] first.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    /// The dense index of this symbol (an index into the interner's
    /// resolve table).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `Sym` from a dense index.
    ///
    /// Only meaningful for indices obtained from the same interner.
    ///
    /// # Panics
    ///
    /// Panics if the index does not fit the `u32` symbol space.
    pub fn from_index(i: usize) -> Self {
        assert!(u32::try_from(i).is_ok(), "symbol space exceeds u32");
        Sym(i as u32)
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A label interner: bijection between labels and dense [`Sym`] symbols.
///
/// Interning is append-only — symbols stay valid for the lifetime of the
/// interner — and first-come-first-numbered, so construction order fully
/// determines the symbol assignment (no hashing order leaks into
/// observable behavior).
#[derive(Clone)]
pub struct Interner<L: Label> {
    labels: Vec<L>,
    lookup: HashMap<L, Sym>,
}

impl<L: Label> Default for Interner<L> {
    fn default() -> Self {
        Self::new()
    }
}

impl<L: Label> Interner<L> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner {
            labels: Vec::new(),
            lookup: HashMap::new(),
        }
    }

    /// Interns a label, returning its symbol. The label is cloned only
    /// on first occurrence.
    pub fn intern(&mut self, label: &L) -> Sym {
        if let Some(&s) = self.lookup.get(label) {
            return s;
        }
        let s = Sym::from_index(self.labels.len());
        self.labels.push(label.clone());
        self.lookup.insert(label.clone(), s);
        s
    }

    /// Interns an owned label without cloning on first occurrence.
    pub fn intern_owned(&mut self, label: L) -> Sym {
        if let Some(&s) = self.lookup.get(&label) {
            return s;
        }
        let s = Sym::from_index(self.labels.len());
        self.labels.push(label.clone());
        self.lookup.insert(label, s);
        s
    }

    /// The symbol of an already-interned label, if any.
    pub fn get(&self, label: &L) -> Option<Sym> {
        self.lookup.get(label).copied()
    }

    /// The label behind a symbol.
    ///
    /// # Panics
    ///
    /// Panics if the symbol does not belong to this interner.
    pub fn resolve(&self, sym: Sym) -> &L {
        &self.labels[sym.index()]
    }

    /// Number of interned labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether no label has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterates over `(sym, label)` pairs in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &L)> {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, l)| (Sym::from_index(i), l))
    }

    /// Interns every label of `other` into `self` and returns the remap
    /// table: entry `i` is the symbol in `self` for `other`'s symbol `i`.
    ///
    /// This is the cross-net bridge: parallel composition and language
    /// operators intern each foreign label **once** (instead of once per
    /// transition or trace element) and then work on remapped symbols.
    pub fn merge(&mut self, other: &Interner<L>) -> Vec<Sym> {
        other.labels.iter().map(|l| self.intern(l)).collect()
    }
}

impl<L: Label> PartialEq for Interner<L> {
    /// Two interners are equal when they assign the same symbols to the
    /// same labels (the lookup map is derived state).
    fn eq(&self, other: &Self) -> bool {
        self.labels == other.labels
    }
}

impl<L: Label> Eq for Interner<L> {}

impl<L: Label> fmt::Debug for Interner<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

const WORD_BITS: usize = 64;

/// A dense bitset over [`Sym`] symbols: the workspace representation of
/// alphabet, synchronization, keep and hide sets.
///
/// Set algebra (`union_with`, `intersect_with`, `subtract`) runs
/// word-parallel; membership is one shift and mask. Equality and hashing
/// ignore trailing zero words, so a set is equal to itself regardless of
/// the capacity it was grown to.
#[derive(Clone, Default)]
pub struct AlphaSet {
    words: Vec<u64>,
}

impl AlphaSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        AlphaSet { words: Vec::new() }
    }

    fn grow_for(&mut self, index: usize) {
        let need = index / WORD_BITS + 1;
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
    }

    /// Inserts a symbol; returns `true` if it was absent.
    pub fn insert(&mut self, sym: Sym) -> bool {
        let i = sym.index();
        self.grow_for(i);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Removes a symbol; returns `true` if it was present.
    pub fn remove(&mut self, sym: Sym) -> bool {
        let i = sym.index();
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        if w >= self.words.len() {
            return false;
        }
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Whether the symbol is in the set.
    pub fn contains(&self, sym: Sym) -> bool {
        let i = sym.index();
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }

    /// Number of symbols in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Adds every symbol of `other` (`self ∪= other`).
    pub fn union_with(&mut self, other: &AlphaSet) {
        if self.words.len() < other.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Keeps only symbols also in `other` (`self ∩= other`).
    pub fn intersect_with(&mut self, other: &AlphaSet) {
        for (i, w) in self.words.iter_mut().enumerate() {
            *w &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// Removes every symbol of `other` (`self \= other`).
    pub fn subtract(&mut self, other: &AlphaSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// `self ∩ other` as a new set.
    pub fn intersection(&self, other: &AlphaSet) -> AlphaSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// `self ∪ other` as a new set.
    pub fn union(&self, other: &AlphaSet) -> AlphaSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// `self \ other` as a new set.
    pub fn difference(&self, other: &AlphaSet) -> AlphaSet {
        let mut out = self.clone();
        out.subtract(other);
        out
    }

    /// Whether the two sets share a symbol.
    pub fn intersects(&self, other: &AlphaSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterates over the symbols in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Sym> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(Sym::from_index(wi * WORD_BITS + b))
            })
        })
    }
}

impl PartialEq for AlphaSet {
    fn eq(&self, other: &Self) -> bool {
        let common = self.words.len().min(other.words.len());
        self.words[..common] == other.words[..common]
            && self.words[common..].iter().all(|&w| w == 0)
            && other.words[common..].iter().all(|&w| w == 0)
    }
}

impl Eq for AlphaSet {}

impl std::hash::Hash for AlphaSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Skip trailing zero words so equal sets hash equally.
        let mut end = self.words.len();
        while end > 0 && self.words[end - 1] == 0 {
            end -= 1;
        }
        self.words[..end].hash(state);
    }
}

impl FromIterator<Sym> for AlphaSet {
    fn from_iter<I: IntoIterator<Item = Sym>>(iter: I) -> Self {
        let mut set = AlphaSet::new();
        for s in iter {
            set.insert(s);
        }
        set
    }
}

impl Extend<Sym> for AlphaSet {
    fn extend<I: IntoIterator<Item = Sym>>(&mut self, iter: I) {
        for s in iter {
            self.insert(s);
        }
    }
}

impl fmt::Debug for AlphaSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut i: Interner<String> = Interner::new();
        let a = i.intern(&"a".to_owned());
        let b = i.intern(&"b".to_owned());
        assert_eq!(i.intern(&"a".to_owned()), a);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(i.resolve(a), "a");
        assert_eq!(i.resolve(b), "b");
        assert_eq!(i.len(), 2);
        assert_eq!(i.get(&"c".to_owned()), None);
    }

    #[test]
    fn intern_order_determines_symbols() {
        let mut i1: Interner<&str> = Interner::new();
        let mut i2: Interner<&str> = Interner::new();
        i1.intern(&"x");
        i1.intern(&"y");
        i2.intern(&"y");
        i2.intern(&"x");
        assert_ne!(i1, i2, "interners differ by assignment order");
        assert_eq!(i1.get(&"x"), i2.get(&"y"));
    }

    #[test]
    fn merge_builds_remap_table() {
        let mut a: Interner<&str> = Interner::new();
        a.intern(&"p");
        a.intern(&"q");
        let mut b: Interner<&str> = Interner::new();
        b.intern(&"q");
        b.intern(&"r");
        let map = a.merge(&b);
        assert_eq!(map.len(), 2);
        assert_eq!(a.resolve(map[0]), &"q");
        assert_eq!(a.resolve(map[1]), &"r");
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn alphaset_insert_remove_contains() {
        let mut s = AlphaSet::new();
        assert!(s.insert(Sym::from_index(3)));
        assert!(!s.insert(Sym::from_index(3)));
        assert!(s.insert(Sym::from_index(100)));
        assert!(s.contains(Sym::from_index(3)));
        assert!(s.contains(Sym::from_index(100)));
        assert!(!s.contains(Sym::from_index(4)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(Sym::from_index(3)));
        assert!(!s.remove(Sym::from_index(3)));
        assert!(!s.remove(Sym::from_index(4000)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn alphaset_algebra_matches_btreeset() {
        let a: AlphaSet = [0usize, 1, 64, 65, 130]
            .into_iter()
            .map(Sym::from_index)
            .collect();
        let b: AlphaSet = [1usize, 64, 200].into_iter().map(Sym::from_index).collect();
        let inter: Vec<usize> = a.intersection(&b).iter().map(Sym::index).collect();
        assert_eq!(inter, vec![1, 64]);
        let uni: Vec<usize> = a.union(&b).iter().map(Sym::index).collect();
        assert_eq!(uni, vec![0, 1, 64, 65, 130, 200]);
        let diff: Vec<usize> = a.difference(&b).iter().map(Sym::index).collect();
        assert_eq!(diff, vec![0, 65, 130]);
        assert!(a.intersects(&b));
        assert!(!AlphaSet::new().intersects(&a));
    }

    #[test]
    fn alphaset_equality_ignores_capacity() {
        let mut a = AlphaSet::new();
        a.insert(Sym::from_index(2));
        let mut b = AlphaSet::new();
        b.insert(Sym::from_index(2));
        b.insert(Sym::from_index(300));
        b.remove(Sym::from_index(300));
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn alphaset_iter_ascending() {
        let s: AlphaSet = [300usize, 5, 64, 0]
            .into_iter()
            .map(Sym::from_index)
            .collect();
        let got: Vec<usize> = s.iter().map(Sym::index).collect();
        assert_eq!(got, vec![0, 5, 64, 300]);
    }
}
