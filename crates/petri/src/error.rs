//! Error types for the Petri net kernel.

use std::error::Error;
use std::fmt;

/// Errors produced by net construction and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PetriError {
    /// A place id referenced a place that does not exist in the net.
    UnknownPlace(u32),
    /// A transition id referenced a transition that does not exist.
    UnknownTransition(u32),
    /// A transition was declared with an empty preset *and* empty postset.
    DegenerateTransition,
    /// State-space exploration exceeded the configured state budget.
    StateBudgetExceeded {
        /// The budget that was exceeded.
        budget: usize,
    },
    /// The net was found (or proven) unbounded during exploration.
    Unbounded {
        /// A place witnessing the unboundedness, if identified.
        witness: Option<u32>,
    },
    /// An operation requiring a safe initial marking was applied to a net
    /// whose initial marking puts more than one token in some place.
    UnsafeInitialMarking(u32),
    /// An operation requiring a marked graph was applied to a net that is
    /// not a marked graph.
    NotMarkedGraph,
    /// Hiding was requested for a transition with a self-loop
    /// (`preset ∩ postset ≠ ∅`), which would create a divergence
    /// (Section 4.4 of the paper).
    HideSelfLoop(u32),
    /// Two nets passed to a binary operator violated a precondition
    /// (described by the message).
    Precondition(String),
    /// A token count would overflow `u32` at the given place.
    TokenOverflow {
        /// The place whose count overflowed.
        place: u32,
    },
    /// A token removal from a place holding too few tokens.
    TokenUnderflow {
        /// The place whose count would go negative.
        place: u32,
    },
    /// Two markings defined over different place counts were combined.
    MarkingLengthMismatch {
        /// Place count of the left-hand marking.
        left: usize,
        /// Place count of the right-hand marking.
        right: usize,
    },
    /// An arena index exceeded the 32-bit id space.
    IndexOverflow {
        /// The offending index.
        index: usize,
    },
    /// The allocator refused a growth request (pathological load); the
    /// structure that reported this is unchanged and still usable.
    AllocationFailed {
        /// The size of the refused allocation, in bytes.
        bytes: usize,
    },
    /// The spill pager failed to move a marking segment to or from disk
    /// (disk full, permission, truncated file). Explorers treat this like
    /// budget exhaustion: the prefix built so far is still sound.
    SpillIo {
        /// The operating-system error, stringified (keeps the enum
        /// `Clone + Eq`).
        detail: String,
    },
}

impl fmt::Display for PetriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PetriError::UnknownPlace(id) => write!(f, "unknown place id {id}"),
            PetriError::UnknownTransition(id) => write!(f, "unknown transition id {id}"),
            PetriError::DegenerateTransition => {
                write!(f, "transition has empty preset and postset")
            }
            PetriError::StateBudgetExceeded { budget } => {
                write!(f, "state budget of {budget} states exceeded")
            }
            PetriError::Unbounded { witness: Some(p) } => {
                write!(f, "net is unbounded (witness place {p})")
            }
            PetriError::Unbounded { witness: None } => write!(f, "net is unbounded"),
            PetriError::UnsafeInitialMarking(p) => {
                write!(f, "initial marking is not safe at place {p}")
            }
            PetriError::NotMarkedGraph => write!(f, "net is not a marked graph"),
            PetriError::HideSelfLoop(t) => {
                write!(
                    f,
                    "cannot hide transition {t}: it has a self-loop (divergence)"
                )
            }
            PetriError::Precondition(msg) => write!(f, "precondition violated: {msg}"),
            PetriError::TokenOverflow { place } => {
                write!(f, "token count overflow at place {place}")
            }
            PetriError::TokenUnderflow { place } => {
                write!(f, "token count underflow at place {place}")
            }
            PetriError::MarkingLengthMismatch { left, right } => {
                write!(f, "markings over different nets ({left} vs {right} places)")
            }
            PetriError::IndexOverflow { index } => {
                write!(f, "index {index} overflows the 32-bit id space")
            }
            PetriError::AllocationFailed { bytes } => {
                write!(f, "allocator refused a {bytes}-byte growth request")
            }
            PetriError::SpillIo { detail } => {
                write!(f, "marking spill i/o failed: {detail}")
            }
        }
    }
}

impl Error for PetriError {}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = PetriError::UnknownPlace(3);
        assert_eq!(e.to_string(), "unknown place id 3");
        let e = PetriError::Unbounded { witness: Some(1) };
        assert!(e.to_string().contains("witness place 1"));
        let e = PetriError::StateBudgetExceeded { budget: 10 };
        assert!(e.to_string().contains("10"));
        let e = PetriError::TokenUnderflow { place: 4 };
        assert!(e.to_string().contains("underflow at place 4"));
        let e = PetriError::MarkingLengthMismatch { left: 2, right: 3 };
        assert!(e.to_string().contains("2 vs 3"));
        let e = PetriError::IndexOverflow { index: 9 };
        assert!(e.to_string().contains("9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PetriError>();
    }
}
