//! Structural net-class recognition and graph-theoretic properties.
//!
//! Section 5.1 of the paper notes that STGs are usually restricted to
//! marked graphs or free-choice nets, for which many properties are
//! checkable in polynomial time, while the algebra itself works on general
//! nets. This module recognizes the classes and provides the structural
//! facts (strong connectivity, incidence matrix) those checks build on.

use crate::graph::DiGraph;
use crate::label::Label;
use crate::net::{PetriNet, PlaceId, TransitionId};

/// The most restrictive classical net class a net belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NetClass {
    /// Every transition has exactly one input and one output place.
    StateMachine,
    /// Every place has exactly one producer and one consumer.
    MarkedGraph,
    /// Shared input places imply singleton presets.
    FreeChoice,
    /// Transitions sharing an input place have identical presets.
    ExtendedFreeChoice,
    /// None of the above.
    General,
}

impl std::fmt::Display for NetClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            NetClass::StateMachine => "state machine",
            NetClass::MarkedGraph => "marked graph",
            NetClass::FreeChoice => "free choice",
            NetClass::ExtendedFreeChoice => "extended free choice",
            NetClass::General => "general",
        };
        f.write_str(s)
    }
}

/// Structural facts about a net.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructuralReport {
    /// Whether every transition has singleton preset and postset.
    pub is_state_machine: bool,
    /// Whether every place has exactly one producer and one consumer.
    pub is_marked_graph: bool,
    /// Whether the net is free-choice.
    pub is_free_choice: bool,
    /// Whether the net is extended free-choice.
    pub is_extended_free_choice: bool,
    /// Whether the place/transition bipartite graph is strongly connected.
    pub strongly_connected: bool,
    /// The most restrictive class (state machine ⊂ … ⊂ general).
    pub class: NetClass,
}

impl<L: Label> PetriNet<L> {
    /// Computes the structural report for this net.
    ///
    /// # Example
    ///
    /// ```
    /// use cpn_petri::{NetClass, PetriNet};
    ///
    /// # fn main() -> Result<(), cpn_petri::PetriError> {
    /// let mut net: PetriNet<&str> = PetriNet::new();
    /// let p = net.add_place("p");
    /// let q = net.add_place("q");
    /// net.add_transition([p], "a", [q])?;
    /// net.add_transition([q], "b", [p])?;
    /// let rep = net.structural();
    /// assert!(rep.is_marked_graph && rep.is_state_machine);
    /// assert!(rep.strongly_connected);
    /// assert_eq!(rep.class, NetClass::StateMachine);
    /// # Ok(())
    /// # }
    /// ```
    pub fn structural(&self) -> StructuralReport {
        let is_state_machine = self
            .transitions()
            .all(|(_, t)| t.preset().len() == 1 && t.postset().len() == 1);

        // Marked graph in the T-net sense: at most one producer and one
        // consumer per place (the common convention that makes the class
        // closed under action prefix, Prop 5.4 of the paper). Analyses
        // that need the strict exactly-one reading go through
        // [`PetriNet::marked_graph_flows`], which checks it separately.
        let is_marked_graph = self
            .place_ids()
            .all(|p| self.producers(p).len() <= 1 && self.consumers(p).len() <= 1);

        // Free choice: for every place p with more than one consumer,
        // every consumer's preset is exactly {p}.
        let is_free_choice = self.place_ids().all(|p| {
            let consumers = self.consumers(p);
            consumers.len() <= 1
                || consumers
                    .iter()
                    .all(|&t| self.transition(t).preset().len() == 1)
        });

        // Extended free choice: transitions sharing any input place have
        // identical presets.
        let is_extended_free_choice = self.place_ids().all(|p| {
            let consumers = self.consumers(p);
            consumers
                .windows(2)
                .all(|w| self.transition(w[0]).preset() == self.transition(w[1]).preset())
        });

        let strongly_connected = self.bipartite_graph().is_strongly_connected();

        let class = if is_state_machine {
            NetClass::StateMachine
        } else if is_marked_graph {
            NetClass::MarkedGraph
        } else if is_free_choice {
            NetClass::FreeChoice
        } else if is_extended_free_choice {
            NetClass::ExtendedFreeChoice
        } else {
            NetClass::General
        };

        StructuralReport {
            is_state_machine,
            is_marked_graph,
            is_free_choice,
            is_extended_free_choice,
            strongly_connected,
            class,
        }
    }

    /// The bipartite place/transition digraph: nodes `0..P` are places,
    /// nodes `P..P+T` are transitions; arcs follow presets and postsets.
    pub fn bipartite_graph(&self) -> DiGraph {
        let np = self.place_count();
        let mut g = DiGraph::new(np + self.transition_count());
        for (tid, t) in self.transitions() {
            let tnode = np + tid.index();
            for p in t.preset() {
                g.add_edge(p.index(), tnode);
            }
            for q in t.postset() {
                g.add_edge(tnode, q.index());
            }
        }
        g
    }

    /// The incidence matrix `C[p][t] = post(t)(p) − pre(t)(p)` with rows
    /// indexed by places and columns by transitions. Self-loop arcs cancel
    /// (as in the firing rule of Definition 2.2).
    pub fn incidence_matrix(&self) -> Vec<Vec<i64>> {
        let mut c = vec![vec![0i64; self.transition_count()]; self.place_count()];
        for (tid, t) in self.transitions() {
            for p in t.preset() {
                if !t.postset().contains(p) {
                    c[p.index()][tid.index()] -= 1;
                }
            }
            for q in t.postset() {
                if !t.preset().contains(q) {
                    c[q.index()][tid.index()] += 1;
                }
            }
        }
        c
    }

    /// For a marked graph, the unique producer and consumer of each place:
    /// `flows[p] = (producer, consumer)`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::PetriError::NotMarkedGraph`] if some place does not
    /// have exactly one producer and one consumer.
    pub fn marked_graph_flows(
        &self,
    ) -> Result<Vec<(TransitionId, TransitionId)>, crate::PetriError> {
        let mut flows = Vec::with_capacity(self.place_count());
        for p in self.place_ids() {
            let prod = self.producers(p);
            let cons = self.consumers(p);
            if prod.len() != 1 || cons.len() != 1 {
                return Err(crate::PetriError::NotMarkedGraph);
            }
            flows.push((prod[0], cons[0]));
        }
        Ok(flows)
    }
}

/// Convenience: the place set of a marked-graph cycle given as transition
/// sequence is rarely needed; what analyses need is the token count of a
/// set of places under the initial marking.
pub fn token_count<L: Label>(net: &PetriNet<L>, places: &[PlaceId]) -> u64 {
    let m0 = net.initial_marking();
    places.iter().map(|&p| u64::from(m0.tokens(p))).sum()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn marked_graph_with_fork_is_not_state_machine() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p0 = net.add_place("p0");
        let pa = net.add_place("pa");
        let pb = net.add_place("pb");
        net.add_transition([p0], "fork", [pa, pb]).unwrap();
        net.add_transition([pa, pb], "join", [p0]).unwrap();
        let rep = net.structural();
        assert!(rep.is_marked_graph);
        assert!(!rep.is_state_machine);
        assert_eq!(rep.class, NetClass::MarkedGraph);
        assert!(rep.strongly_connected);
    }

    #[test]
    fn free_choice_place_with_two_consumers() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let a = net.add_place("a");
        let b = net.add_place("b");
        let c = net.add_place("c");
        net.add_transition([p], "x", [a, c]).unwrap();
        net.add_transition([p], "y", [b]).unwrap();
        net.add_transition([a, c], "ra", [p]).unwrap();
        net.add_transition([b], "rb", [p]).unwrap();
        let rep = net.structural();
        assert!(!rep.is_marked_graph, "p has two consumers");
        assert!(!rep.is_state_machine, "x forks into two places");
        assert!(rep.is_free_choice);
        assert_eq!(rep.class, NetClass::FreeChoice);
    }

    #[test]
    fn non_free_choice_confusion() {
        // p shared by t1 (preset {p}) and t2 (preset {p, q}).
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        let r = net.add_place("r");
        net.add_transition([p], "t1", [r]).unwrap();
        net.add_transition([p, q], "t2", [r]).unwrap();
        let rep = net.structural();
        assert!(!rep.is_free_choice);
        assert!(!rep.is_extended_free_choice);
        assert_eq!(rep.class, NetClass::General);
    }

    #[test]
    fn extended_free_choice_equal_presets() {
        // Two transitions share both input places: EFC but not FC.
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        let r = net.add_place("r");
        net.add_transition([p, q], "t1", [r]).unwrap();
        net.add_transition([p, q], "t2", [r]).unwrap();
        let rep = net.structural();
        assert!(!rep.is_free_choice);
        assert!(rep.is_extended_free_choice);
        assert_eq!(rep.class, NetClass::ExtendedFreeChoice);
    }

    #[test]
    fn incidence_matrix_self_loop_cancels() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "a", [p, q]).unwrap();
        let c = net.incidence_matrix();
        assert_eq!(c[p.index()][0], 0);
        assert_eq!(c[q.index()][0], 1);
    }

    #[test]
    fn marked_graph_flows_errors_on_choice() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "x", [q]).unwrap();
        net.add_transition([p], "y", [q]).unwrap();
        assert!(net.marked_graph_flows().is_err());
    }

    #[test]
    fn marked_graph_flows_on_cycle() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        let a = net.add_transition([p], "a", [q]).unwrap();
        let b = net.add_transition([q], "b", [p]).unwrap();
        let flows = net.marked_graph_flows().unwrap();
        assert_eq!(flows[p.index()], (b, a));
        assert_eq!(flows[q.index()], (a, b));
    }

    #[test]
    fn token_count_sums_initial() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.set_initial(p, 2);
        net.set_initial(q, 1);
        assert_eq!(token_count(&net, &[p, q]), 3);
        assert_eq!(token_count(&net, &[q]), 1);
    }

    #[test]
    fn disconnected_net_not_strongly_connected() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "a", [q]).unwrap();
        assert!(!net.structural().strongly_connected);
    }
}
