//! The [`Label`] trait abstracting transition action labels.
//!
//! The paper's algebra (Section 4) is defined for arbitrary action labels:
//! plain names in the examples, structured signal transitions (`s+`, `s-`)
//! at the STG level, and channel events (`c!`, `c?`) at the CIP level.
//! Everything the kernel and the algebra need from a label is captured
//! here, and the trait is blanket-implemented so downstream crates define
//! plain data types and get algebra support for free.

use std::fmt::{Debug, Display};
use std::hash::Hash;

/// An action label on a Petri net transition.
///
/// Blanket-implemented for every type that is cloneable, totally ordered,
/// hashable and printable — i.e. any reasonable plain-data label type.
///
/// # Example
///
/// ```
/// use cpn_petri::Label;
///
/// fn takes_label<L: Label>(l: &L) -> String { l.to_string() }
/// assert_eq!(takes_label(&"a"), "a");
/// assert_eq!(takes_label(&42u32), "42");
/// ```
pub trait Label: Clone + Eq + Ord + Hash + Debug + Display {}

impl<T: Clone + Eq + Ord + Hash + Debug + Display> Label for T {}
