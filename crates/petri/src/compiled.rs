//! The compiled firing rule: CSR pre/post deltas + consumer adjacency.
//!
//! [`CompiledNet`] flattens a [`PetriNet`]'s
//! `BTreeSet`-based transition relation into four compressed-sparse-row
//! (CSR) arrays so the exploration hot loop runs on contiguous `u32`
//! slices with zero allocation:
//!
//! * `pre` — the full preset of each transition (the enabling test);
//! * `take` — `preset \ postset`, places a firing decrements;
//! * `give` — `postset \ preset`, places a firing increments
//!   (self-loop places appear in neither, exactly as in Definition 2.2);
//! * `consumers` — the *reverse* adjacency place → transitions with that
//!   place in their preset.
//!
//! The consumer adjacency is what kills the per-state
//! `transition_ids()` scan: a transition can only be enabled if **every**
//! preset place is marked, so collecting the consumer lists of the marked
//! places (plus the always-enabled empty-preset transitions) yields a
//! candidate superset that is typically far smaller than `T`. Candidates
//! are deduplicated with a generation-stamped scratch array and sorted
//! ascending, so the explorer examines transitions in exactly the same
//! order as the legacy `for t in transition_ids()` loop — a requirement
//! for bit-identical graphs and `Meter` accounting.

use crate::alphabet::Sym;
use crate::label::Label;
use crate::net::PetriNet;
use crate::netid::NetId;
use crate::store::MarkingStore;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Sentinel token count standing for ω (unbounded) in the Karp–Miller
/// construction. Finite counts are clamped to `OMEGA - 1`, so a plain
/// `>=` on raw words is exactly ω-marking covering.
pub const OMEGA: u32 = u32::MAX;

/// A [`PetriNet`] lowered to flat CSR arrays for exploration.
///
/// Construction is `O(|P| + Σ|preset| + Σ|postset|)`; the compiled form
/// borrows nothing from the source net and is `Send + Sync`, so the
/// parallel explorer shares one copy across worker threads.
///
/// # Example
///
/// ```
/// use cpn_petri::{CompiledNet, PetriNet};
///
/// # fn main() -> Result<(), cpn_petri::PetriError> {
/// let mut net: PetriNet<&str> = PetriNet::new();
/// let p = net.add_place("p");
/// let q = net.add_place("q");
/// net.add_transition([p], "a", [q])?;
/// net.set_initial(p, 1);
/// let compiled = net.compile();
/// let m = net.initial_marking();
/// assert!(compiled.is_enabled(m.as_slice(), 0));
/// let mut next = Vec::new();
/// compiled.fire_into(m.as_slice(), 0, &mut next);
/// assert_eq!(next, vec![0, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CompiledNet {
    places: usize,
    transitions: usize,
    pre_off: Vec<u32>,
    pre: Vec<u32>,
    take_off: Vec<u32>,
    take: Vec<u32>,
    give_off: Vec<u32>,
    give: Vec<u32>,
    cons_off: Vec<u32>,
    cons: Vec<u32>,
    prod_off: Vec<u32>,
    prod: Vec<u32>,
    /// Transitions with an empty preset: enabled in every marking.
    always: Vec<u32>,
    /// Interned label symbol per transition (resolve against the source
    /// net's interner). Lets trace extraction run symbol-only.
    syms: Vec<Sym>,
}

/// Reusable per-worker scratch for candidate deduplication.
///
/// `stamp[t] == gen` marks transition `t` as already collected this
/// round; bumping `gen` clears the set in O(1).
#[derive(Clone, Debug)]
pub struct CandidateScratch {
    stamp: Vec<u32>,
    gen: u32,
}

impl CandidateScratch {
    /// Scratch sized for a net with `transitions` transitions.
    pub fn new(transitions: usize) -> Self {
        CandidateScratch {
            stamp: vec![0; transitions],
            gen: 0,
        }
    }

    fn next_gen(&mut self) -> u32 {
        if self.gen == u32::MAX {
            self.stamp.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
        self.gen
    }
}

/// Reusable scratch for the stubborn-set closure
/// ([`CompiledNet::stubborn_enabled`]): candidate generation, set
/// membership stamps, and the closure worklist.
#[derive(Clone, Debug)]
pub struct StubbornScratch {
    cand: CandidateScratch,
    member: CandidateScratch,
    cands: Vec<u32>,
    work: Vec<u32>,
}

impl StubbornScratch {
    /// Scratch sized for a net with `transitions` transitions.
    pub fn new(transitions: usize) -> Self {
        StubbornScratch {
            cand: CandidateScratch::new(transitions),
            member: CandidateScratch::new(transitions),
            cands: Vec::new(),
            work: Vec::new(),
        }
    }
}

impl CompiledNet {
    /// Number of places (the marking stride).
    pub fn place_count(&self) -> usize {
        self.places
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions
    }

    /// The full preset of transition `t` as place indices (sorted).
    pub fn preset(&self, t: u32) -> &[u32] {
        let (a, b) = (self.pre_off[t as usize], self.pre_off[t as usize + 1]);
        &self.pre[a as usize..b as usize]
    }

    /// Places decremented by firing `t` (`preset \ postset`, sorted).
    pub fn take_set(&self, t: u32) -> &[u32] {
        let (a, b) = (self.take_off[t as usize], self.take_off[t as usize + 1]);
        &self.take[a as usize..b as usize]
    }

    /// Places incremented by firing `t` (`postset \ preset`, sorted).
    pub fn give_set(&self, t: u32) -> &[u32] {
        let (a, b) = (self.give_off[t as usize], self.give_off[t as usize + 1]);
        &self.give[a as usize..b as usize]
    }

    /// The interned label symbol of transition `t`, in the source net's
    /// symbol space.
    #[inline]
    pub fn sym(&self, t: u32) -> Sym {
        self.syms[t as usize]
    }

    /// Transitions with place `p` in their preset (sorted).
    pub fn consumers_of(&self, p: u32) -> &[u32] {
        let (a, b) = (self.cons_off[p as usize], self.cons_off[p as usize + 1]);
        &self.cons[a as usize..b as usize]
    }

    /// Transitions that can **mark** place `p` (sorted): those with `p`
    /// in their give set. Self-loops on `p` are excluded — they need `p`
    /// marked already, so they can never turn an unmarked `p` on. This is
    /// the "necessary enabler" adjacency of the stubborn-set closure.
    pub fn producers_of(&self, p: u32) -> &[u32] {
        let (a, b) = (self.prod_off[p as usize], self.prod_off[p as usize + 1]);
        &self.prod[a as usize..b as usize]
    }

    /// Whether `t` is enabled in the raw marking `m`.
    ///
    /// Works unchanged on ω-markings ([`OMEGA`] is positive).
    #[inline]
    pub fn is_enabled(&self, m: &[u32], t: u32) -> bool {
        self.preset(t).iter().all(|&p| m[p as usize] > 0)
    }

    /// Fires enabled transition `t` in `m`, writing the successor into
    /// `out` (cleared first). The caller guarantees enabledness.
    #[inline]
    pub fn fire_into(&self, m: &[u32], t: u32, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(m);
        for &p in self.take_set(t) {
            debug_assert!(out[p as usize] > 0, "firing a disabled transition");
            out[p as usize] -= 1;
        }
        for &q in self.give_set(t) {
            out[q as usize] = out[q as usize].saturating_add(1);
        }
    }

    /// Fires enabled transition `t` **in place**, returning the updated
    /// content hash of `m` given its prior hash `h` — the zero-copy
    /// O(|take| + |give|) fast path of the sequential explorer.
    ///
    /// The hash is delta-updated per touched place via
    /// [`MarkingStore::entry_hash`], so the result equals
    /// `MarkingStore::hash_slice` of the fired marking without rereading
    /// it. [`CompiledNet::unapply`] reverts the marking exactly (take and
    /// give sets are disjoint by construction, so order is irrelevant).
    /// The caller guarantees enabledness.
    #[inline]
    pub fn apply_hashed(&self, m: &mut [u32], h: u64, t: u32) -> u64 {
        let mut h = h;
        for &p in self.take_set(t) {
            let old = m[p as usize];
            debug_assert!(old > 0, "firing a disabled transition");
            let new = old - 1;
            m[p as usize] = new;
            h = h
                .wrapping_sub(MarkingStore::entry_hash(p as usize, old))
                .wrapping_add(MarkingStore::entry_hash(p as usize, new));
        }
        for &q in self.give_set(t) {
            let old = m[q as usize];
            let new = old.wrapping_add(1);
            m[q as usize] = new;
            h = h
                .wrapping_sub(MarkingStore::entry_hash(q as usize, old))
                .wrapping_add(MarkingStore::entry_hash(q as usize, new));
        }
        h
    }

    /// Reverts an [`CompiledNet::apply_hashed`] of the same transition,
    /// restoring `m` to the pre-firing marking.
    #[inline]
    pub fn unapply(&self, m: &mut [u32], t: u32) {
        for &p in self.take_set(t) {
            m[p as usize] += 1;
        }
        for &q in self.give_set(t) {
            m[q as usize] = m[q as usize].wrapping_sub(1);
        }
    }

    /// ω-aware firing for the Karp–Miller construction: [`OMEGA`]
    /// components are absorbing, finite components clamp at `OMEGA - 1`
    /// so they never accidentally *become* ω by arithmetic.
    #[inline]
    pub fn fire_omega_into(&self, m: &[u32], t: u32, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(m);
        for &p in self.take_set(t) {
            let w = out[p as usize];
            if w != OMEGA {
                debug_assert!(w > 0, "firing a disabled transition");
                out[p as usize] = w - 1;
            }
        }
        for &q in self.give_set(t) {
            let w = out[q as usize];
            if w != OMEGA {
                out[q as usize] = if w >= OMEGA - 1 { OMEGA - 1 } else { w + 1 };
            }
        }
    }

    /// Collects the candidate transitions of marking `m` into `out`:
    /// every empty-preset transition plus every consumer of a marked
    /// place, deduplicated and sorted ascending.
    ///
    /// The result is a superset of the enabled set (a candidate may have
    /// other, unmarked preset places) and a subset of all transitions;
    /// callers re-test with [`CompiledNet::is_enabled`]. Ascending order
    /// matches the legacy full scan, which bit-identical exploration
    /// relies on.
    pub fn enabled_candidates(
        &self,
        m: &[u32],
        scratch: &mut CandidateScratch,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        out.extend_from_slice(&self.always);
        let gen = scratch.next_gen();
        for (p, &w) in m.iter().enumerate() {
            if w == 0 {
                continue;
            }
            for &t in self.consumers_of(p as u32) {
                if scratch.stamp[t as usize] != gen {
                    scratch.stamp[t as usize] = gen;
                    out.push(t);
                }
            }
        }
        out.sort_unstable();
    }

    /// Computes a **stubborn set** at marking `m` and writes its enabled
    /// members into `out`, ascending. Firing only these (instead of the
    /// full enabled set) at every marking still reaches **every deadlock**
    /// of the net, and — when `seeds` is closed over the transitions
    /// adjacent to a watched place set — every reachable valuation of the
    /// watched places (the attractor-set reachability argument).
    ///
    /// The closure is the classic strong-stubborn construction,
    /// deterministic by choosing least indices everywhere:
    ///
    /// * the set is seeded with `seeds` plus the smallest enabled
    ///   transition;
    /// * an **enabled** member pulls in every transition sharing one of
    ///   its preset places (the conflict set via [`consumers_of`]);
    /// * a **disabled** member picks its smallest unmarked preset place as
    ///   scapegoat and pulls in that place's net producers
    ///   ([`producers_of`]) — the transitions that must fire before it can
    ///   become enabled.
    ///
    /// An empty `out` means `m` is a deadlock (no transition enabled at
    /// all); the set otherwise always contains at least one enabled
    /// transition. The language and non-deadlock state set of the reduced
    /// graph are generally **smaller** than the full graph's — callers
    /// needing those must explore unreduced.
    ///
    /// [`consumers_of`]: CompiledNet::consumers_of
    /// [`producers_of`]: CompiledNet::producers_of
    pub fn stubborn_enabled(
        &self,
        m: &[u32],
        seeds: &[u32],
        scratch: &mut StubbornScratch,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        let StubbornScratch {
            cand,
            member,
            cands,
            work,
        } = scratch;
        self.enabled_candidates(m, cand, cands);
        let Some(&seed0) = cands.iter().find(|&&t| self.is_enabled(m, t)) else {
            return; // Deadlock: the empty set is trivially stubborn.
        };
        let gen = member.next_gen();
        work.clear();
        for &t in seeds.iter().chain(std::iter::once(&seed0)) {
            if member.stamp[t as usize] != gen {
                member.stamp[t as usize] = gen;
                work.push(t);
            }
        }
        let mut i = 0;
        while i < work.len() {
            let t = work[i];
            i += 1;
            if self.is_enabled(m, t) {
                for &p in self.preset(t) {
                    for &t2 in self.consumers_of(p) {
                        if member.stamp[t2 as usize] != gen {
                            member.stamp[t2 as usize] = gen;
                            work.push(t2);
                        }
                    }
                }
            } else if let Some(&p) = self.preset(t).iter().find(|&&p| m[p as usize] == 0) {
                for &t2 in self.producers_of(p) {
                    if member.stamp[t2 as usize] != gen {
                        member.stamp[t2 as usize] = gen;
                        work.push(t2);
                    }
                }
            }
        }
        // Enabled ∩ stubborn, in ascending order (candidates are sorted).
        for &t in cands.iter() {
            if member.stamp[t as usize] == gen && self.is_enabled(m, t) {
                out.push(t);
            }
        }
    }
}

impl<L: Label> PetriNet<L> {
    /// Lowers the net to its [`CompiledNet`] CSR form.
    pub fn compile(&self) -> CompiledNet {
        let places = self.place_count();
        let transitions = self.transition_count();
        let mut pre_off = Vec::with_capacity(transitions + 1);
        let mut pre = Vec::new();
        let mut take_off = Vec::with_capacity(transitions + 1);
        let mut take = Vec::new();
        let mut give_off = Vec::with_capacity(transitions + 1);
        let mut give = Vec::new();
        let mut always = Vec::new();
        pre_off.push(0);
        take_off.push(0);
        give_off.push(0);
        let mut cons_count = vec![0u32; places];
        for (id, tr) in self.transitions() {
            if tr.preset().is_empty() {
                always.push(id.index() as u32);
            }
            for &p in tr.preset() {
                pre.push(p.index() as u32);
                cons_count[p.index()] += 1;
                if !tr.postset().contains(&p) {
                    take.push(p.index() as u32);
                }
            }
            for &q in tr.postset() {
                if !tr.preset().contains(&q) {
                    give.push(q.index() as u32);
                }
            }
            pre_off.push(pre.len() as u32);
            take_off.push(take.len() as u32);
            give_off.push(give.len() as u32);
        }
        // Prefix-sum the consumer counts into CSR offsets, then fill by a
        // second pass (transitions in ascending order keeps each
        // consumer list sorted).
        let mut cons_off = Vec::with_capacity(places + 1);
        let mut acc = 0u32;
        cons_off.push(0);
        for &c in &cons_count {
            acc += c;
            cons_off.push(acc);
        }
        let mut cursor: Vec<u32> = cons_off[..places].to_vec();
        let mut cons = vec![0u32; acc as usize];
        for (id, tr) in self.transitions() {
            for &p in tr.preset() {
                cons[cursor[p.index()] as usize] = id.index() as u32;
                cursor[p.index()] += 1;
            }
        }
        // Same trick for the producer adjacency, sourced from the give
        // sets so self-loop places don't list their own observers.
        let mut prod_count = vec![0u32; places];
        for &q in &give {
            prod_count[q as usize] += 1;
        }
        let mut prod_off = Vec::with_capacity(places + 1);
        let mut acc = 0u32;
        prod_off.push(0);
        for &c in &prod_count {
            acc += c;
            prod_off.push(acc);
        }
        let mut cursor: Vec<u32> = prod_off[..places].to_vec();
        let mut prod = vec![0u32; acc as usize];
        for t in 0..transitions {
            let (a, b) = (give_off[t] as usize, give_off[t + 1] as usize);
            for &q in &give[a..b] {
                prod[cursor[q as usize] as usize] = t as u32;
                cursor[q as usize] += 1;
            }
        }
        CompiledNet {
            places,
            transitions,
            pre_off,
            pre,
            take_off,
            take,
            give_off,
            give,
            cons_off,
            cons,
            prod_off,
            prod,
            always,
            syms: self.transitions().map(|(_, tr)| tr.sym()).collect(),
        }
    }
}

/// Hit/miss/size counters of a [`CompiledStore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompiledStoreStats {
    /// Lookups answered from the store without compiling.
    pub hits: u64,
    /// Lookups that had to lower the net to CSR form.
    pub misses: u64,
    /// Number of distinct [`NetId`]s currently stored.
    pub len: usize,
}

/// A thread-safe cache of [`CompiledNet`]s keyed on [`NetId`].
///
/// Structurally equal nets — regardless of construction order, interner
/// order, or place names — share one compiled entry. The incremental
/// pipelines (the derivation store of `cpn-core`, the bench harness, the
/// `cpn-serve` document cache) key compilation here so recomposing a
/// large module stack recompiles only the nets whose structure changed;
/// the hit/miss counters are how the incremental-recompile smoke test
/// asserts that untouched modules were *not* recompiled.
///
/// # Sharing caveat
///
/// A cached [`CompiledNet`] keeps the place/transition arena numbering
/// and the interned [`Sym`]s of whichever net compiled it *first*.
/// Canonical-form equality guarantees a structure-preserving bijection,
/// so every isomorphism-invariant answer (state counts, boundedness,
/// deadlock verdicts, label-sequence languages) is identical — but raw
/// ids in the compiled arrays must not be mapped back through a
/// *different* net's arenas or interner.
pub struct CompiledStore {
    inner: Mutex<HashMap<NetId, Arc<CompiledNet>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for CompiledStore {
    fn default() -> Self {
        Self::new()
    }
}

impl CompiledStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        CompiledStore {
            inner: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A poison-tolerant lock: compiling never leaves the map in a
    /// half-written state, so a panicked holder's data is still valid.
    fn lock(&self) -> MutexGuard<'_, HashMap<NetId, Arc<CompiledNet>>> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns the compiled form of `net`, computing and canonicalizing
    /// its [`NetId`] first. Use
    /// [`get_or_compile_keyed`](Self::get_or_compile_keyed) when the id
    /// is already known.
    pub fn get_or_compile<L: Label>(&self, net: &PetriNet<L>) -> (NetId, Arc<CompiledNet>) {
        let id = net.net_id();
        let compiled = self.get_or_compile_keyed(id, net);
        (id, compiled)
    }

    /// Returns the compiled form for an already-computed [`NetId`].
    ///
    /// Compilation runs outside the lock; when two threads miss on the
    /// same id concurrently, the first insert wins and the loser's
    /// compile is discarded (both results are equivalent).
    pub fn get_or_compile_keyed<L: Label>(&self, id: NetId, net: &PetriNet<L>) -> Arc<CompiledNet> {
        if let Some(hit) = self.lock().get(&id) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(net.compile());
        Arc::clone(self.lock().entry(id).or_insert(compiled))
    }

    /// The compiled entry for `id`, if present. Does not touch the
    /// hit/miss counters.
    #[must_use]
    pub fn peek(&self, id: NetId) -> Option<Arc<CompiledNet>> {
        self.lock().get(&id).map(Arc::clone)
    }

    /// Current counters and entry count.
    #[must_use]
    pub fn stats(&self) -> CompiledStoreStats {
        CompiledStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            len: self.lock().len(),
        }
    }

    /// Drops every cached entry; counters are preserved.
    pub fn clear(&self) {
        self.lock().clear();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::marking::Marking;

    fn fig_like() -> PetriNet<&'static str> {
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let pa = net.add_place("pa");
        let pb = net.add_place("pb");
        let end = net.add_place("end");
        net.add_transition([p0], "fork", [pa, pb]).unwrap();
        net.add_transition([pa], "a", [end]).unwrap();
        net.add_transition([pb], "b", [end]).unwrap();
        net.add_transition([pa, pb], "both", [end]).unwrap();
        net.set_initial(p0, 1);
        net
    }

    #[test]
    fn compiled_matches_interpreter_on_enabling_and_firing() {
        let net = fig_like();
        let c = net.compile();
        let mut worklist = vec![net.initial_marking()];
        let mut seen = vec![net.initial_marking()];
        let mut out = Vec::new();
        while let Some(m) = worklist.pop() {
            for t in net.transition_ids() {
                let ti = t.index() as u32;
                assert_eq!(net.is_enabled(&m, t), c.is_enabled(m.as_slice(), ti));
                if net.is_enabled(&m, t) {
                    let fired = net.fire(&m, t).unwrap();
                    c.fire_into(m.as_slice(), ti, &mut out);
                    assert_eq!(fired.as_slice(), out.as_slice());
                    let fired_m = Marking::from_counts(out.clone());
                    if !seen.contains(&fired_m) {
                        seen.push(fired_m.clone());
                        worklist.push(fired_m);
                    }
                }
            }
        }
        assert!(seen.len() >= 4);
    }

    #[test]
    fn candidates_cover_enabled_set_in_ascending_order() {
        let net = fig_like();
        let c = net.compile();
        let mut scratch = CandidateScratch::new(c.transition_count());
        let mut cands = Vec::new();
        for m in [
            Marking::from_counts(vec![1, 0, 0, 0]),
            Marking::from_counts(vec![0, 1, 1, 0]),
            Marking::from_counts(vec![0, 0, 1, 2]),
        ] {
            c.enabled_candidates(m.as_slice(), &mut scratch, &mut cands);
            let mut sorted = cands.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(cands, sorted, "sorted and deduplicated");
            let enabled: Vec<u32> = net
                .enabled_transitions(&m)
                .iter()
                .map(|t| t.index() as u32)
                .collect();
            for t in &enabled {
                assert!(cands.contains(t), "enabled {t} missing from candidates");
            }
        }
    }

    #[test]
    fn self_loop_places_are_neither_taken_nor_given() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        let t = net.add_transition([p], "a", [p, q]).unwrap();
        net.set_initial(p, 1);
        let c = net.compile();
        assert_eq!(c.take_set(t.index() as u32), &[] as &[u32]);
        assert_eq!(c.give_set(t.index() as u32), &[q.index() as u32]);
        let mut out = Vec::new();
        c.fire_into(&[1, 0], 0, &mut out);
        assert_eq!(out, vec![1, 1]);
    }

    #[test]
    fn omega_firing_is_absorbing_and_clamped() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "a", [q]).unwrap();
        let c = net.compile();
        let mut out = Vec::new();
        c.fire_omega_into(&[OMEGA, 5], 0, &mut out);
        assert_eq!(out, vec![OMEGA, 6], "omega preset is not decremented");
        c.fire_omega_into(&[3, OMEGA], 0, &mut out);
        assert_eq!(out, vec![2, OMEGA], "omega postset is not incremented");
        c.fire_omega_into(&[1, OMEGA - 1], 0, &mut out);
        assert_eq!(out, vec![0, OMEGA - 1], "finite counts clamp below omega");
    }

    #[test]
    fn producer_adjacency_excludes_self_loops() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "a", [q]).unwrap();
        net.add_transition([q], "b", [p, q]).unwrap(); // self-loop on q
        let c = net.compile();
        assert_eq!(c.producers_of(p.index() as u32), &[1]);
        // "b" keeps q marked but cannot mark an unmarked q.
        assert_eq!(c.producers_of(q.index() as u32), &[0]);
    }

    #[test]
    fn stubborn_set_separates_independent_components() {
        // Two disjoint 2-cycles: at any marking only one component's
        // transition should be selected.
        let mut net: PetriNet<&str> = PetriNet::new();
        let a0 = net.add_place("a0");
        let a1 = net.add_place("a1");
        let b0 = net.add_place("b0");
        let b1 = net.add_place("b1");
        net.add_transition([a0], "fwd_a", [a1]).unwrap();
        net.add_transition([a1], "bck_a", [a0]).unwrap();
        net.add_transition([b0], "fwd_b", [b1]).unwrap();
        net.add_transition([b1], "bck_b", [b0]).unwrap();
        net.set_initial(a0, 1);
        net.set_initial(b0, 1);
        let c = net.compile();
        let mut scratch = StubbornScratch::new(c.transition_count());
        let mut out = Vec::new();
        c.stubborn_enabled(&[1, 0, 1, 0], &[], &mut scratch, &mut out);
        assert_eq!(out, vec![0], "only the first component is explored");
        // Seeding the other component forces it into the set.
        c.stubborn_enabled(&[1, 0, 1, 0], &[2], &mut scratch, &mut out);
        assert_eq!(out, vec![0, 2]);
        // A deadlock marking yields the empty set.
        c.stubborn_enabled(&[0, 0, 0, 0], &[], &mut scratch, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn stubborn_set_closes_conflicts() {
        // fork puts tokens in pa and pb; a, b, and both all contend.
        let net = fig_like();
        let c = net.compile();
        let mut scratch = StubbornScratch::new(c.transition_count());
        let mut out = Vec::new();
        // pa and pb marked: "a" conflicts with "both" via pa, and "both"
        // conflicts with "b" via pb — all three must be in the set.
        c.stubborn_enabled(&[0, 1, 1, 0], &[], &mut scratch, &mut out);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn consumer_adjacency_matches_net_consumers() {
        let net = fig_like();
        let c = net.compile();
        for p in net.place_ids() {
            let expect: Vec<u32> = net.consumers(p).iter().map(|t| t.index() as u32).collect();
            assert_eq!(c.consumers_of(p.index() as u32), expect.as_slice());
        }
    }

    #[test]
    fn store_shares_compiled_entries_across_equal_nets() {
        let store = CompiledStore::new();
        let (id1, c1) = store.get_or_compile(&fig_like());
        let (id2, c2) = store.get_or_compile(&fig_like());
        assert_eq!(id1, id2);
        assert!(Arc::ptr_eq(&c1, &c2), "second lookup must reuse the Arc");
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
        assert!(store.peek(id1).is_some());
    }

    #[test]
    fn store_misses_on_structural_change() {
        let store = CompiledStore::new();
        let (id1, _) = store.get_or_compile(&fig_like());
        let mut changed = fig_like();
        let extra = changed.add_place("extra");
        changed.set_initial(extra, 1);
        let (id2, _) = store.get_or_compile(&changed);
        assert_ne!(id1, id2);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (0, 2, 2));
        store.clear();
        assert_eq!(store.stats().len, 0);
    }
}
