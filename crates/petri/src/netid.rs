//! Content-addressed structural net identity.
//!
//! [`NetId`] is a 128-bit hash of a net's **canonical form**: a
//! serialization that depends only on the net's structure — the label
//! multiset on transitions, the flow relation, and the initial marking —
//! and not on the order places, transitions, or labels happened to be
//! constructed in, nor on place names, nor on `.cpn` formatting. Two
//! nets built through reversed interners, permuted arenas, or
//! whitespace-mangled documents canonicalize to the same bytes and so
//! share a `NetId`.
//!
//! The id is the universal cache key of the workspace: the hash-consed
//! derivation store in `cpn-core` memoizes algebra operations on child
//! ids, the [`CompiledStore`](crate::compiled::CompiledStore) keys
//! compiled firing rules on it, and the `cpn-serve` document cache uses
//! it to recognize structurally equivalent submissions behind different
//! byte streams.
//!
//! # Canonicalization
//!
//! Canonical form is computed by partition refinement (1-dimensional
//! Weisfeiler–Leman color refinement over the place/transition bipartite
//! graph) followed by greedy individualization:
//!
//! 1. **Labels** are sorted by their `Ord` order — interner-independent
//!    — and assigned dense canonical indices.
//! 2. **Initial colors**: a place is colored by its initial token
//!    count; a transition by its canonical label index and preset /
//!    postset sizes.
//! 3. **Refinement**: each round recolors every place by the sorted
//!    multiset of (adjacent transition color, consumer/producer role)
//!    and every transition by its label color plus the sorted colors of
//!    its preset and postset, until the partition stabilizes.
//! 4. **Individualization**: while some place color class has more than
//!    one member, the first member of the smallest-ranked class is
//!    given a fresh color and refinement is re-run.
//!
//! The resulting place order is total, and transitions are then sorted
//! by (canonical label, canonical preset, canonical postset).
//!
//! # Guarantees
//!
//! * **Soundness** (always): `NetId` is the FNV-1a-128 hash of the
//!   canonical bytes of the *actual* net, so id equality implies
//!   canonical-form equality up to a 128-bit hash collision. The
//!   property suite in `tests/netid.rs` checks hash-equal ⟹
//!   bytes-equal on generated nets.
//! * **Completeness** (practical): nets whose refinement is discrete —
//!   in particular any net whose transition labels are pairwise
//!   distinct, and any pair of nets differing only in construction
//!   order, interner order, or place names — map to equal ids. For
//!   nets with non-trivial automorphism-like symmetry that refinement
//!   cannot resolve, two isomorphic nets may receive *different* ids
//!   (a cache miss, never a false hit): greedy individualization picks
//!   a representative without a backtracking canonical search.

use crate::hash::Fnv128;
use crate::label::Label;
use crate::net::{PetriNet, PlaceId, TransitionId};
use crate::Sym;
use std::fmt;

/// A content-addressed structural identity: the canonical-form hash.
///
/// Stable across runs, platforms, interner orders, arena numbering and
/// formatting; place names are **not** part of the identity (renaming
/// places preserves the id; renaming *labels* does not).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(u128);

impl NetId {
    /// The identity of a net — [`canonical_form`] hashed with
    /// FNV-1a-128.
    #[must_use]
    pub fn of<L: Label>(net: &PetriNet<L>) -> NetId {
        let mut h = Fnv128::new();
        h.write(&canonical_form(net));
        NetId(h.finish())
    }

    /// The raw 128-bit hash value.
    #[must_use]
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Rebuilds an id from its raw value (wire decoding).
    #[must_use]
    pub fn from_u128(v: u128) -> NetId {
        NetId(v)
    }
}

impl fmt::Debug for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NetId({:032x})", self.0)
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// The canonical orderings behind a net's [`NetId`].
///
/// `places[i]` / `transitions[i]` is the original id at canonical
/// position `i`; `labels[i]` is the symbol (in the net's interner) of
/// the canonically `i`-th label. The canonical `.cpn` writer renders
/// nets through this permutation so structurally equal nets serialize
/// byte-identically.
#[derive(Clone, Debug)]
pub struct CanonicalOrder {
    /// Canonical position → original place id.
    pub places: Vec<PlaceId>,
    /// Canonical position → original transition id.
    pub transitions: Vec<TransitionId>,
    /// Canonical label index → symbol in the net's interner.
    pub labels: Vec<Sym>,
}

/// Computes the canonical place/transition/label orderings of a net.
#[must_use]
pub fn canonical_order<L: Label>(net: &PetriNet<L>) -> CanonicalOrder {
    Canonicalizer::new(net).run()
}

/// The canonical serialization of a net: a byte string that is equal
/// for two nets exactly when they have the same canonical form (see
/// the module docs for what that guarantees). [`NetId::of`] is the
/// 128-bit FNV-1a hash of these bytes.
#[must_use]
pub fn canonical_form<L: Label>(net: &PetriNet<L>) -> Vec<u8> {
    let order = canonical_order(net);
    serialize(net, &order)
}

impl<L: Label> PetriNet<L> {
    /// This net's content-addressed structural identity (see
    /// [`NetId`]). `O((P + T) · rounds)` with small constants; cache
    /// the result rather than recomputing in hot loops.
    #[must_use]
    pub fn net_id(&self) -> NetId {
        NetId::of(self)
    }
}

const ROLE_CONSUMER: u64 = 0xC0;
const ROLE_PRODUCER: u64 = 0xBB;
const SEP: u64 = 0x5E9A_11AD;

/// Working state of the refinement + individualization loop. Colors are
/// dense ranks (canonically numbered by sorting round signatures), so
/// equal structures get equal rank vectors regardless of arena order.
struct Canonicalizer<'a, L: Label> {
    net: &'a PetriNet<L>,
    /// Canonical label index per transition (label-sorted dense rank).
    t_label: Vec<u64>,
    /// Canonical label index → symbol.
    label_order: Vec<Sym>,
    place_color: Vec<u64>,
    trans_color: Vec<u64>,
}

impl<'a, L: Label> Canonicalizer<'a, L> {
    fn new(net: &'a PetriNet<L>) -> Self {
        // Canonical label order: every symbol that is in the alphabet
        // or on a transition, sorted by the label's `Ord` (interner
        // independent). Symbols that are interned but neither declared
        // nor used carry no structure and are excluded.
        let mut used: Vec<Sym> = net.alphabet_syms().iter().collect();
        for (_, t) in net.transitions() {
            if !net.alphabet_syms().contains(t.sym()) {
                used.push(t.sym());
            }
        }
        used.sort_by(|&a, &b| net.resolve(a).cmp(net.resolve(b)));
        used.dedup();
        let mut rank_of_sym = vec![u64::MAX; net.interner().len()];
        for (rank, &s) in used.iter().enumerate() {
            rank_of_sym[s.index()] = rank as u64;
        }
        let t_label: Vec<u64> = net
            .transitions()
            .map(|(_, t)| rank_of_sym[t.sym().index()])
            .collect();
        Canonicalizer {
            net,
            t_label,
            label_order: used,
            place_color: Vec::new(),
            trans_color: Vec::new(),
        }
    }

    /// Dense canonical re-ranking: replaces each signature by its rank
    /// among the sorted distinct signatures. Equal structures produce
    /// equal signature multisets, so ranks are construction-order free.
    fn rank<T: Ord>(sigs: &[T]) -> Vec<u64> {
        let mut distinct: Vec<&T> = sigs.iter().collect();
        distinct.sort_unstable();
        distinct.dedup();
        sigs.iter()
            .map(|s| distinct.partition_point(|d| *d < s) as u64)
            .collect()
    }

    /// One refinement round; returns the new (place, transition) colors.
    fn refine_round(&self) -> (Vec<u64>, Vec<u64>) {
        let net = self.net;
        let mut p_sig: Vec<Vec<u64>> = self
            .place_color
            .iter()
            .map(|&c| vec![c.wrapping_mul(2).wrapping_add(1)])
            .collect();
        let mut t_sig: Vec<u64> = Vec::with_capacity(net.transition_count());
        let mut scratch: Vec<u64> = Vec::new();
        for (ti, (_, t)) in net.transitions().enumerate() {
            let tc = self.trans_color[ti];
            for p in t.preset() {
                p_sig[p.index()].push(tc.wrapping_mul(4) ^ ROLE_CONSUMER);
            }
            for p in t.postset() {
                p_sig[p.index()].push(tc.wrapping_mul(4) ^ ROLE_PRODUCER);
            }
            let mut h = Fnv128::new();
            h.write_u64(tc);
            h.write_u64(self.t_label[ti]);
            h.write_u64(SEP);
            scratch.clear();
            scratch.extend(t.preset().iter().map(|p| self.place_color[p.index()]));
            scratch.sort_unstable();
            for &c in &scratch {
                h.write_u64(c);
            }
            h.write_u64(SEP);
            scratch.clear();
            scratch.extend(t.postset().iter().map(|p| self.place_color[p.index()]));
            scratch.sort_unstable();
            for &c in &scratch {
                h.write_u64(c);
            }
            t_sig.push(h.finish() as u64);
        }
        // Rank by (old color, signature): the refined partition always
        // refines the old one, so keying on the old color first keeps
        // class numbering aligned round over round — once the partition
        // is stable the color *vector* is exactly reproduced, which is
        // what the fixpoint test compares (ranking raw signature hashes
        // alone can permute stable classes forever).
        let p_pair: Vec<(u64, u64)> = p_sig
            .into_iter()
            .enumerate()
            .map(|(pi, mut sig)| {
                sig[1..].sort_unstable();
                let mut h = Fnv128::new();
                for c in sig {
                    h.write_u64(c);
                }
                (self.place_color[pi], h.finish() as u64)
            })
            .collect();
        let t_pair: Vec<(u64, u64)> = t_sig
            .into_iter()
            .enumerate()
            .map(|(ti, sig)| (self.trans_color[ti], sig))
            .collect();
        (Self::rank(&p_pair), Self::rank(&t_pair))
    }

    /// Refines to a stable partition from the current colors.
    fn refine_to_fixpoint(&mut self) {
        // Each strict refinement increases the distinct color count, so
        // the loop runs at most P + T productive rounds plus one.
        loop {
            let (p, t) = self.refine_round();
            if p == self.place_color && t == self.trans_color {
                return;
            }
            self.place_color = p;
            self.trans_color = t;
        }
    }

    fn run(mut self) -> CanonicalOrder {
        let net = self.net;
        // Initial colors.
        let m0 = net.initial_marking();
        let p_sig: Vec<u64> = net.place_ids().map(|p| u64::from(m0.tokens(p))).collect();
        let t_sig: Vec<u64> = net
            .transitions()
            .enumerate()
            .map(|(ti, (_, t))| {
                let mut h = Fnv128::new();
                h.write_u64(self.t_label[ti]);
                h.write_u64(t.preset().len() as u64);
                h.write_u64(t.postset().len() as u64);
                h.finish() as u64
            })
            .collect();
        self.place_color = Self::rank(&p_sig);
        self.trans_color = Self::rank(&t_sig);
        self.refine_to_fixpoint();

        // Greedy individualization until the place partition is
        // discrete. Choosing the first member of the smallest
        // ambiguous class is isomorphism-invariant whenever the tied
        // members are automorphic (the common case — e.g. parallel
        // places between identically-labeled transitions); see the
        // module docs for the non-automorphic caveat.
        loop {
            let n = self.place_color.len();
            let mut count = vec![0u32; n + 1];
            for &c in &self.place_color {
                count[c as usize] += 1;
            }
            let Some(first_ambiguous) = self
                .place_color
                .iter()
                .enumerate()
                .filter(|&(_, &c)| count[c as usize] > 1)
                .min_by_key(|&(i, &c)| (c, i))
                .map(|(i, _)| i)
            else {
                break;
            };
            // A fresh color strictly above every existing rank.
            self.place_color[first_ambiguous] = n as u64;
            self.place_color = Self::rank(&self.place_color);
            self.refine_to_fixpoint();
        }

        // Final orders.
        let mut places: Vec<PlaceId> = net.place_ids().collect();
        places.sort_by_key(|p| self.place_color[p.index()]);
        let mut canon_pos = vec![0u32; places.len()];
        for (pos, p) in places.iter().enumerate() {
            canon_pos[p.index()] = pos as u32;
        }
        let mut transitions: Vec<(Vec<u32>, TransitionId)> = net
            .transitions()
            .enumerate()
            .map(|(ti, (id, t))| {
                let mut key = Vec::with_capacity(3 + t.preset().len() + t.postset().len());
                key.push(self.t_label[ti] as u32);
                key.push(t.preset().len() as u32);
                let mut pre: Vec<u32> = t.preset().iter().map(|p| canon_pos[p.index()]).collect();
                pre.sort_unstable();
                key.extend(pre);
                key.push(t.postset().len() as u32);
                let mut post: Vec<u32> = t.postset().iter().map(|p| canon_pos[p.index()]).collect();
                post.sort_unstable();
                key.extend(post);
                (key, id)
            })
            .collect();
        transitions.sort();
        CanonicalOrder {
            places,
            transitions: transitions.into_iter().map(|(_, id)| id).collect(),
            labels: self.label_order,
        }
    }
}

/// Serializes a net through a canonical order. Field boundaries are
/// length-prefixed so no two distinct structures share bytes.
fn serialize<L: Label>(net: &PetriNet<L>, order: &CanonicalOrder) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"CPNCANON1");
    push_u64(&mut out, net.place_count() as u64);
    push_u64(&mut out, net.transition_count() as u64);
    push_u64(&mut out, order.labels.len() as u64);
    for &s in &order.labels {
        let text = net.resolve(s).to_string();
        push_u64(&mut out, text.len() as u64);
        out.extend_from_slice(text.as_bytes());
        out.push(u8::from(net.alphabet_syms().contains(s)));
    }
    let m0 = net.initial_marking();
    for &p in &order.places {
        push_u64(&mut out, u64::from(m0.tokens(p)));
    }
    let mut label_rank = vec![u64::MAX; net.interner().len()];
    for (rank, &s) in order.labels.iter().enumerate() {
        label_rank[s.index()] = rank as u64;
    }
    let mut canon_pos = vec![0u64; net.place_count()];
    for (pos, p) in order.places.iter().enumerate() {
        canon_pos[p.index()] = pos as u64;
    }
    for &tid in &order.transitions {
        let t = net.transition(tid);
        push_u64(&mut out, label_rank[t.sym().index()]);
        let mut pre: Vec<u64> = t.preset().iter().map(|p| canon_pos[p.index()]).collect();
        pre.sort_unstable();
        push_u64(&mut out, pre.len() as u64);
        for v in pre {
            push_u64(&mut out, v);
        }
        let mut post: Vec<u64> = t.postset().iter().map(|p| canon_pos[p.index()]).collect();
        post.sort_unstable();
        push_u64(&mut out, post.len() as u64);
        for v in post {
            push_u64(&mut out, v);
        }
    }
    out
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn cycle(first: &str, second: &str) -> PetriNet<String> {
        let mut net: PetriNet<String> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], first.to_owned(), [q]).unwrap();
        net.add_transition([q], second.to_owned(), [p]).unwrap();
        net.set_initial(p, 1);
        net
    }

    #[test]
    fn equal_nets_share_an_id() {
        assert_eq!(cycle("a", "b").net_id(), cycle("a", "b").net_id());
    }

    #[test]
    fn labels_are_part_of_the_identity() {
        assert_ne!(cycle("a", "b").net_id(), cycle("a", "c").net_id());
    }

    #[test]
    fn place_names_are_not_part_of_the_identity() {
        let mut renamed: PetriNet<String> = PetriNet::new();
        let p = renamed.add_place("idle");
        let q = renamed.add_place("busy");
        renamed.add_transition([p], "a".to_owned(), [q]).unwrap();
        renamed.add_transition([q], "b".to_owned(), [p]).unwrap();
        renamed.set_initial(p, 1);
        assert_eq!(cycle("a", "b").net_id(), renamed.net_id());
    }

    #[test]
    fn interner_order_does_not_matter() {
        let mut reversed: PetriNet<String> = PetriNet::new();
        reversed.intern_label(&"b".to_owned());
        reversed.intern_label(&"a".to_owned());
        let p = reversed.add_place("p");
        let q = reversed.add_place("q");
        reversed.add_transition([p], "a".to_owned(), [q]).unwrap();
        reversed.add_transition([q], "b".to_owned(), [p]).unwrap();
        reversed.set_initial(p, 1);
        assert_eq!(cycle("a", "b").net_id(), reversed.net_id());
    }

    #[test]
    fn place_order_does_not_matter() {
        let mut permuted: PetriNet<String> = PetriNet::new();
        let q = permuted.add_place("q");
        let p = permuted.add_place("p");
        permuted.add_transition([q], "b".to_owned(), [p]).unwrap();
        permuted.add_transition([p], "a".to_owned(), [q]).unwrap();
        permuted.set_initial(p, 1);
        assert_eq!(cycle("a", "b").net_id(), permuted.net_id());
    }

    #[test]
    fn marking_is_part_of_the_identity() {
        let mut two = cycle("a", "b");
        two.set_initial(PlaceId::from_index(0), 2);
        assert_ne!(two.net_id(), cycle("a", "b").net_id());
    }

    #[test]
    fn declared_alphabet_is_part_of_the_identity() {
        let mut declared = cycle("a", "b");
        declared.declare_label("c".to_owned());
        assert_ne!(declared.net_id(), cycle("a", "b").net_id());
        // But merely *interning* (a hidden label keeping its symbol
        // resolvable) is not structure.
        let mut interned = cycle("a", "b");
        interned.intern_label(&"c".to_owned());
        assert_eq!(interned.net_id(), cycle("a", "b").net_id());
    }

    #[test]
    fn automorphic_twin_places_are_handled() {
        // Two parallel places between the same pair of transitions:
        // refinement cannot split them, and does not need to — either
        // individualization choice serializes identically.
        let build = |swap: bool| {
            let mut net: PetriNet<String> = PetriNet::new();
            let a = net.add_place("a");
            let b = net.add_place("b");
            let (x, y) = if swap { (b, a) } else { (a, b) };
            let src = net.add_place("src");
            net.add_transition([src], "fill".to_owned(), [x, y])
                .unwrap();
            net.add_transition([x, y], "drain".to_owned(), [src])
                .unwrap();
            net.set_initial(src, 1);
            net
        };
        assert_eq!(build(false).net_id(), build(true).net_id());
    }

    #[test]
    fn empty_net_has_a_stable_id() {
        let a: PetriNet<String> = PetriNet::new();
        let b: PetriNet<String> = PetriNet::new();
        assert_eq!(a.net_id(), b.net_id());
    }

    #[test]
    fn canonical_form_roundtrips_to_equal_bytes() {
        assert_eq!(
            canonical_form(&cycle("a", "b")),
            canonical_form(&cycle("a", "b"))
        );
        assert_ne!(
            canonical_form(&cycle("a", "b")),
            canonical_form(&cycle("b", "a"))
        );
    }
}
