//! Property tests: the three exploration kernels — the legacy cloned-map
//! explorer, the compiled sequential explorer, and the deterministic
//! parallel explorer (2 and 4 threads) — must be **bit-identical** on
//! random nets: same state sequence, same edge lists, same deadlock
//! sets, and the same exhaustion statistics under equal budgets.
//!
//! Driven by the deterministic `cpn-testkit` harness: failures print a
//! case seed, replayable via `CPN_TESTKIT_SEED=<seed>`.

use cpn_petri::{Bounded, Budget, PetriNet, ReachabilityGraph};
use cpn_testkit::{check, prop_assert, prop_assert_eq, NetStrategy};

/// Random nets: 2–5 places, 1–5 uniquely-labeled transitions, up to
/// **three** tokens per place so multiset (non-safe) markings are
/// exercised, not just safe ones.
fn raw_net() -> NetStrategy {
    NetStrategy::new(5, 5, 1).max_tokens(3)
}

/// Asserts two reachability graphs are bit-identical: same state
/// numbering, same markings per state, same ordered edge lists.
fn assert_graphs_identical(
    a: &ReachabilityGraph,
    b: &ReachabilityGraph,
    what: &str,
) -> Result<(), cpn_testkit::PropFail> {
    prop_assert_eq!(a.state_count(), b.state_count(), "{}: state count", what);
    prop_assert_eq!(a.edge_count(), b.edge_count(), "{}: edge count", what);
    prop_assert_eq!(a.initial_state(), b.initial_state(), "{}: initial", what);
    for s in a.state_ids() {
        prop_assert_eq!(
            a.marking_slice(s),
            b.marking_slice(s),
            "{}: marking of {}",
            what,
            s
        );
        prop_assert_eq!(a.edges(s), b.edges(s), "{}: edges of {}", what, s);
    }
    Ok(())
}

fn explorers(
    net: &PetriNet<String>,
    budget: &Budget,
) -> Vec<(&'static str, Bounded<ReachabilityGraph>)> {
    vec![
        ("legacy", net.reachability_bounded_legacy(budget)),
        ("compiled", net.reachability_bounded(budget)),
        ("parallel-2", net.reachability_bounded_parallel(budget, 2)),
        ("parallel-4", net.reachability_bounded_parallel(budget, 4)),
    ]
}

#[test]
fn all_kernels_agree_on_complete_exploration() {
    check(
        "all_kernels_agree_on_complete_exploration",
        &raw_net(),
        |raw| {
            let net = raw.build_indexed();
            let budget = Budget::states(50_000);
            let results = explorers(&net, &budget);
            let (_, reference) = &results[0];
            let Bounded::Complete(ref_rg) = reference else {
                return Ok(()); // budget: skip pathological instances
            };
            for (what, result) in &results[1..] {
                let Bounded::Complete(rg) = result else {
                    prop_assert!(false, "{} exhausted where legacy completed", what);
                    return Ok(());
                };
                assert_graphs_identical(ref_rg, rg, what)?;
                prop_assert_eq!(
                    ref_rg.deadlock_states(),
                    rg.deadlock_states(),
                    "{}: deadlock set",
                    what
                );
                prop_assert_eq!(
                    ref_rg.token_bound(),
                    rg.token_bound(),
                    "{}: token bound",
                    what
                );
            }
            Ok(())
        },
    );
}

#[test]
fn all_kernels_agree_under_tight_budgets() {
    check("all_kernels_agree_under_tight_budgets", &raw_net(), |raw| {
        let net = raw.build_indexed();
        for budget in [
            Budget::states(0),
            Budget::states(1),
            Budget::states(3),
            Budget::new(100, 5),
            Budget::new(4, 100),
        ] {
            let results = explorers(&net, &budget);
            let (_, reference) = &results[0];
            let ref_info = reference.exhausted().copied();
            let ref_rg = reference.value();
            for (what, result) in &results[1..] {
                prop_assert_eq!(
                    result.exhausted().copied(),
                    ref_info,
                    "{}: exhaustion stats under {:?}",
                    what,
                    budget
                );
                assert_graphs_identical(ref_rg, result.value(), what)?;
            }
        }
        Ok(())
    });
}

#[test]
fn deadlock_and_membership_queries_agree() {
    check("deadlock_and_membership_queries_agree", &raw_net(), |raw| {
        let net = raw.build_indexed();
        let Bounded::Complete(rg) = net.reachability_bounded(&Budget::states(50_000)) else {
            return Ok(());
        };
        // Every stored marking is found by the hash index, at its own id.
        for s in rg.state_ids() {
            prop_assert_eq!(rg.find_state(&rg.marking(s)), Some(s));
        }
        // Deadlock states are exactly the edge-free ones.
        let deadlocks = rg.deadlock_states();
        for s in rg.state_ids() {
            prop_assert_eq!(rg.edges(s).is_empty(), deadlocks.contains(&s));
        }
        Ok(())
    });
}
