//! Property tests: the exploration kernels — the legacy cloned-map
//! explorer, the compiled sequential explorer, the lock-free parallel
//! explorer (2, 4, and 8 threads), and the out-of-core spill explorer —
//! must be **bit-identical** on random nets: same state sequence, same
//! edge lists, same deadlock sets, and the same exhaustion statistics
//! under equal budgets.
//!
//! Driven by the deterministic `cpn-testkit` harness: failures print a
//! case seed, replayable via `CPN_TESTKIT_SEED=<seed>`.

use cpn_petri::{
    reachability_bounded_spilled, Bounded, Budget, CancelScope, PetriNet, ReachabilityGraph,
    SpillConfig,
};
use cpn_testkit::{check, prop_assert, prop_assert_eq, NetStrategy};

/// Random nets: 2–5 places, 1–5 uniquely-labeled transitions, up to
/// **three** tokens per place so multiset (non-safe) markings are
/// exercised, not just safe ones.
fn raw_net() -> NetStrategy {
    NetStrategy::new(5, 5, 1).max_tokens(3)
}

/// Asserts two reachability graphs are bit-identical: same state
/// numbering, same markings per state, same ordered edge lists.
fn assert_graphs_identical(
    a: &ReachabilityGraph,
    b: &ReachabilityGraph,
    what: &str,
) -> Result<(), cpn_testkit::PropFail> {
    prop_assert_eq!(a.state_count(), b.state_count(), "{}: state count", what);
    prop_assert_eq!(a.edge_count(), b.edge_count(), "{}: edge count", what);
    prop_assert_eq!(a.initial_state(), b.initial_state(), "{}: initial", what);
    for s in a.state_ids() {
        prop_assert_eq!(
            a.marking_slice(s),
            b.marking_slice(s),
            "{}: marking of {}",
            what,
            s
        );
        prop_assert_eq!(a.edges(s), b.edges(s), "{}: edges of {}", what, s);
    }
    Ok(())
}

fn explorers(
    net: &PetriNet<String>,
    budget: &Budget,
) -> Vec<(&'static str, Bounded<ReachabilityGraph>)> {
    vec![
        ("legacy", net.reachability_bounded_legacy(budget)),
        ("compiled", net.reachability_bounded(budget)),
        ("parallel-2", net.reachability_bounded_parallel(budget, 2)),
        ("parallel-4", net.reachability_bounded_parallel(budget, 4)),
        ("parallel-8", net.reachability_bounded_parallel(budget, 8)),
    ]
}

/// A spill config so small that every segment seals after 4 rows and no
/// payload is allowed to stay resident — maximal page traffic.
fn aggressive_spill() -> SpillConfig {
    SpillConfig {
        resident_payload_bytes: 0,
        segment_rows: 4,
        ..SpillConfig::default()
    }
}

#[test]
fn all_kernels_agree_on_complete_exploration() {
    check(
        "all_kernels_agree_on_complete_exploration",
        &raw_net(),
        |raw| {
            let net = raw.build_indexed();
            let budget = Budget::states(50_000);
            let results = explorers(&net, &budget);
            let (_, reference) = &results[0];
            let Bounded::Complete(ref_rg) = reference else {
                return Ok(()); // budget: skip pathological instances
            };
            for (what, result) in &results[1..] {
                let Bounded::Complete(rg) = result else {
                    prop_assert!(false, "{} exhausted where legacy completed", what);
                    return Ok(());
                };
                assert_graphs_identical(ref_rg, rg, what)?;
                prop_assert_eq!(
                    ref_rg.deadlock_states(),
                    rg.deadlock_states(),
                    "{}: deadlock set",
                    what
                );
                prop_assert_eq!(
                    ref_rg.token_bound(),
                    rg.token_bound(),
                    "{}: token bound",
                    what
                );
            }
            Ok(())
        },
    );
}

#[test]
fn all_kernels_agree_under_tight_budgets() {
    check("all_kernels_agree_under_tight_budgets", &raw_net(), |raw| {
        let net = raw.build_indexed();
        for budget in [
            Budget::states(0),
            Budget::states(1),
            Budget::states(3),
            Budget::new(100, 5),
            Budget::new(4, 100),
        ] {
            let results = explorers(&net, &budget);
            let (_, reference) = &results[0];
            let ref_info = reference.exhausted().copied();
            let ref_rg = reference.value();
            for (what, result) in &results[1..] {
                prop_assert_eq!(
                    result.exhausted().copied(),
                    ref_info,
                    "{}: exhaustion stats under {:?}",
                    what,
                    budget
                );
                assert_graphs_identical(ref_rg, result.value(), what)?;
            }
        }
        Ok(())
    });
}

#[test]
fn spill_explorer_matches_resident_kernel_exactly() {
    // Zero resident budget + 4-row segments turns every lookup into
    // page traffic, so the state budget is kept small: the point is
    // roundtrip fidelity under maximal thrash, not scale (scale is the
    // bench's job).
    let config = cpn_testkit::Config {
        cases: 32,
        ..cpn_testkit::Config::default()
    };
    cpn_testkit::check_with(
        "spill_explorer_matches_resident_kernel_exactly",
        &config,
        &raw_net(),
        |raw| {
            let net = raw.build_indexed();
            let compiled = net.compile();
            let m0 = net.initial_marking();
            for budget in [
                Budget::states(1_500),
                Budget::states(7),
                Budget::new(100, 9),
            ] {
                let resident = net.reachability_bounded(&budget);
                let spilled = reachability_bounded_spilled(
                    &compiled,
                    m0.as_slice(),
                    &budget,
                    &aggressive_spill(),
                );
                prop_assert_eq!(
                    spilled.exhausted().copied(),
                    resident.exhausted().copied(),
                    "exhaustion stats under {:?}",
                    budget
                );
                let ref_rg = resident.value();
                let mut sp = spilled.into_value();
                let sp = &mut sp;
                prop_assert_eq!(sp.state_count(), ref_rg.state_count(), "state count");
                prop_assert_eq!(sp.edge_count(), ref_rg.edge_count(), "edge count");
                prop_assert_eq!(sp.token_bound(), ref_rg.token_bound(), "token bound");
                prop_assert_eq!(sp.deadlock_states(), ref_rg.deadlock_states(), "deadlocks");
                // Every row decodes back byte-identical through the page
                // cache (segments of 4 rows, zero resident budget, so
                // this loop thrashes page-in/page-out on purpose).
                let mut buf = Vec::new();
                for s in ref_rg.state_ids() {
                    let Ok(()) = sp.marking_into(s, &mut buf) else {
                        prop_assert!(false, "spill read failed for {}", s);
                        return Ok(());
                    };
                    prop_assert_eq!(buf.as_slice(), ref_rg.marking_slice(s), "marking {}", s);
                    prop_assert_eq!(sp.edges(s), ref_rg.edges(s), "edges {}", s);
                }
                if ref_rg.state_count() > 8 {
                    let stats = sp.spill_stats();
                    prop_assert!(
                        stats.page_outs > 0,
                        "zero-budget spill config never paged out ({} states)",
                        ref_rg.state_count()
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn cancellation_mid_exploration_is_deterministic() {
    // A pre-cancelled token: every kernel observes the interrupt at its
    // first poll — including parallel workers mid-steal, which must then
    // agree (via the sequential replay) with the directly-run sequential
    // kernel on the exact prefix and stop statistics.
    check(
        "cancellation_mid_exploration_is_deterministic",
        &raw_net(),
        |raw| {
            let net = raw.build_indexed();
            let scope = CancelScope::new();
            scope.cancel();
            let budget = Budget::states(50_000).with_cancel(scope.token());
            let reference = net.reachability_bounded(&budget);
            for threads in [2usize, 4, 8] {
                let parallel = net.reachability_bounded_parallel(&budget, threads);
                prop_assert_eq!(
                    parallel.exhausted().copied(),
                    reference.exhausted().copied(),
                    "stats at {} threads",
                    threads
                );
                assert_graphs_identical(
                    reference.value(),
                    parallel.value(),
                    &format!("cancelled parallel-{threads}"),
                )?;
            }
            Ok(())
        },
    );
}

#[test]
fn deadline_cancellation_mid_steal_terminates() {
    // An already-expired deadline on a workload big enough that all
    // workers are live: exploration must terminate promptly and fall
    // back to the deterministic sequential prefix.
    let net = cpn_testkit::sync_pipeline_net(14);
    let budget = Budget::states(1 << 20).with_deadline(std::time::Duration::ZERO);
    let reference = net.reachability_bounded(&budget);
    for threads in [2usize, 4, 8] {
        let parallel = net.reachability_bounded_parallel(&budget, threads);
        assert_eq!(
            parallel.exhausted().map(|i| i.resource),
            reference.exhausted().map(|i| i.resource),
            "stop resource at {threads} threads"
        );
        assert_eq!(
            parallel.value().state_count(),
            reference.value().state_count(),
            "prefix size at {threads} threads"
        );
    }
}

#[test]
fn deadlock_and_membership_queries_agree() {
    check("deadlock_and_membership_queries_agree", &raw_net(), |raw| {
        let net = raw.build_indexed();
        let Bounded::Complete(rg) = net.reachability_bounded(&Budget::states(50_000)) else {
            return Ok(());
        };
        // Every stored marking is found by the hash index, at its own id.
        for s in rg.state_ids() {
            prop_assert_eq!(rg.find_state(&rg.marking(s)), Some(s));
        }
        // Deadlock states are exactly the edge-free ones.
        let deadlocks = rg.deadlock_states();
        for s in rg.state_ids() {
            prop_assert_eq!(rg.edges(s).is_empty(), deadlocks.contains(&s));
        }
        Ok(())
    });
}
