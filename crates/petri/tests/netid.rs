//! Property tests: `NetId` is a *sound* structural identity.
//!
//! The canonical form (and therefore the 128-bit `NetId` hashed from
//! it) must be invariant under everything that does not change the
//! net-as-structure — place numbering, place names, transition
//! insertion order, interner history, formatting — and must *change*
//! whenever the structure changes (markings, arcs, labels, declared
//! alphabet). The suite drives randomly generated nets, including
//! non-safe markings and non-ASCII labels, through scrambled rebuilds
//! and asserts both directions:
//!
//! * **invariance** — a scrambled rebuild has the identical canonical
//!   byte string (stronger than id equality: no hashing involved);
//! * **soundness** — whenever two nets share a `NetId`, their
//!   canonical forms are byte-identical (hash-equal ⟹
//!   canonical-form-equal; an FNV-128 collision would fail here);
//! * **sensitivity** — structural mutations (token bumps, dropped
//!   transitions, alphabet growth) produce different ids.
//!
//! Driven by the deterministic `cpn-testkit` harness: failures print a
//! case seed, replayable via `CPN_TESTKIT_SEED=<seed>`.

use cpn_petri::{canonical_form, NetId, PetriNet, PlaceId};
use cpn_testkit::{check, prop_assert, prop_assert_eq, NetStrategy, RawNet, Strategy, TestRng};
use std::collections::BTreeSet;

/// Random nets: up to 6 places, up to 6 transitions over 3 label
/// indices (so labels are *shared* between transitions, exercising the
/// refinement rounds), up to **three** tokens per place so multiset
/// (non-safe) markings are covered.
fn raw_net() -> NetStrategy {
    NetStrategy::new(6, 6, 3).max_tokens(3)
}

/// A raw net plus a scramble seed deciding how the rebuild is
/// reordered. Shrinks through the net only (any seed must pass).
#[derive(Clone, Debug)]
struct ScrambledCase {
    net: NetStrategy,
}

impl Strategy for ScrambledCase {
    type Value = (RawNet, u64);

    fn generate(&self, rng: &mut TestRng) -> (RawNet, u64) {
        let raw = self.net.generate(rng);
        let seed = rng.gen_range(0..1 << 30) as u64;
        (raw, seed)
    }

    fn shrink(&self, (raw, seed): &(RawNet, u64)) -> Vec<(RawNet, u64)> {
        self.net
            .shrink(raw)
            .into_iter()
            .map(|r| (r, *seed))
            .collect()
    }
}

fn scrambled() -> ScrambledCase {
    ScrambledCase { net: raw_net() }
}

/// Mixed-script, combining-character, non-ASCII labels: canonical
/// ordering must sort by `Ord` on the label value, never on interner
/// numbering or byte length assumptions.
fn unicode_label(l: usize) -> String {
    const POOL: [&str; 6] = ["τ", "信号", "réq", "ack̈", "ε·µ", "Ω"];
    format!("{}{}", POOL[l % POOL.len()], l)
}

/// Builds `raw` in the reference order: places `0..n`, transitions in
/// declaration order, fresh interner.
fn build_reference(raw: &RawNet, label: impl Fn(usize) -> String) -> PetriNet<String> {
    raw.build_with(|_, l| label(l))
}

/// Builds the *same* net as [`build_reference`] with everything
/// non-structural scrambled by `seed`: places added in a permuted
/// order under different names, transitions inserted in a rotated
/// order, and the interner pre-seeded with labels in reverse `Ord`
/// order (so every `Sym` differs from the reference build).
fn build_scrambled(raw: &RawNet, seed: u64, label: impl Fn(usize) -> String) -> PetriNet<String> {
    let mut rng = TestRng::seed_from_u64(seed);
    let n = raw.places;

    // Fisher–Yates permutation of place insertion order.
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i + 1);
        order.swap(i, j);
    }

    let mut net: PetriNet<String> = PetriNet::new();

    // Reverse-Ord interner pre-seeding: interning is not declaring, so
    // this changes Sym numbering without touching the alphabet.
    let labels: BTreeSet<String> = raw.transitions.iter().map(|t| label(t.label)).collect();
    for l in labels.iter().rev() {
        net.intern_label(l);
    }

    // Places in permuted order, with scrambled names; remember where
    // each reference index landed.
    let mut ids = vec![PlaceId::from_index(0); n];
    for (pos, &i) in order.iter().enumerate() {
        ids[i] = net.add_place(format!("scrambled_{seed}_{pos}"));
    }

    // Transitions in rotated order.
    let k = raw.transitions.len();
    let rot = if k == 0 { 0 } else { rng.gen_range(0..k) };
    for off in 0..k {
        let t = &raw.transitions[(off + rot) % k];
        let pre: BTreeSet<PlaceId> = t.pre.iter().map(|&x| ids[x]).collect();
        let post: BTreeSet<PlaceId> = t.post.iter().map(|&x| ids[x]).collect();
        net.add_transition(pre, label(t.label), post)
            .expect("scrambled transition is valid");
    }

    let mut any_marked = false;
    for (i, &m) in raw.marking.iter().enumerate() {
        if m > 0 {
            net.set_initial(ids[i], m);
            any_marked = true;
        }
    }
    if !any_marked {
        // Mirror RawNet::build_with's fallback token on reference
        // place 0 (NOT insertion position 0).
        net.set_initial(ids[0], 1);
    }

    net
}

#[test]
fn canonical_form_is_invariant_under_scrambling() {
    check(
        "canonical_form_is_invariant_under_scrambling",
        &scrambled(),
        |(raw, seed)| {
            let reference = build_reference(raw, |l| format!("t{l}"));
            let rebuilt = build_scrambled(raw, *seed, |l| format!("t{l}"));
            prop_assert_eq!(
                canonical_form(&reference),
                canonical_form(&rebuilt),
                "canonical bytes differ between reference and scrambled build"
            );
            prop_assert_eq!(reference.net_id(), rebuilt.net_id(), "NetId differs");
            Ok(())
        },
    );
}

#[test]
fn canonical_form_is_invariant_with_unicode_labels() {
    check(
        "canonical_form_is_invariant_with_unicode_labels",
        &scrambled(),
        |(raw, seed)| {
            let reference = build_reference(raw, unicode_label);
            let rebuilt = build_scrambled(raw, *seed, unicode_label);
            prop_assert_eq!(
                canonical_form(&reference),
                canonical_form(&rebuilt),
                "canonical bytes differ under non-ASCII labels"
            );
            prop_assert_eq!(reference.net_id(), rebuilt.net_id());
            // And the labels must actually matter: swapping the label
            // map to ASCII gives a different identity (unless the net
            // has no transitions, where labels don't appear at all —
            // the alphabet of used labels is empty either way).
            if !raw.transitions.is_empty() {
                let ascii = build_reference(raw, |l| format!("t{l}"));
                prop_assert!(
                    ascii.net_id() != reference.net_id(),
                    "relabeling τ→t did not change the id"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn hash_equal_implies_canonical_form_equal() {
    // Soundness both ways: ids agree exactly when the canonical byte
    // strings agree. Pairs mix guaranteed-equal rebuilds with
    // independent draws so both branches get coverage.
    #[derive(Clone, Debug)]
    struct PairCase;
    impl Strategy for PairCase {
        type Value = (RawNet, RawNet, u64, bool);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let a = raw_net().generate(rng);
            let twin = rng.gen_range(0..2) == 0;
            let b = if twin {
                a.clone()
            } else {
                raw_net().generate(rng)
            };
            let seed = rng.gen_range(0..1 << 30) as u64;
            (a, b, seed, twin)
        }
    }

    check(
        "hash_equal_implies_canonical_form_equal",
        &PairCase,
        |(a, b, seed, twin)| {
            let na = build_reference(a, |l| format!("t{l}"));
            let nb = build_scrambled(b, *seed, |l| format!("t{l}"));
            let forms_equal = canonical_form(&na) == canonical_form(&nb);
            let ids_equal = na.net_id() == nb.net_id();
            prop_assert_eq!(
                ids_equal,
                forms_equal,
                "NetId equality must coincide with canonical-form equality"
            );
            if *twin {
                prop_assert!(ids_equal, "a scrambled rebuild of the same raw net");
            }
            Ok(())
        },
    );
}

#[test]
fn structural_mutations_change_the_id() {
    check(
        "structural_mutations_change_the_id",
        &scrambled(),
        |(raw, _)| {
            let reference = build_reference(raw, |l| format!("t{l}"));
            let id = reference.net_id();

            // Token bump on the first marked place (markings are
            // structure).
            let mut bumped = raw.clone();
            if bumped.marking.iter().all(|&m| m == 0) {
                // build_with's fallback marks place 0; make that
                // explicit before bumping so the bump is visible.
                bumped.marking[0] = 1;
            }
            let slot = bumped
                .marking
                .iter()
                .position(|&m| m > 0)
                .unwrap_or_default();
            bumped.marking[slot] += 1;
            let bumped_net = build_reference(&bumped, |l| format!("t{l}"));
            prop_assert!(
                bumped_net.net_id() != id,
                "adding one token did not change the id"
            );

            // Dropping a transition is structure (transition count is
            // serialized).
            if raw.transitions.len() > 1 {
                let mut dropped = raw.clone();
                dropped.transitions.pop();
                let dropped_net = build_reference(&dropped, |l| format!("t{l}"));
                prop_assert!(
                    dropped_net.net_id() != id,
                    "removing a transition did not change the id"
                );
            }

            // Declaring an unused label grows the declared alphabet,
            // which IS structure.
            let mut declared = build_reference(raw, |l| format!("t{l}"));
            declared.declare_label("~never-fired~".to_owned());
            prop_assert!(
                declared.net_id() != id,
                "declaring an alphabet label did not change the id"
            );

            // Merely *interning* a label is not structure.
            let mut interned = build_reference(raw, |l| format!("t{l}"));
            interned.intern_label(&"~never-fired~".to_owned());
            prop_assert_eq!(
                interned.net_id(),
                id,
                "interning without declaring changed the id"
            );
            Ok(())
        },
    );
}

#[test]
fn net_id_is_deterministic_and_stable_across_calls() {
    check(
        "net_id_is_deterministic_and_stable_across_calls",
        &scrambled(),
        |(raw, seed)| {
            let net = build_scrambled(raw, *seed, unicode_label);
            let a = net.net_id();
            let b = net.net_id();
            prop_assert_eq!(a, b, "net_id is not a pure function of the net");
            prop_assert_eq!(
                NetId::from_u128(a.as_u128()),
                a,
                "u128 round-trip lost bits"
            );
            Ok(())
        },
    );
}
