//! Property tests: the kernel's independent analyses must agree with
//! each other on random nets — coverability vs. reachability bounds,
//! semiflow certificates vs. Karp–Miller, structural marked-graph
//! results vs. behavioural ones, Commoner vs. reachability liveness.
//!
//! Driven by the deterministic `cpn-testkit` harness: failures print a
//! case seed, replayable via `CPN_TESTKIT_SEED=<seed>`.

use cpn_petri::invariant::covered_by_p_semiflows;
use cpn_petri::{
    commoner_live, dead_transitions_rg, dead_transitions_structural_mg, mg_live_structural,
    mg_place_bounds, mg_safe_structural, Budget, CoverabilityOutcome, CoverabilityTree, PetriNet,
    PlaceId, ReachabilityOptions,
};
use cpn_testkit::{
    check, prop_assert, prop_assert_eq, prop_assume, u32_in, usize_in, vec_of, NetStrategy,
    RingStrategy,
};

/// Random nets: 2–5 places, 1–5 uniquely-labeled transitions, up to two
/// tokens per place (the historical `proptest` strategy, verbatim).
fn raw_net() -> NetStrategy {
    NetStrategy::new(5, 5, 1).max_tokens(2)
}

/// Random marked-graph rings of length 3–6 with 0/1 tokens per place.
fn raw_mg() -> RingStrategy {
    RingStrategy::new(3, 6, 1)
}

/// A state machine (singleton presets/postsets ⇒ free-choice) over four
/// places from an arc list.
fn build_state_machine(arcs: &[(usize, usize)], marks: &[u32]) -> PetriNet<String> {
    let mut net: PetriNet<String> = PetriNet::new();
    let ps: Vec<PlaceId> = (0..4).map(|i| net.add_place(format!("p{i}"))).collect();
    for (i, &(a, b)) in arcs.iter().enumerate() {
        net.add_transition([ps[a]], format!("t{i}"), [ps[b]])
            .unwrap();
    }
    for (i, &m) in marks.iter().enumerate() {
        net.set_initial(ps[i], m);
    }
    net
}

#[test]
fn coverability_bound_matches_reachability() {
    check(
        "coverability_bound_matches_reachability",
        &raw_net(),
        |raw| {
            let net = raw.build_indexed();
            let Some(tree) =
                CoverabilityTree::build_bounded(&net, &Budget::states(40_000)).complete()
            else {
                return Ok(()); // budget: skip pathological instances
            };
            match tree.outcome() {
                CoverabilityOutcome::Bounded { bound } => {
                    // The KM bound must equal the exact reachable bound.
                    let rg = net
                        .reachability(&ReachabilityOptions::with_max_states(200_000))
                        .expect("bounded nets explore fully");
                    prop_assert_eq!(*bound, rg.token_bound());
                }
                CoverabilityOutcome::Unbounded { witnesses } => {
                    prop_assert!(!witnesses.is_empty());
                    // An unbounded net cannot be covered by P-semiflows.
                    if let Some(covered) = covered_by_p_semiflows(&net, 5_000) {
                        prop_assert!(!covered, "semiflow cover contradicts ω");
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn semiflow_cover_implies_km_bounded() {
    check("semiflow_cover_implies_km_bounded", &raw_net(), |raw| {
        let net = raw.build_indexed();
        let Some(true) = covered_by_p_semiflows(&net, 5_000) else {
            return Ok(());
        };
        let tree = CoverabilityTree::build_bounded(&net, &Budget::states(100_000))
            .complete()
            .expect("covered nets have finite coverability sets");
        prop_assert!(tree.is_bounded());
        Ok(())
    });
}

#[test]
fn structural_mg_dead_matches_rg() {
    check("structural_mg_dead_matches_rg", &raw_mg(), |ring| {
        let net = ring.build();
        let structural = dead_transitions_structural_mg(&net).unwrap();
        let rg = net.reachability(&ReachabilityOptions::default()).unwrap();
        let exact = dead_transitions_rg(&net, &rg);
        prop_assert_eq!(structural, exact);
        Ok(())
    });
}

#[test]
fn structural_mg_liveness_and_safety_match_rg() {
    check(
        "structural_mg_liveness_and_safety_match_rg",
        &raw_mg(),
        |ring| {
            let net = ring.build();
            let rg = net.reachability(&ReachabilityOptions::default()).unwrap();
            let analysis = net.analysis(&rg);
            prop_assert_eq!(mg_live_structural(&net).unwrap(), analysis.live);
            if analysis.live {
                prop_assert_eq!(mg_safe_structural(&net).unwrap(), analysis.safe);
                let bounds = mg_place_bounds(&net).unwrap();
                let max = bounds.iter().map(|b| b.unwrap()).max().unwrap();
                prop_assert_eq!(max, u64::from(analysis.bound));
            }
            Ok(())
        },
    );
}

#[test]
fn commoner_matches_rg_on_random_state_machines() {
    let strategy = (
        vec_of((usize_in(0..4), usize_in(0..4)), 2..=7),
        vec_of(u32_in(0..2), 4..=4),
    );
    check(
        "commoner_matches_rg_on_random_state_machines",
        &strategy,
        |(arcs, marks)| {
            let net = build_state_machine(arcs, marks);
            prop_assume!(net.structural().is_free_choice);
            let Ok(structural) = commoner_live(&net, 100_000) else {
                return Ok(());
            };
            let rg = net
                .reachability(&ReachabilityOptions::with_max_states(100_000))
                .unwrap();
            let behavioural = net.analysis(&rg).live;
            prop_assert_eq!(structural, behavioural, "net:\n{}", net);
            Ok(())
        },
    );
}

/// Regression (formerly `analyses.proptest-regressions`, seed
/// `a8d59970…`): the three-transition cycle `p1→p2→p0→p1` with the only
/// token on p2 — Commoner and the reachability graph must agree.
#[test]
fn regression_commoner_cycle_with_token_on_p2() {
    let arcs = [(1, 2), (2, 0), (0, 1)];
    let marks = [0, 0, 1, 0];
    let net = build_state_machine(&arcs, &marks);
    assert!(net.structural().is_free_choice);
    let structural = commoner_live(&net, 100_000).unwrap();
    let rg = net
        .reachability(&ReachabilityOptions::with_max_states(100_000))
        .unwrap();
    let behavioural = net.analysis(&rg).live;
    assert_eq!(structural, behavioural, "net:\n{net}");
}
