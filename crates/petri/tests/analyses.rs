//! Property tests: the kernel's independent analyses must agree with
//! each other on random nets — coverability vs. reachability bounds,
//! semiflow certificates vs. Karp–Miller, structural marked-graph
//! results vs. behavioural ones, Commoner vs. reachability liveness.

use cpn_petri::invariant::covered_by_p_semiflows;
use cpn_petri::{
    commoner_live, dead_transitions_rg, dead_transitions_structural_mg,
    mg_live_structural, mg_place_bounds, mg_safe_structural, CoverabilityOutcome,
    CoverabilityTree, PetriNet, PlaceId, ReachabilityOptions,
};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct RawNet {
    places: usize,
    transitions: Vec<(Vec<usize>, Vec<usize>)>,
    marking: Vec<u8>,
}

fn raw_net() -> impl Strategy<Value = RawNet> {
    (2usize..6).prop_flat_map(|places| {
        let t = (
            proptest::collection::vec(0..places, 1..=2),
            proptest::collection::vec(0..places, 1..=2),
        );
        (
            proptest::collection::vec(t, 1..=5),
            proptest::collection::vec(0u8..3, places),
        )
            .prop_map(move |(transitions, marking)| RawNet {
                places,
                transitions,
                marking,
            })
    })
}

fn build(raw: &RawNet) -> PetriNet<String> {
    let mut net: PetriNet<String> = PetriNet::new();
    let ps: Vec<PlaceId> = (0..raw.places)
        .map(|i| net.add_place(format!("p{i}")))
        .collect();
    for (i, (pre, post)) in raw.transitions.iter().enumerate() {
        net.add_transition(
            pre.iter().map(|&x| ps[x]),
            format!("t{i}"),
            post.iter().map(|&x| ps[x]),
        )
        .unwrap();
    }
    for (i, &m) in raw.marking.iter().enumerate() {
        net.set_initial(ps[i], u32::from(m));
    }
    net
}

/// A random marked-graph ring with optional chords through fresh places.
fn raw_mg() -> impl Strategy<Value = (usize, Vec<u8>)> {
    (3usize..7).prop_flat_map(|n| {
        proptest::collection::vec(0u8..2, n).prop_map(move |marks| (n, marks))
    })
}

fn build_mg(n: usize, marks: &[u8]) -> PetriNet<String> {
    let mut net: PetriNet<String> = PetriNet::new();
    let ps: Vec<PlaceId> = (0..n).map(|i| net.add_place(format!("p{i}"))).collect();
    for i in 0..n {
        net.add_transition([ps[i]], format!("t{i}"), [ps[(i + 1) % n]])
            .unwrap();
    }
    for (i, &m) in marks.iter().enumerate() {
        net.set_initial(ps[i], u32::from(m));
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn coverability_bound_matches_reachability(raw in raw_net()) {
        let net = build(&raw);
        let Ok(tree) = CoverabilityTree::build(&net, 40_000) else {
            return Ok(()); // budget: skip pathological instances
        };
        match tree.outcome() {
            CoverabilityOutcome::Bounded { bound } => {
                // The KM bound must equal the exact reachable bound.
                let rg = net
                    .reachability(&ReachabilityOptions::with_max_states(200_000))
                    .expect("bounded nets explore fully");
                prop_assert_eq!(*bound, rg.token_bound());
            }
            CoverabilityOutcome::Unbounded { witnesses } => {
                prop_assert!(!witnesses.is_empty());
                // An unbounded net cannot be covered by P-semiflows.
                if let Some(covered) = covered_by_p_semiflows(&net, 5_000) {
                    prop_assert!(!covered, "semiflow cover contradicts ω");
                }
            }
        }
    }

    #[test]
    fn semiflow_cover_implies_km_bounded(raw in raw_net()) {
        let net = build(&raw);
        let Some(true) = covered_by_p_semiflows(&net, 5_000) else {
            return Ok(());
        };
        let tree = CoverabilityTree::build(&net, 100_000)
            .expect("covered nets have finite coverability sets");
        prop_assert!(tree.is_bounded());
    }

    #[test]
    fn structural_mg_dead_matches_rg(mg in raw_mg()) {
        let (n, marks) = mg;
        let net = build_mg(n, &marks);
        let structural = dead_transitions_structural_mg(&net).unwrap();
        let rg = net
            .reachability(&ReachabilityOptions::default())
            .unwrap();
        let exact = dead_transitions_rg(&net, &rg);
        prop_assert_eq!(structural, exact);
    }

    #[test]
    fn structural_mg_liveness_and_safety_match_rg(mg in raw_mg()) {
        let (n, marks) = mg;
        let net = build_mg(n, &marks);
        let rg = net.reachability(&ReachabilityOptions::default()).unwrap();
        let analysis = net.analysis(&rg);
        prop_assert_eq!(mg_live_structural(&net).unwrap(), analysis.live);
        if analysis.live {
            prop_assert_eq!(mg_safe_structural(&net).unwrap(), analysis.safe);
            let bounds = mg_place_bounds(&net).unwrap();
            let max = bounds.iter().map(|b| b.unwrap()).max().unwrap();
            prop_assert_eq!(max, u64::from(analysis.bound));
        }
    }

    #[test]
    fn commoner_matches_rg_on_random_state_machines(
        arcs in proptest::collection::vec((0usize..4, 0usize..4), 2..8),
        marks in proptest::collection::vec(0u8..2, 4),
    ) {
        // State machines (singleton presets/postsets) are free-choice.
        let mut net: PetriNet<String> = PetriNet::new();
        let ps: Vec<PlaceId> = (0..4).map(|i| net.add_place(format!("p{i}"))).collect();
        for (i, &(a, b)) in arcs.iter().enumerate() {
            net.add_transition([ps[a]], format!("t{i}"), [ps[b]]).unwrap();
        }
        for (i, &m) in marks.iter().enumerate() {
            net.set_initial(ps[i], u32::from(m));
        }
        prop_assume!(net.structural().is_free_choice);
        let Ok(structural) = commoner_live(&net, 100_000) else {
            return Ok(());
        };
        let rg = net.reachability(&ReachabilityOptions::with_max_states(100_000)).unwrap();
        let behavioural = net.analysis(&rg).live;
        prop_assert_eq!(structural, behavioural, "net:\n{}", net);
    }
}
