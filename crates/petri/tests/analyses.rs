//! Property tests: the kernel's independent analyses must agree with
//! each other on random nets — coverability vs. reachability bounds,
//! semiflow certificates vs. Karp–Miller, structural marked-graph
//! results vs. behavioural ones, Commoner vs. reachability liveness.
//!
//! Driven by the deterministic `cpn-testkit` harness: failures print a
//! case seed, replayable via `CPN_TESTKIT_SEED=<seed>`.

use cpn_petri::invariant::covered_by_p_semiflows;
use cpn_petri::{
    commoner_live, dead_transitions_rg, dead_transitions_structural_mg, mg_live_structural,
    mg_place_bounds, mg_safe_structural, Budget, CoverabilityOutcome, CoverabilityTree, PetriNet,
    PlaceId, ReachabilityOptions,
};
use cpn_testkit::{
    check, prop_assert, prop_assert_eq, prop_assume, u32_in, usize_in, vec_of, NetStrategy,
    RingStrategy,
};

/// Random nets: 2–5 places, 1–5 uniquely-labeled transitions, up to two
/// tokens per place (the historical `proptest` strategy, verbatim).
fn raw_net() -> NetStrategy {
    NetStrategy::new(5, 5, 1).max_tokens(2)
}

/// Random marked-graph rings of length 3–6 with 0/1 tokens per place.
fn raw_mg() -> RingStrategy {
    RingStrategy::new(3, 6, 1)
}

/// A state machine (singleton presets/postsets ⇒ free-choice) over four
/// places from an arc list.
fn build_state_machine(arcs: &[(usize, usize)], marks: &[u32]) -> PetriNet<String> {
    let mut net: PetriNet<String> = PetriNet::new();
    let ps: Vec<PlaceId> = (0..4).map(|i| net.add_place(format!("p{i}"))).collect();
    for (i, &(a, b)) in arcs.iter().enumerate() {
        net.add_transition([ps[a]], format!("t{i}"), [ps[b]])
            .unwrap();
    }
    for (i, &m) in marks.iter().enumerate() {
        net.set_initial(ps[i], m);
    }
    net
}

#[test]
fn coverability_bound_matches_reachability() {
    check(
        "coverability_bound_matches_reachability",
        &raw_net(),
        |raw| {
            let net = raw.build_indexed();
            let Some(tree) =
                CoverabilityTree::build_bounded(&net, &Budget::states(40_000)).complete()
            else {
                return Ok(()); // budget: skip pathological instances
            };
            match tree.outcome() {
                CoverabilityOutcome::Bounded { bound } => {
                    // The KM bound must equal the exact reachable bound.
                    let rg = net
                        .reachability(&ReachabilityOptions::with_max_states(200_000))
                        .expect("bounded nets explore fully");
                    prop_assert_eq!(*bound, rg.token_bound());
                }
                CoverabilityOutcome::Unbounded { witnesses } => {
                    prop_assert!(!witnesses.is_empty());
                    // An unbounded net cannot be covered by P-semiflows.
                    if let Some(covered) = covered_by_p_semiflows(&net, 5_000) {
                        prop_assert!(!covered, "semiflow cover contradicts ω");
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn semiflow_cover_implies_km_bounded() {
    check("semiflow_cover_implies_km_bounded", &raw_net(), |raw| {
        let net = raw.build_indexed();
        let Some(true) = covered_by_p_semiflows(&net, 5_000) else {
            return Ok(());
        };
        let tree = CoverabilityTree::build_bounded(&net, &Budget::states(100_000))
            .complete()
            .expect("covered nets have finite coverability sets");
        prop_assert!(tree.is_bounded());
        Ok(())
    });
}

#[test]
fn structural_mg_dead_matches_rg() {
    check("structural_mg_dead_matches_rg", &raw_mg(), |ring| {
        let net = ring.build();
        let structural = dead_transitions_structural_mg(&net).unwrap();
        let rg = net.reachability(&ReachabilityOptions::default()).unwrap();
        let exact = dead_transitions_rg(&net, &rg);
        prop_assert_eq!(structural, exact);
        Ok(())
    });
}

#[test]
fn structural_mg_liveness_and_safety_match_rg() {
    check(
        "structural_mg_liveness_and_safety_match_rg",
        &raw_mg(),
        |ring| {
            let net = ring.build();
            let rg = net.reachability(&ReachabilityOptions::default()).unwrap();
            let analysis = net.analysis(&rg);
            prop_assert_eq!(mg_live_structural(&net).unwrap(), analysis.live);
            if analysis.live {
                prop_assert_eq!(mg_safe_structural(&net).unwrap(), analysis.safe);
                let bounds = mg_place_bounds(&net).unwrap();
                let max = bounds.iter().map(|b| b.unwrap()).max().unwrap();
                prop_assert_eq!(max, u64::from(analysis.bound));
            }
            Ok(())
        },
    );
}

#[test]
fn commoner_matches_rg_on_random_state_machines() {
    let strategy = (
        vec_of((usize_in(0..4), usize_in(0..4)), 2..=7),
        vec_of(u32_in(0..2), 4..=4),
    );
    check(
        "commoner_matches_rg_on_random_state_machines",
        &strategy,
        |(arcs, marks)| {
            let net = build_state_machine(arcs, marks);
            prop_assume!(net.structural().is_free_choice);
            let Ok(structural) = commoner_live(&net, 100_000) else {
                return Ok(());
            };
            let rg = net
                .reachability(&ReachabilityOptions::with_max_states(100_000))
                .unwrap();
            let behavioural = net.analysis(&rg).live;
            prop_assert_eq!(structural, behavioural, "net:\n{}", net);
            Ok(())
        },
    );
}

/// Regression (formerly `analyses.proptest-regressions`, seed
/// `a8d59970…`): the three-transition cycle `p1→p2→p0→p1` with the only
/// token on p2 — Commoner and the reachability graph must agree.
#[test]
fn regression_commoner_cycle_with_token_on_p2() {
    let arcs = [(1, 2), (2, 0), (0, 1)];
    let marks = [0, 0, 1, 0];
    let net = build_state_machine(&arcs, &marks);
    assert!(net.structural().is_free_choice);
    let structural = commoner_live(&net, 100_000).unwrap();
    let rg = net
        .reachability(&ReachabilityOptions::with_max_states(100_000))
        .unwrap();
    let behavioural = net.analysis(&rg).live;
    assert_eq!(structural, behavioural, "net:\n{net}");
}

// ----------------------------------------------------------------------
// Deadline / cancellation degradation
// ----------------------------------------------------------------------

/// `n` independent 2-place toggles: the reachability graph has `2^n`
/// states, so any realistic wall-clock deadline trips long before the
/// exploration completes.
fn toggle_net(n: usize) -> PetriNet<String> {
    let mut net: PetriNet<String> = PetriNet::new();
    for i in 0..n {
        let a = net.add_place(format!("a{i}"));
        let b = net.add_place(format!("b{i}"));
        net.set_initial(a, 1);
        net.add_transition([a], format!("up{i}"), [b])
            .expect("toggle up");
        net.add_transition([b], format!("down{i}"), [a])
            .expect("toggle down");
    }
    net
}

#[test]
fn deadline_exceeded_exploration_returns_exhausted_with_partial_results() {
    use cpn_petri::{Bounded, Resource};
    let net = toggle_net(24); // 2^24 states — unreachable under any deadline here
    let budget = Budget::unlimited().with_deadline(std::time::Duration::ZERO);
    match net.reachability_bounded(&budget) {
        Bounded::Exhausted { partial, info } => {
            assert_eq!(info.resource, Resource::Deadline);
            // Partial results are intact: a well-formed graph prefix
            // containing at least the initial state, every edge target
            // inside the explored prefix.
            assert!(partial.state_count() >= 1);
            for s in 0..partial.state_count() {
                for &(_, dst) in partial.edges(cpn_petri::StateId::from_index(s)) {
                    assert!(dst.index() < partial.state_count());
                }
            }
        }
        Bounded::Complete(_) => panic!("zero deadline cannot complete a 2^24 exploration"),
    }
}

#[test]
fn short_deadline_terminates_explosive_exploration_promptly() {
    let net = toggle_net(24);
    let budget = Budget::unlimited().with_deadline(std::time::Duration::from_millis(50));
    let started = std::time::Instant::now();
    let out = net.reachability_bounded(&budget);
    // Generous bound: the poll interval is 1024 meter events, so the
    // overshoot past 50ms is bounded by one interval's work.
    assert!(
        started.elapsed() < std::time::Duration::from_secs(10),
        "deadline did not bound the exploration"
    );
    assert!(!out.is_complete());
}

#[test]
fn cancelled_exploration_stops_with_cancelled_resource() {
    use cpn_petri::{Bounded, CancelScope, Resource};
    let scope = CancelScope::new();
    scope.cancel(); // cancelled before it starts: stops at the first poll
    let net = toggle_net(24);
    let budget = Budget::unlimited().with_cancel(scope.token());
    match net.reachability_bounded(&budget) {
        Bounded::Exhausted { info, .. } => assert_eq!(info.resource, Resource::Cancelled),
        Bounded::Complete(_) => panic!("cancelled exploration cannot complete"),
    }
}

#[test]
fn deadline_applies_to_coverability_and_parallel_exploration() {
    let net = toggle_net(24);
    let budget = Budget::unlimited().with_deadline(std::time::Duration::ZERO);
    assert!(!CoverabilityTree::build_bounded(&net, &budget).is_complete());
    let out = net.reachability_bounded_parallel(&budget, 4);
    assert!(!out.is_complete());
}
