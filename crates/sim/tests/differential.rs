//! Differential oracle: the step simulator against the reachability
//! graph on generated bounded nets — the two independent implementations
//! of the token game must agree on enabled sets and successor markings
//! at every state, and every marking a random walk visits must be a node
//! of the graph (located via the O(1) `find_state` index).
//!
//! Driven by the deterministic `cpn-testkit` harness at ≥100 cases:
//! failures print a case seed, replayable via `CPN_TESTKIT_SEED=<seed>`.

use cpn_petri::{ReachabilityOptions, TransitionId};
use cpn_sim::Simulator;
use cpn_testkit::{check_with, prop_assert, prop_assert_eq, Config, NetStrategy};
use std::collections::BTreeSet;

/// ≥100 cases per suite, still overridable via `CPN_TESTKIT_CASES`.
fn cases() -> Config {
    let config = Config::from_env();
    if std::env::var("CPN_TESTKIT_CASES").is_ok() {
        config
    } else {
        config.with_cases(128)
    }
}

/// Random nets: 2–5 places, 1–5 uniquely-labeled transitions, up to two
/// tokens per place. Unbounded instances are discarded (the graph side
/// of the differential needs a finite state space).
fn raw_net() -> NetStrategy {
    NetStrategy::new(5, 5, 1).max_tokens(2)
}

#[test]
fn enabled_sets_and_successors_agree_at_every_state() {
    check_with(
        "enabled_sets_and_successors_agree_at_every_state",
        &cases(),
        &raw_net(),
        |raw| {
            let net = raw.build_indexed();
            let rg = match net.reachability(&ReachabilityOptions::with_max_states(50_000)) {
                Ok(rg) => rg,
                Err(_) => return Err(cpn_testkit::PropFail::Discard),
            };
            for s in rg.state_ids() {
                let m = rg.marking(s);
                // The net's enabled set vs. the edges the BFS recorded.
                let enabled: BTreeSet<TransitionId> =
                    net.enabled_transitions(&m).into_iter().collect();
                let edge_set: BTreeSet<TransitionId> =
                    rg.edges(s).iter().map(|&(t, _)| t).collect();
                prop_assert_eq!(enabled, edge_set, "enabled set differs at {}", s);
                // Each edge's target is exactly the fired marking, and
                // the index locates it.
                for &(t, to) in rg.edges(s) {
                    let next = net.fire(&m, t).expect("edge transition enabled");
                    prop_assert_eq!(next, rg.marking(to));
                    prop_assert_eq!(rg.find_state(&next), Some(to));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn random_walks_stay_inside_the_reachability_graph() {
    check_with(
        "random_walks_stay_inside_the_reachability_graph",
        &cases(),
        &raw_net(),
        |raw| {
            let net = raw.build_indexed();
            let rg = match net.reachability(&ReachabilityOptions::with_max_states(50_000)) {
                Ok(rg) => rg,
                Err(_) => return Err(cpn_testkit::PropFail::Discard),
            };
            let mut sim = Simulator::new(&net, 0xD1FF);
            let mut state = rg
                .find_state(sim.marking())
                .expect("initial marking is the initial state");
            prop_assert_eq!(state, rg.initial_state());
            for _ in 0..64 {
                let Some(fired) = sim.step() else {
                    // Deadlocked: the graph must agree no edge leaves here.
                    prop_assert!(
                        rg.edges(state).is_empty(),
                        "simulator deadlocked but {} has edges",
                        state
                    );
                    break;
                };
                // The move must be an edge of the graph, and the reached
                // marking that edge's target.
                let next = rg.find_state(sim.marking());
                prop_assert!(
                    next.is_some(),
                    "walk left the reachability graph after firing t{}",
                    fired.index()
                );
                let next = next.unwrap();
                prop_assert!(
                    rg.edges(state).contains(&(fired, next)),
                    "fired t{} from {} to {} but the graph has no such edge",
                    fired.index(),
                    state,
                    next
                );
                state = next;
            }
            Ok(())
        },
    );
}
