//! Runtime receptiveness monitoring: random execution of a composition
//! with the Proposition 5.5 predicate evaluated at every visited state.
//!
//! Where [`cpn_core::check_receptiveness`] explores the full state space,
//! the monitor walks one random path and reports the first state in which
//! some module could commit to an output no peer alternative accepts.
//! Detection is probabilistic — the FIG8 ablation benchmark measures how
//! many random steps it costs compared to the exhaustive and structural
//! checks.

use cpn_core::{parallel_tracked, Side};
use cpn_petri::{Label, Marking, PetriNet, PlaceId};
use cpn_testkit::TestRng;
use std::collections::BTreeSet;

/// A dynamically observed receptiveness failure.
#[derive(Clone, Debug)]
pub struct FailureObservation<L: Label> {
    /// The output that mis-fires.
    pub label: L,
    /// Which operand produced it.
    pub producer: Side,
    /// Steps taken before the failing state was reached.
    pub steps: usize,
    /// The failing marking of the composed net.
    pub marking: Marking,
}

struct Obligation<L: Label> {
    label: L,
    producer: Side,
    producer_pre: BTreeSet<PlaceId>,
    consumer_pres: Vec<BTreeSet<PlaceId>>,
}

/// Randomly executes `n1 ‖ n2` for up to `steps` steps with the given
/// seed, checking the receptiveness predicate at every visited state
/// (including the initial one).
///
/// Returns the first failure observed, or `None` if the walk finished
/// (or deadlocked) without seeing one. `None` is **not** a proof of
/// receptiveness — use the exhaustive check for that.
///
/// # Panics
///
/// Panics if the composition itself cannot be built (degenerate
/// operand nets).
pub fn monitor_composition<L: Label>(
    n1: &PetriNet<L>,
    n2: &PetriNet<L>,
    left_outputs: &BTreeSet<L>,
    right_outputs: &BTreeSet<L>,
    seed: u64,
    steps: usize,
) -> Option<FailureObservation<L>> {
    let sync: BTreeSet<L> = cpn_core::common_alphabet(n1, n2);
    let comp = match parallel_tracked(n1, n2, &sync) {
        Ok(comp) => comp,
        Err(e) => panic!("monitored composition construction: {e}"),
    };

    // Group obligations as the static check does.
    let mut obligations: Vec<Obligation<L>> = Vec::new();
    for s in &comp.sync_transitions {
        let (side, ppre, cpre) = if left_outputs.contains(&s.label) {
            (Side::Left, &s.left_preset, &s.right_preset)
        } else if right_outputs.contains(&s.label) {
            (Side::Right, &s.right_preset, &s.left_preset)
        } else {
            continue;
        };
        match obligations
            .iter_mut()
            .find(|o| o.label == s.label && o.producer == side && o.producer_pre == *ppre)
        {
            Some(o) => o.consumer_pres.push(cpre.clone()),
            None => obligations.push(Obligation {
                label: s.label.clone(),
                producer: side,
                producer_pre: ppre.clone(),
                consumer_pres: vec![cpre.clone()],
            }),
        }
    }

    let check = |m: &Marking, step: usize| -> Option<FailureObservation<L>> {
        for ob in &obligations {
            let producer_ready = ob.producer_pre.iter().all(|&p| m.tokens(p) > 0);
            if !producer_ready {
                continue;
            }
            let some_consumer_ready = ob
                .consumer_pres
                .iter()
                .any(|c| c.iter().all(|&p| m.tokens(p) > 0));
            if !some_consumer_ready {
                return Some(FailureObservation {
                    label: ob.label.clone(),
                    producer: ob.producer,
                    steps: step,
                    marking: m.clone(),
                });
            }
        }
        None
    };

    let mut rng = TestRng::seed_from_u64(seed);
    let mut marking = comp.net.initial_marking();
    if let Some(f) = check(&marking, 0) {
        return Some(f);
    }
    for step in 1..=steps {
        let enabled = comp.net.enabled_transitions(&marking);
        if enabled.is_empty() {
            return None;
        }
        let t = enabled[rng.gen_range(0..enabled.len())];
        let Ok(next) = comp.net.fire(&marking, t) else {
            return None;
        };
        marking = next;
        if let Some(f) = check(&marking, step) {
            return Some(f);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handshake(offset: bool) -> (PetriNet<&'static str>, PetriNet<&'static str>) {
        let mut prod: PetriNet<&str> = PetriNet::new();
        let a0 = prod.add_place("a0");
        let a1 = prod.add_place("a1");
        prod.add_transition([a0], "req", [a1]).unwrap();
        prod.add_transition([a1], "ack", [a0]).unwrap();
        prod.set_initial(a0, 1);
        let mut cons: PetriNet<&str> = PetriNet::new();
        let b0 = cons.add_place("b0");
        let b1 = cons.add_place("b1");
        cons.add_transition([b0], "req", [b1]).unwrap();
        cons.add_transition([b1], "ack", [b0]).unwrap();
        cons.set_initial(if offset { b1 } else { b0 }, 1);
        (prod, cons)
    }

    #[test]
    fn clean_handshake_never_fails() {
        let (p, c) = handshake(false);
        let obs = monitor_composition(&p, &c, &["req"].into(), &["ack"].into(), 5, 10_000);
        assert!(obs.is_none());
    }

    #[test]
    fn phase_offset_detected_at_start() {
        let (p, c) = handshake(true);
        let obs = monitor_composition(&p, &c, &["req"].into(), &["ack"].into(), 5, 10)
            .expect("failure observable");
        assert_eq!(obs.steps, 0, "the initial marking is already failing");
        // Both directions are broken at M0: the producer's req finds no
        // listener, the consumer's ack finds no taker. Either counts.
        assert!(
            (obs.label == "req" && obs.producer == Side::Left)
                || (obs.label == "ack" && obs.producer == Side::Right),
            "unexpected observation {obs:?}"
        );
    }

    #[test]
    fn inconsistent_protocol_sender_detected_dynamically() {
        use cpn_stg::protocol::{sender_inconsistent, translator};
        let s = sender_inconsistent();
        let t = translator();
        let obs = monitor_composition(
            s.net(),
            t.net(),
            &s.output_labels(),
            &t.output_labels(),
            11,
            50_000,
        );
        assert!(obs.is_some(), "Figure 8 observable by random walk");
    }

    #[test]
    fn consistent_protocol_sender_clean_walk() {
        use cpn_stg::protocol::{sender, translator};
        let s = sender();
        let t = translator();
        let obs = monitor_composition(
            s.net(),
            t.net(),
            &s.output_labels(),
            &t.output_labels(),
            11,
            20_000,
        );
        assert!(obs.is_none(), "consistent spec clean: {obs:?}");
    }
}
