//! Token-game simulation: randomized execution of labeled Petri nets.
//!
//! The static analyses in `cpn-core` decide receptiveness and liveness
//! exhaustively; this crate provides their *dynamic* counterpart — a
//! seeded random token game with trace recording, deadlock detection and
//! a runtime receptiveness monitor. It serves three purposes:
//!
//! * sanity-testing models too large for exhaustive analysis budgets;
//! * the FIG8 ablation benchmark (how quickly does random execution
//!   stumble on an inconsistency the static check proves in one pass?);
//! * demonstrating failure scenarios with concrete firing sequences.
//!
//! # Example
//!
//! ```
//! use cpn_petri::PetriNet;
//! use cpn_sim::Simulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut net: PetriNet<&str> = PetriNet::new();
//! let p = net.add_place("p");
//! let q = net.add_place("q");
//! net.add_transition([p], "a", [q])?;
//! net.add_transition([q], "b", [p])?;
//! net.set_initial(p, 1);
//!
//! let mut sim = Simulator::new(&net, 42);
//! let run = sim.run(100);
//! assert_eq!(run.steps, 100);
//! assert!(!run.deadlocked);
//! # Ok(())
//! # }
//! ```

pub mod fault;
pub mod monitor;
pub mod simulator;
pub mod stg_sim;

pub use fault::{
    detector_sensitivity, judge_mg_net, judge_stg, Detection, Fault, FaultClass, FaultPlan,
    SensitivityReport,
};
pub use monitor::{monitor_composition, FailureObservation};
pub use simulator::{RunReport, Simulator};
pub use stg_sim::{RuntimeViolation, StgRunReport, StgSimulator};
