//! The seeded random token-game simulator.

use cpn_petri::{Label, Marking, PetriNet, TransitionId};
use cpn_testkit::TestRng;

/// Statistics from a simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport<L: Label> {
    /// Steps actually taken (may be fewer than requested on deadlock).
    pub steps: usize,
    /// Whether the run ended in a deadlock.
    pub deadlocked: bool,
    /// Firing counts per transition (arena order).
    pub fired: Vec<u64>,
    /// The recorded label trace (capped at the recorder limit).
    pub trace: Vec<L>,
    /// The largest per-place token count observed.
    pub peak_tokens: u32,
}

impl<L: Label> RunReport<L> {
    /// Transitions that never fired during the run.
    pub fn unfired(&self) -> Vec<TransitionId> {
        self.fired
            .iter()
            .enumerate()
            .filter(|(_, &n)| n == 0)
            .map(|(i, _)| TransitionId::from_index(i))
            .collect()
    }
}

/// A random-firing simulator over a borrowed net.
///
/// Each step chooses uniformly among the enabled transitions; the RNG is
/// seeded, so runs are reproducible.
#[derive(Debug)]
pub struct Simulator<'n, L: Label> {
    net: &'n PetriNet<L>,
    marking: Marking,
    rng: TestRng,
    trace_cap: usize,
}

impl<'n, L: Label> Simulator<'n, L> {
    /// Creates a simulator at the net's initial marking.
    pub fn new(net: &'n PetriNet<L>, seed: u64) -> Self {
        Simulator {
            net,
            marking: net.initial_marking(),
            rng: TestRng::seed_from_u64(seed),
            trace_cap: 10_000,
        }
    }

    /// Caps the recorded trace length (default 10 000; firing continues
    /// beyond the cap, only recording stops).
    pub fn with_trace_cap(mut self, cap: usize) -> Self {
        self.trace_cap = cap;
        self
    }

    /// The current marking.
    pub fn marking(&self) -> &Marking {
        &self.marking
    }

    /// Resets to the initial marking (the RNG keeps advancing).
    pub fn reset(&mut self) {
        self.marking = self.net.initial_marking();
    }

    /// Fires one uniformly-chosen enabled transition; returns it, or
    /// `None` on deadlock.
    pub fn step(&mut self) -> Option<TransitionId> {
        let enabled = self.net.enabled_transitions(&self.marking);
        if enabled.is_empty() {
            return None;
        }
        let t = enabled[self.rng.gen_range(0..enabled.len())];
        self.marking = self
            .net
            .fire(&self.marking, t)
            .expect("enabled transition fires");
        Some(t)
    }

    /// Runs up to `steps` steps, collecting statistics.
    pub fn run(&mut self, steps: usize) -> RunReport<L> {
        let mut fired = vec![0u64; self.net.transition_count()];
        let mut trace = Vec::new();
        let mut peak = self.marking.max_tokens();
        let mut taken = 0usize;
        let mut deadlocked = false;
        for _ in 0..steps {
            match self.step() {
                Some(t) => {
                    fired[t.index()] += 1;
                    if trace.len() < self.trace_cap {
                        trace.push(self.net.label_of(t).clone());
                    }
                    peak = peak.max(self.marking.max_tokens());
                    taken += 1;
                }
                None => {
                    deadlocked = true;
                    break;
                }
            }
        }
        RunReport {
            steps: taken,
            deadlocked,
            fired,
            trace,
            peak_tokens: peak,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle() -> PetriNet<&'static str> {
        let mut net = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "a", [q]).unwrap();
        net.add_transition([q], "b", [p]).unwrap();
        net.set_initial(p, 1);
        net
    }

    #[test]
    fn deterministic_with_seed() {
        let net = cycle();
        let r1 = Simulator::new(&net, 7).run(50);
        let r2 = Simulator::new(&net, 7).run(50);
        assert_eq!(r1, r2);
    }

    #[test]
    fn cycle_alternates_forever() {
        let net = cycle();
        let report = Simulator::new(&net, 1).run(100);
        assert_eq!(report.steps, 100);
        assert!(!report.deadlocked);
        assert_eq!(report.fired[0], 50);
        assert_eq!(report.fired[1], 50);
        assert!(report.unfired().is_empty());
        assert_eq!(report.peak_tokens, 1);
    }

    #[test]
    fn deadlock_detected() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let q = net.add_place("q");
        net.add_transition([p], "once", [q]).unwrap();
        net.set_initial(p, 1);
        let report = Simulator::new(&net, 3).run(10);
        assert_eq!(report.steps, 1);
        assert!(report.deadlocked);
        assert_eq!(report.trace, vec!["once"]);
    }

    #[test]
    fn trace_cap_respected() {
        let net = cycle();
        let report = Simulator::new(&net, 1).with_trace_cap(5).run(100);
        assert_eq!(report.trace.len(), 5);
        assert_eq!(report.steps, 100);
    }

    #[test]
    fn reset_restores_initial() {
        let net = cycle();
        let mut sim = Simulator::new(&net, 1);
        sim.step();
        sim.reset();
        assert_eq!(sim.marking(), &net.initial_marking());
    }

    #[test]
    fn random_choice_covers_branches() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        net.add_transition([p], "left", [p]).unwrap();
        net.add_transition([p], "right", [p]).unwrap();
        net.set_initial(p, 1);
        let report = Simulator::new(&net, 99).run(200);
        assert!(report.fired[0] > 20, "left fired {}", report.fired[0]);
        assert!(report.fired[1] > 20, "right fired {}", report.fired[1]);
    }

    #[test]
    fn peak_tokens_tracks_growth() {
        let mut net: PetriNet<&str> = PetriNet::new();
        let p = net.add_place("p");
        let sink = net.add_place("sink");
        net.add_transition([p], "pump", [p, sink]).unwrap();
        net.set_initial(p, 1);
        let report = Simulator::new(&net, 1).run(25);
        assert_eq!(report.peak_tokens, 25);
    }
}
