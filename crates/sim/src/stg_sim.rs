//! Guard- and encoding-aware random execution of STGs.
//!
//! The plain [`Simulator`](crate::Simulator) plays the token game on the
//! underlying net; this walker additionally tracks the binary signal
//! encoding, evaluates boolean guards (Section 2.2) against it, and
//! reports consistency violations (`s+` fired with `s` already high) the
//! moment they happen — the runtime counterpart of the
//! [`StateGraph`](cpn_stg::StateGraph) consistency check.

use cpn_petri::{Marking, TransitionId};
use cpn_stg::{Edge, Signal, Stg, StgLabel};
use cpn_testkit::TestRng;
use std::collections::BTreeMap;

/// A runtime consistency violation observed by the walker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuntimeViolation {
    /// The offending transition.
    pub transition: TransitionId,
    /// The label that contradicted the encoding.
    pub label: StgLabel,
    /// Steps taken before the violation.
    pub steps: usize,
}

/// Statistics of a guarded STG walk.
#[derive(Clone, Debug)]
pub struct StgRunReport {
    /// Steps taken.
    pub steps: usize,
    /// Whether the walk deadlocked (no enabled, guard-satisfying
    /// transition).
    pub deadlocked: bool,
    /// First consistency violation, if any (the walk stops there).
    pub violation: Option<RuntimeViolation>,
    /// Final signal levels.
    pub levels: BTreeMap<Signal, bool>,
}

/// A seeded random walker over an STG that respects guards and tracks
/// signal levels.
#[derive(Debug)]
pub struct StgSimulator<'s> {
    stg: &'s Stg,
    marking: Marking,
    signals: Vec<Signal>,
    levels: Vec<bool>,
    rng: TestRng,
}

impl<'s> StgSimulator<'s> {
    /// Creates a walker at the initial marking with the given initial
    /// signal levels (unlisted signals start low).
    pub fn new(stg: &'s Stg, initial_values: &BTreeMap<Signal, bool>, seed: u64) -> Self {
        let signals: Vec<Signal> = stg.signals().keys().cloned().collect();
        let levels = signals
            .iter()
            .map(|s| initial_values.get(s).copied().unwrap_or(false))
            .collect();
        StgSimulator {
            stg,
            marking: stg.net().initial_marking(),
            signals,
            levels,
            rng: TestRng::seed_from_u64(seed),
        }
    }

    fn level_of(&self, s: &Signal) -> bool {
        self.signals
            .iter()
            .position(|x| x == s)
            .map(|i| self.levels[i])
            .unwrap_or(false)
    }

    /// Transitions enabled by marking **and** guard in the current state.
    pub fn fireable(&self) -> Vec<TransitionId> {
        self.stg
            .net()
            .enabled_transitions(&self.marking)
            .into_iter()
            .filter(|&t| self.stg.guard(t).eval(|s| self.level_of(s)))
            .collect()
    }

    /// Runs up to `steps` steps; stops early on deadlock or on the first
    /// consistency violation.
    pub fn run(&mut self, steps: usize) -> StgRunReport {
        let mut taken = 0usize;
        let mut violation = None;
        let mut deadlocked = false;
        'walk: for _ in 0..steps {
            let fireable = self.fireable();
            if fireable.is_empty() {
                deadlocked = true;
                break;
            }
            let t = fireable[self.rng.gen_range(0..fireable.len())];
            let label = self.stg.net().label_of(t).clone();
            if let StgLabel::Signal(s, e) = &label {
                let i = self
                    .signals
                    .iter()
                    .position(|x| x == s)
                    .expect("declared signal");
                match e {
                    Edge::Rise => {
                        if self.levels[i] {
                            violation = Some(RuntimeViolation {
                                transition: t,
                                label: label.clone(),
                                steps: taken,
                            });
                            break 'walk;
                        }
                        self.levels[i] = true;
                    }
                    Edge::Fall => {
                        if !self.levels[i] {
                            violation = Some(RuntimeViolation {
                                transition: t,
                                label: label.clone(),
                                steps: taken,
                            });
                            break 'walk;
                        }
                        self.levels[i] = false;
                    }
                    Edge::Toggle => self.levels[i] = !self.levels[i],
                    Edge::Stable | Edge::Unstable | Edge::DontCare => {}
                }
            }
            self.marking = self
                .stg
                .net()
                .fire(&self.marking, t)
                .expect("enabled transition fires");
            taken += 1;
        }
        StgRunReport {
            steps: taken,
            deadlocked,
            violation,
            levels: self
                .signals
                .iter()
                .cloned()
                .zip(self.levels.iter().copied())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpn_stg::{Guard, SignalDir};

    fn four_phase() -> Stg {
        let mut stg = Stg::new();
        let req = stg.add_signal("req", SignalDir::Input);
        let ack = stg.add_signal("ack", SignalDir::Output);
        let p: Vec<_> = (0..4).map(|i| stg.add_place(format!("p{i}"))).collect();
        stg.add_signal_transition([p[0]], (req.clone(), Edge::Rise), [p[1]])
            .unwrap();
        stg.add_signal_transition([p[1]], (ack.clone(), Edge::Rise), [p[2]])
            .unwrap();
        stg.add_signal_transition([p[2]], (req, Edge::Fall), [p[3]])
            .unwrap();
        stg.add_signal_transition([p[3]], (ack, Edge::Fall), [p[0]])
            .unwrap();
        stg.set_initial(p[0], 1);
        stg
    }

    #[test]
    fn four_phase_walks_forever_consistently() {
        let stg = four_phase();
        let mut sim = StgSimulator::new(&stg, &BTreeMap::new(), 5);
        let report = sim.run(400);
        assert_eq!(report.steps, 400);
        assert!(report.violation.is_none());
        assert!(!report.deadlocked);
        // 400 = full rounds: levels back at 0.
        assert!(report.levels.values().all(|&v| !v));
    }

    #[test]
    fn violation_detected_at_runtime() {
        // Double rise without a fall in between.
        let mut stg = Stg::new();
        let x = stg.add_signal("x", SignalDir::Output);
        let p0 = stg.add_place("p0");
        let p1 = stg.add_place("p1");
        let p2 = stg.add_place("p2");
        stg.add_signal_transition([p0], (x.clone(), Edge::Rise), [p1])
            .unwrap();
        stg.add_signal_transition([p1], (x, Edge::Rise), [p2])
            .unwrap();
        stg.set_initial(p0, 1);
        let mut sim = StgSimulator::new(&stg, &BTreeMap::new(), 1);
        let report = sim.run(10);
        let v = report.violation.expect("double rise detected");
        assert_eq!(v.steps, 1);
        assert_eq!(v.label.to_string(), "x+");
    }

    #[test]
    fn guards_respected_by_the_walker() {
        let mut stg = Stg::new();
        let data = stg.add_signal("DATA", SignalDir::Input);
        let hi = stg.add_signal("hi", SignalDir::Output);
        let lo = stg.add_signal("lo", SignalDir::Output);
        let p = stg.add_place("p");
        let q = stg.add_place("q");
        let t_hi = stg
            .add_signal_transition([p], (hi, Edge::Toggle), [q])
            .unwrap();
        let t_lo = stg
            .add_signal_transition([p], (lo, Edge::Toggle), [q])
            .unwrap();
        stg.set_guard(t_hi, Guard::new().require(data.clone(), true));
        stg.set_guard(t_lo, Guard::new().require(data.clone(), false));
        stg.set_initial(p, 1);

        // DATA low: only the lo branch can ever fire.
        let mut sim = StgSimulator::new(&stg, &BTreeMap::new(), 9);
        let report = sim.run(5);
        assert_eq!(report.steps, 1);
        assert!(report.deadlocked, "q has no successors");
        assert!(report.levels[&Signal::new("lo")]);
        assert!(!report.levels[&Signal::new("hi")]);

        // DATA high: only the hi branch.
        let mut sim = StgSimulator::new(&stg, &BTreeMap::from([(data, true)]), 9);
        let report = sim.run(5);
        assert!(report.levels[&Signal::new("hi")]);
    }

    #[test]
    fn translator_walks_cleanly_with_guards() {
        use cpn_stg::protocol::translator;
        let stg = translator();
        let mut sim = StgSimulator::new(&stg, &BTreeMap::new(), 2024);
        let report = sim.run(10_000);
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(!report.deadlocked);
    }

    #[test]
    fn protocol_system_random_walk_consistent() {
        use cpn_stg::protocol::{receiver, sender, translator};
        let system = sender()
            .compose(&translator())
            .unwrap()
            .compose(&receiver())
            .unwrap();
        let mut sim = StgSimulator::new(&system, &BTreeMap::new(), 7);
        let report = sim.run(20_000);
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(!report.deadlocked);
    }
}
