//! Seeded fault injection across the verification stack.
//!
//! The static checks of this workspace (receptiveness, consistency,
//! USC/CSC, structural marked-graph analysis, liveness/safety, the
//! antichain validation of data encodings) all claim to *detect* design
//! errors. This module turns that claim into a measurable property: it
//! mutates known-good models with a seeded [`FaultPlan`] of structured
//! faults — lost/duplicated tokens, dropped/stray arcs, flipped signal
//! edges, spurious glitch pulses, stuck-at handshake wires,
//! antichain-breaking code mutations — and [`detector_sensitivity`]
//! scores each detector against each fault class.
//!
//! A fault application has three honest outcomes ([`Detection`]): the
//! matching detector **flags** the mutant, the mutation is provably
//! **behavior-preserving** (trace-equivalent to the original up to a
//! depth), or the fault was **missed** — the score every detector is
//! trying to keep at zero.
//!
//! Every mutation is a pure function of `(seed, class, trial)`; a
//! reported miss is therefore replayable from the three numbers printed
//! with it.

use cpn_cip::encoding::EncodingError;
use cpn_cip::DataEncoding;
use cpn_petri::{
    AlphaSet, Bounded, Budget, CoverabilityOutcome, CoverabilityTree, Label, PetriNet, PlaceId,
    Sym, Verdict,
};
use cpn_stg::{Edge, Signal, StateGraph, Stg, StgLabel};
use cpn_testkit::{mix_seed, TestRng};
use cpn_trace::Language;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The structured fault taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultClass {
    /// Remove one token from the initial marking.
    TokenLoss,
    /// Add one token to an already-marked place.
    TokenDup,
    /// Remove one arc (preset or postset entry) from a transition.
    ArcDrop,
    /// Add a stray arc between an existing place and transition.
    ArcDup,
    /// Flip one signal edge (`s+` ↔ `s-`).
    EdgeFlip,
    /// Insert a one-shot spurious pulse on an existing signal.
    Glitch,
    /// Stick a handshake wire: its transitions never fire.
    StuckWire,
    /// Break the antichain property of a data encoding: make one code
    /// cover another.
    CodeCover,
}

impl FaultClass {
    /// Every fault class, in taxonomy order.
    pub const ALL: [FaultClass; 8] = [
        FaultClass::TokenLoss,
        FaultClass::TokenDup,
        FaultClass::ArcDrop,
        FaultClass::ArcDup,
        FaultClass::EdgeFlip,
        FaultClass::Glitch,
        FaultClass::StuckWire,
        FaultClass::CodeCover,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::TokenLoss => "token-loss",
            FaultClass::TokenDup => "token-dup",
            FaultClass::ArcDrop => "arc-drop",
            FaultClass::ArcDup => "arc-dup",
            FaultClass::EdgeFlip => "edge-flip",
            FaultClass::Glitch => "glitch",
            FaultClass::StuckWire => "stuck-wire",
            FaultClass::CodeCover => "code-cover",
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One concrete seeded mutation that was applied to a model.
#[derive(Clone, Debug)]
pub struct Fault {
    /// The taxonomy class.
    pub class: FaultClass,
    /// Human-readable description of the exact mutation.
    pub description: String,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.class, self.description)
    }
}

// ----------------------------------------------------------------------
// Net-level injectors
// ----------------------------------------------------------------------

/// Removes one token from a randomly chosen marked place.
///
/// `None` when the initial marking is empty.
pub fn inject_token_loss<L: Label>(
    net: &PetriNet<L>,
    rng: &mut TestRng,
) -> Option<(PetriNet<L>, Fault)> {
    let m0 = net.initial_marking();
    let marked: Vec<PlaceId> = net
        .places()
        .map(|(p, _)| p)
        .filter(|&p| m0.tokens(p) > 0)
        .collect();
    if marked.is_empty() {
        return None;
    }
    let p = *rng.choose(&marked);
    let mut out = net.clone();
    out.set_initial(p, m0.tokens(p) - 1);
    let name = place_name(net, p);
    Some((
        out,
        Fault {
            class: FaultClass::TokenLoss,
            description: format!("removed one token from place {name}"),
        },
    ))
}

/// Duplicates a token on a randomly chosen marked place.
///
/// `None` when the initial marking is empty.
pub fn inject_token_dup<L: Label>(
    net: &PetriNet<L>,
    rng: &mut TestRng,
) -> Option<(PetriNet<L>, Fault)> {
    let m0 = net.initial_marking();
    let marked: Vec<PlaceId> = net
        .places()
        .map(|(p, _)| p)
        .filter(|&p| m0.tokens(p) > 0)
        .collect();
    if marked.is_empty() {
        return None;
    }
    let p = *rng.choose(&marked);
    let mut out = net.clone();
    out.set_initial(p, m0.tokens(p) + 1);
    let name = place_name(net, p);
    Some((
        out,
        Fault {
            class: FaultClass::TokenDup,
            description: format!("duplicated the token on place {name}"),
        },
    ))
}

/// Which side of a transition an arc fault touches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ArcSide {
    Pre,
    Post,
}

/// Drops one arc, never leaving a transition with no arcs at all (such
/// a transition could not be rebuilt).
///
/// `None` when every transition has a single arc.
pub fn inject_arc_drop<L: Label>(
    net: &PetriNet<L>,
    rng: &mut TestRng,
) -> Option<(PetriNet<L>, Fault)> {
    let mut candidates: Vec<(usize, ArcSide, PlaceId)> = Vec::new();
    for (i, (_, t)) in net.transitions().enumerate() {
        if t.preset().len() + t.postset().len() < 2 {
            continue;
        }
        for &p in t.preset() {
            candidates.push((i, ArcSide::Pre, p));
        }
        for &p in t.postset() {
            candidates.push((i, ArcSide::Post, p));
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let (ti, side, victim) = *rng.choose(&candidates);
    let out = rebuild_net(net, |i, pre, post| {
        if i == ti {
            match side {
                ArcSide::Pre => pre.retain(|&p| p != victim),
                ArcSide::Post => post.retain(|&p| p != victim),
            }
        }
    })?;
    let name = place_name(net, victim);
    let side_name = if side == ArcSide::Pre {
        "preset"
    } else {
        "postset"
    };
    Some((
        out,
        Fault {
            class: FaultClass::ArcDrop,
            description: format!("dropped {name} from the {side_name} of transition #{ti}"),
        },
    ))
}

/// Adds a stray arc: a place that was not in the chosen side of the
/// chosen transition. In set-valued nets literal duplication is a no-op,
/// so "duplicated arc" means an extra, unintended connection.
///
/// `None` when every transition already touches every place on both
/// sides.
pub fn inject_arc_dup<L: Label>(
    net: &PetriNet<L>,
    rng: &mut TestRng,
) -> Option<(PetriNet<L>, Fault)> {
    let all_places: Vec<PlaceId> = net.places().map(|(p, _)| p).collect();
    let mut candidates: Vec<(usize, ArcSide, PlaceId)> = Vec::new();
    for (i, (_, t)) in net.transitions().enumerate() {
        for &p in &all_places {
            if !t.preset().contains(&p) {
                candidates.push((i, ArcSide::Pre, p));
            }
            if !t.postset().contains(&p) {
                candidates.push((i, ArcSide::Post, p));
            }
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let (ti, side, extra) = *rng.choose(&candidates);
    let out = rebuild_net(net, |i, pre, post| {
        if i == ti {
            match side {
                ArcSide::Pre => pre.push(extra),
                ArcSide::Post => post.push(extra),
            }
        }
    })?;
    let name = place_name(net, extra);
    let side_name = if side == ArcSide::Pre {
        "preset"
    } else {
        "postset"
    };
    Some((
        out,
        Fault {
            class: FaultClass::ArcDup,
            description: format!("added stray arc {name} to the {side_name} of transition #{ti}"),
        },
    ))
}

// ----------------------------------------------------------------------
// STG-level injectors
// ----------------------------------------------------------------------

/// Flips one `s+` to `s-` (or vice versa).
///
/// `None` when no transition carries a rise or fall edge.
pub fn inject_edge_flip(stg: &Stg, rng: &mut TestRng) -> Option<(Stg, Fault)> {
    let flippable: Vec<usize> = stg
        .net()
        .transitions()
        .enumerate()
        .filter(|(_, (tid, _))| {
            matches!(
                stg.net().label_of(*tid).edge(),
                Some(Edge::Rise | Edge::Fall)
            )
        })
        .map(|(i, _)| i)
        .collect();
    if flippable.is_empty() {
        return None;
    }
    let ti = *rng.choose(&flippable);
    let mut description = String::new();
    let out = rebuild_stg(
        stg,
        |_, _| true,
        |i, label| {
            if i != ti {
                return None;
            }
            let StgLabel::Signal(s, e) = label else {
                return None;
            };
            let flipped = if *e == Edge::Rise {
                Edge::Fall
            } else {
                Edge::Rise
            };
            description = format!("flipped {s}{e} to {s}{flipped}");
            Some(StgLabel::Signal(s.clone(), flipped))
        },
    )?;
    Some((
        out,
        Fault {
            class: FaultClass::EdgeFlip,
            description,
        },
    ))
}

/// Inserts a one-shot spurious `s+` pulse on an existing signal: a
/// fresh marked place enabling a single out-of-protocol rise.
///
/// `None` when the STG uses no signals.
pub fn inject_glitch(stg: &Stg, rng: &mut TestRng) -> Option<(Stg, Fault)> {
    let signals: Vec<&Signal> = stg
        .net()
        .alphabet_syms()
        .iter()
        .filter_map(|sym| stg.net().resolve(sym).signal_name())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    if signals.is_empty() {
        return None;
    }
    let s = (*rng.choose(&signals)).clone();
    let mut out = stg.clone();
    let src = out.add_place("glitch.src");
    let done = out.add_place("glitch.done");
    out.set_initial(src, 1);
    out.add_signal_transition([src], (s.clone(), Edge::Rise), [done])
        .ok()?;
    Some((
        out,
        Fault {
            class: FaultClass::Glitch,
            description: format!("spurious one-shot {s}+ pulse"),
        },
    ))
}

/// Sticks one wire at its current value: every transition of the chosen
/// signal is removed, so the wire never moves again.
///
/// `None` when no signal can be stuck without emptying the net.
pub fn inject_stuck_wire(stg: &Stg, rng: &mut TestRng) -> Option<(Stg, Fault)> {
    // One symbolized pass counts every signal's transitions (the old
    // generic path re-scanned all transitions per candidate signal).
    let net = stg.net();
    let total = net.transition_count();
    let mut counts: BTreeMap<&Signal, usize> = BTreeMap::new();
    for (_, t) in net.transitions() {
        if let Some(s) = net.resolve(t.sym()).signal_name() {
            *counts.entry(s).or_insert(0) += 1;
        }
    }
    let candidates: Vec<&Signal> = counts
        .iter()
        .filter(|&(_, &mine)| mine < total)
        .map(|(&s, _)| s)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let s = (*rng.choose(&candidates)).clone();
    // The stuck wire's symbols, as a bitset filter for the rebuild scan.
    let stuck: AlphaSet = net
        .alphabet_syms()
        .iter()
        .filter(|&sym| net.resolve(sym).signal_name() == Some(&s))
        .collect();
    let out = rebuild_stg(stg, |_, sym| !stuck.contains(sym), |_, _| None)?;
    Some((
        out,
        Fault {
            class: FaultClass::StuckWire,
            description: format!("wire {s} stuck: all its transitions removed"),
        },
    ))
}

// ----------------------------------------------------------------------
// Encoding-level injector
// ----------------------------------------------------------------------

/// Breaks the antichain property of a code set: one value's code is
/// replaced by a subset (or copy) of another's, so the second covers
/// the first.
///
/// `None` for code sets with fewer than two values.
pub fn inject_code_cover(
    codes: &[BTreeSet<usize>],
    rng: &mut TestRng,
) -> Option<(Vec<BTreeSet<usize>>, Fault)> {
    if codes.len() < 2 {
        return None;
    }
    let i = rng.below(codes.len());
    let mut j = rng.below(codes.len() - 1);
    if j >= i {
        j += 1;
    }
    let mut donor: Vec<usize> = codes[j].iter().copied().collect();
    if donor.len() > 1 {
        donor.remove(rng.below(donor.len()));
    }
    let mut out = codes.to_vec();
    out[i] = donor.into_iter().collect();
    Some((
        out,
        Fault {
            class: FaultClass::CodeCover,
            description: format!("code {j} now covers code {i}"),
        },
    ))
}

// ----------------------------------------------------------------------
// Rebuild helpers
// ----------------------------------------------------------------------

fn place_name<L: Label>(net: &PetriNet<L>, p: PlaceId) -> String {
    net.places()
        .find(|&(id, _)| id == p)
        .map(|(_, pl)| pl.name().to_owned())
        .unwrap_or_else(|| format!("p#{}", p.index()))
}

/// Rebuilds a net place-for-place, letting `tweak` edit each
/// transition's preset/postset. Returns `None` if the tweak degenerates
/// a transition (both sides empty).
///
/// The mutant shares the original's interner (cloned, not re-built), so
/// no label value is cloned or re-hashed per transition.
fn rebuild_net<L: Label>(
    net: &PetriNet<L>,
    mut tweak: impl FnMut(usize, &mut Vec<PlaceId>, &mut Vec<PlaceId>),
) -> Option<PetriNet<L>> {
    let mut out: PetriNet<L> = PetriNet::with_interner(net.interner().clone());
    let m0 = net.initial_marking();
    let mut pmap: BTreeMap<PlaceId, PlaceId> = BTreeMap::new();
    for (old, place) in net.places() {
        let new = out.add_place(place.name().to_owned());
        out.set_initial(new, m0.tokens(old));
        pmap.insert(old, new);
    }
    for (i, (_, t)) in net.transitions().enumerate() {
        let mut pre: Vec<PlaceId> = t.preset().iter().map(|p| pmap[p]).collect();
        let mut post: Vec<PlaceId> = t.postset().iter().map(|p| pmap[p]).collect();
        tweak(i, &mut pre, &mut post);
        out.add_transition_sym(pre, t.sym(), post).ok()?;
    }
    Some(out)
}

/// Rebuilds an STG, keeping transitions `keep` accepts (judged by their
/// interned symbol) and rewriting labels through `relabel`; guards ride
/// along with their transitions.
///
/// `relabel` returns `None` for "unchanged" — the transition is added
/// via its original symbol with no label clone; only a genuinely
/// rewritten label (`Some`) is interned anew.
fn rebuild_stg(
    stg: &Stg,
    mut keep: impl FnMut(usize, Sym) -> bool,
    mut relabel: impl FnMut(usize, &StgLabel) -> Option<StgLabel>,
) -> Option<Stg> {
    let mut net: PetriNet<StgLabel> = PetriNet::with_interner(stg.net().interner().clone());
    let m0 = stg.net().initial_marking();
    let mut pmap: BTreeMap<PlaceId, PlaceId> = BTreeMap::new();
    for (old, place) in stg.net().places() {
        let new = net.add_place(place.name().to_owned());
        net.set_initial(new, m0.tokens(old));
        pmap.insert(old, new);
    }
    let mut guards = BTreeMap::new();
    for (i, (tid, t)) in stg.net().transitions().enumerate() {
        let sym = t.sym();
        if !keep(i, sym) {
            continue;
        }
        let pre: Vec<PlaceId> = t.preset().iter().map(|p| pmap[p]).collect();
        let post: Vec<PlaceId> = t.postset().iter().map(|p| pmap[p]).collect();
        let new_tid = match relabel(i, stg.net().resolve(sym)) {
            None => net.add_transition_sym(pre, sym, post).ok()?,
            Some(l) => net.add_transition(pre, l, post).ok()?,
        };
        let g = stg.guard(tid);
        if !g.is_true() {
            guards.insert(new_tid, g);
        }
    }
    Stg::from_parts(net, stg.signals().clone(), guards).ok()
}

/// The pre-symbolization injector path, kept verbatim as a differential
/// oracle: `fault_properties.rs` asserts each symbolized injector
/// produces the same mutant (same site, same structure, same labels)
/// from the same `(seed, class, trial)`.
#[doc(hidden)]
pub mod reference {
    use super::*;

    /// Generic rebuild: fresh interner, one label clone per transition.
    pub fn rebuild_net_generic<L: Label>(
        net: &PetriNet<L>,
        mut tweak: impl FnMut(usize, &mut Vec<PlaceId>, &mut Vec<PlaceId>),
    ) -> Option<PetriNet<L>> {
        let mut out: PetriNet<L> = PetriNet::new();
        let m0 = net.initial_marking();
        let mut pmap: BTreeMap<PlaceId, PlaceId> = BTreeMap::new();
        for (old, place) in net.places() {
            let new = out.add_place(place.name().to_owned());
            out.set_initial(new, m0.tokens(old));
            pmap.insert(old, new);
        }
        for (i, (tid, t)) in net.transitions().enumerate() {
            let mut pre: Vec<PlaceId> = t.preset().iter().map(|p| pmap[p]).collect();
            let mut post: Vec<PlaceId> = t.postset().iter().map(|p| pmap[p]).collect();
            tweak(i, &mut pre, &mut post);
            out.add_transition(pre, net.label_of(tid).clone(), post)
                .ok()?;
        }
        Some(out)
    }

    /// Generic STG rebuild with label-valued `keep`/`relabel` closures.
    pub fn rebuild_stg_generic(
        stg: &Stg,
        mut keep: impl FnMut(usize, &StgLabel) -> bool,
        mut relabel: impl FnMut(usize, StgLabel) -> StgLabel,
    ) -> Option<Stg> {
        let mut net: PetriNet<StgLabel> = PetriNet::new();
        let m0 = stg.net().initial_marking();
        let mut pmap: BTreeMap<PlaceId, PlaceId> = BTreeMap::new();
        for (old, place) in stg.net().places() {
            let new = net.add_place(place.name().to_owned());
            net.set_initial(new, m0.tokens(old));
            pmap.insert(old, new);
        }
        let mut guards = BTreeMap::new();
        for (i, (tid, t)) in stg.net().transitions().enumerate() {
            if !keep(i, stg.net().label_of(tid)) {
                continue;
            }
            let pre: Vec<PlaceId> = t.preset().iter().map(|p| pmap[p]).collect();
            let post: Vec<PlaceId> = t.postset().iter().map(|p| pmap[p]).collect();
            let new_tid = net
                .add_transition(pre, relabel(i, stg.net().label_of(tid).clone()), post)
                .ok()?;
            let g = stg.guard(tid);
            if !g.is_true() {
                guards.insert(new_tid, g);
            }
        }
        Stg::from_parts(net, stg.signals().clone(), guards).ok()
    }

    /// [`inject_arc_drop`](super::inject_arc_drop) on the generic rebuild.
    pub fn inject_arc_drop<L: Label>(
        net: &PetriNet<L>,
        rng: &mut TestRng,
    ) -> Option<(PetriNet<L>, Fault)> {
        let mut candidates: Vec<(usize, ArcSide, PlaceId)> = Vec::new();
        for (i, (_, t)) in net.transitions().enumerate() {
            if t.preset().len() + t.postset().len() < 2 {
                continue;
            }
            for &p in t.preset() {
                candidates.push((i, ArcSide::Pre, p));
            }
            for &p in t.postset() {
                candidates.push((i, ArcSide::Post, p));
            }
        }
        if candidates.is_empty() {
            return None;
        }
        let (ti, side, victim) = *rng.choose(&candidates);
        let out = rebuild_net_generic(net, |i, pre, post| {
            if i == ti {
                match side {
                    ArcSide::Pre => pre.retain(|&p| p != victim),
                    ArcSide::Post => post.retain(|&p| p != victim),
                }
            }
        })?;
        let name = place_name(net, victim);
        let side_name = if side == ArcSide::Pre {
            "preset"
        } else {
            "postset"
        };
        Some((
            out,
            Fault {
                class: FaultClass::ArcDrop,
                description: format!("dropped {name} from the {side_name} of transition #{ti}"),
            },
        ))
    }

    /// [`inject_arc_dup`](super::inject_arc_dup) on the generic rebuild.
    pub fn inject_arc_dup<L: Label>(
        net: &PetriNet<L>,
        rng: &mut TestRng,
    ) -> Option<(PetriNet<L>, Fault)> {
        let all_places: Vec<PlaceId> = net.places().map(|(p, _)| p).collect();
        let mut candidates: Vec<(usize, ArcSide, PlaceId)> = Vec::new();
        for (i, (_, t)) in net.transitions().enumerate() {
            for &p in &all_places {
                if !t.preset().contains(&p) {
                    candidates.push((i, ArcSide::Pre, p));
                }
                if !t.postset().contains(&p) {
                    candidates.push((i, ArcSide::Post, p));
                }
            }
        }
        if candidates.is_empty() {
            return None;
        }
        let (ti, side, extra) = *rng.choose(&candidates);
        let out = rebuild_net_generic(net, |i, pre, post| {
            if i == ti {
                match side {
                    ArcSide::Pre => pre.push(extra),
                    ArcSide::Post => post.push(extra),
                }
            }
        })?;
        let name = place_name(net, extra);
        let side_name = if side == ArcSide::Pre {
            "preset"
        } else {
            "postset"
        };
        Some((
            out,
            Fault {
                class: FaultClass::ArcDup,
                description: format!(
                    "added stray arc {name} to the {side_name} of transition #{ti}"
                ),
            },
        ))
    }

    /// [`inject_edge_flip`](super::inject_edge_flip) on the generic rebuild.
    pub fn inject_edge_flip(stg: &Stg, rng: &mut TestRng) -> Option<(Stg, Fault)> {
        let flippable: Vec<usize> = stg
            .net()
            .transitions()
            .enumerate()
            .filter(|(_, (tid, _))| {
                matches!(
                    stg.net().label_of(*tid).edge(),
                    Some(Edge::Rise | Edge::Fall)
                )
            })
            .map(|(i, _)| i)
            .collect();
        if flippable.is_empty() {
            return None;
        }
        let ti = *rng.choose(&flippable);
        let mut description = String::new();
        let out = rebuild_stg_generic(
            stg,
            |_, _| true,
            |i, label| {
                if i != ti {
                    return label;
                }
                let StgLabel::Signal(s, e) = label else {
                    return label;
                };
                let flipped = if e == Edge::Rise {
                    Edge::Fall
                } else {
                    Edge::Rise
                };
                description = format!("flipped {s}{e} to {s}{flipped}");
                StgLabel::Signal(s, flipped)
            },
        )?;
        Some((
            out,
            Fault {
                class: FaultClass::EdgeFlip,
                description,
            },
        ))
    }

    /// [`inject_stuck_wire`](super::inject_stuck_wire) on the generic
    /// rebuild, with the original per-signal transition re-scans.
    pub fn inject_stuck_wire(stg: &Stg, rng: &mut TestRng) -> Option<(Stg, Fault)> {
        let signals: Vec<Signal> = stg
            .net()
            .alphabet()
            .iter()
            .filter_map(|l| l.signal_name().cloned())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let total = stg.net().transition_count();
        let candidates: Vec<&Signal> = signals
            .iter()
            .filter(|s| {
                let mine = stg
                    .net()
                    .transitions()
                    .filter(|&(tid, _)| stg.net().label_of(tid).signal_name() == Some(s))
                    .count();
                mine > 0 && mine < total
            })
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let s = (*rng.choose(&candidates)).clone();
        let out = rebuild_stg_generic(
            stg,
            |_, label| label.signal_name() != Some(&s),
            |_, label| label,
        )?;
        Some((
            out,
            Fault {
                class: FaultClass::StuckWire,
                description: format!("wire {s} stuck: all its transitions removed"),
            },
        ))
    }
}

/// Applies a net-level fault to an STG's underlying net, carrying the
/// signal declarations and guards over (transition identities are
/// preserved by net-level mutations).
fn stg_with_net(stg: &Stg, net: PetriNet<StgLabel>) -> Option<Stg> {
    let guards: BTreeMap<_, _> = stg
        .net()
        .transitions()
        .map(|(tid, _)| (tid, stg.guard(tid)))
        .filter(|(_, g)| !g.is_true())
        .collect();
    Stg::from_parts(net, stg.signals().clone(), guards).ok()
}

// ----------------------------------------------------------------------
// FaultPlan
// ----------------------------------------------------------------------

/// A seeded plan of structured mutations: every mutation is a pure
/// function of `(seed, class, trial)`, so any observation downstream is
/// replayable from those three numbers.
///
/// ```
/// use cpn_sim::fault::{FaultClass, FaultPlan};
///
/// let plan = FaultPlan::new(42);
/// let stg = cpn_stg::protocol::sender();
/// let (mutant, fault) = plan
///     .mutate_stg(FaultClass::EdgeFlip, &stg, 0)
///     .expect("the sender has rise/fall edges to flip");
/// assert_eq!(fault.class, FaultClass::EdgeFlip);
/// assert_eq!(mutant.net().transition_count(), stg.net().transition_count());
/// ```
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
}

impl FaultPlan {
    /// A plan rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed }
    }

    /// The root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The derived generator for `(class, trial)`.
    pub fn rng_for(&self, class: FaultClass, trial: u64) -> TestRng {
        let stream = (class as u64) << 32 | trial;
        TestRng::seed_from_u64(mix_seed(self.seed, stream))
    }

    /// Applies one fault of `class` to a labeled net.
    ///
    /// `None` when the class does not apply (STG- or encoding-level
    /// classes, or no mutation site exists).
    pub fn mutate_net<L: Label>(
        &self,
        class: FaultClass,
        net: &PetriNet<L>,
        trial: u64,
    ) -> Option<(PetriNet<L>, Fault)> {
        let mut rng = self.rng_for(class, trial);
        match class {
            FaultClass::TokenLoss => inject_token_loss(net, &mut rng),
            FaultClass::TokenDup => inject_token_dup(net, &mut rng),
            FaultClass::ArcDrop => inject_arc_drop(net, &mut rng),
            FaultClass::ArcDup => inject_arc_dup(net, &mut rng),
            _ => None,
        }
    }

    /// Applies one fault of `class` to an STG (net-level classes mutate
    /// the underlying net; signal-level classes rewrite labels).
    ///
    /// `None` when the class does not apply.
    pub fn mutate_stg(&self, class: FaultClass, stg: &Stg, trial: u64) -> Option<(Stg, Fault)> {
        let mut rng = self.rng_for(class, trial);
        match class {
            FaultClass::TokenLoss
            | FaultClass::TokenDup
            | FaultClass::ArcDrop
            | FaultClass::ArcDup => {
                let (net, fault) = self.mutate_net(class, stg.net(), trial)?;
                Some((stg_with_net(stg, net)?, fault))
            }
            FaultClass::EdgeFlip => inject_edge_flip(stg, &mut rng),
            FaultClass::Glitch => inject_glitch(stg, &mut rng),
            FaultClass::StuckWire => inject_stuck_wire(stg, &mut rng),
            FaultClass::CodeCover => None,
        }
    }

    /// Applies one fault of `class` to a raw code set.
    ///
    /// `None` unless `class` is [`FaultClass::CodeCover`].
    pub fn mutate_codes(
        &self,
        class: FaultClass,
        codes: &[BTreeSet<usize>],
        trial: u64,
    ) -> Option<(Vec<BTreeSet<usize>>, Fault)> {
        if class != FaultClass::CodeCover {
            return None;
        }
        let mut rng = self.rng_for(class, trial);
        inject_code_cover(codes, &mut rng)
    }
}

// ----------------------------------------------------------------------
// Detection
// ----------------------------------------------------------------------

/// What happened when a detector suite met a mutant.
#[derive(Clone, Debug)]
pub enum Detection {
    /// A detector flagged the mutant.
    Detected {
        /// Which detector fired.
        detector: &'static str,
        /// What it saw.
        evidence: String,
    },
    /// The mutation is provably behavior-preserving (trace-equivalent
    /// to the original up to the probed depth).
    Benign {
        /// The preservation argument.
        reason: String,
    },
    /// No detector fired and the behavior changed: a genuine miss.
    Missed,
}

impl Detection {
    /// Whether the fault is accounted for (detected or provably benign).
    pub fn is_accounted(&self) -> bool {
        !matches!(self, Detection::Missed)
    }
}

const EXPLORE_BUDGET: usize = 200_000;
const BENIGN_DEPTH: usize = 6;

/// Liveness/safety/boundedness detector for labeled nets: bounded
/// reachability plus Karp–Miller when the state space explodes.
///
/// Both passes run on the compiled exploration kernel (interned marking
/// arena + CSR firing rule), so the 200k-state budget is a few
/// milliseconds of work even on the larger mutants.
pub fn detect_net_misbehavior<L: Label>(mutant: &PetriNet<L>) -> Option<(&'static str, String)> {
    let budget = Budget::states(EXPLORE_BUDGET);
    match mutant.reachability_bounded(&budget) {
        Bounded::Complete(rg) => {
            let an = mutant.analysis(&rg);
            if !an.safe {
                return Some(("liveness/safety", format!("unsafe: bound {}", an.bound)));
            }
            if !an.live {
                return Some(("liveness/safety", "non-live transition".to_owned()));
            }
            if !an.deadlock_free {
                return Some(("liveness/safety", "reachable deadlock".to_owned()));
            }
            None
        }
        Bounded::Exhausted { info, .. } => {
            // The reference models all complete within the budget, so
            // exhaustion itself is a symptom; Karp–Miller turns it into
            // a definite unboundedness witness when it can.
            match CoverabilityTree::build_bounded(mutant, &Budget::states(EXPLORE_BUDGET)) {
                Bounded::Complete(tree) | Bounded::Exhausted { partial: tree, .. } => {
                    if let CoverabilityOutcome::Unbounded { witnesses } = tree.outcome() {
                        return Some((
                            "liveness/safety",
                            format!("unbounded: {} witness place(s)", witnesses.len()),
                        ));
                    }
                }
            }
            Some(("liveness/safety", format!("state explosion: {info}")))
        }
    }
}

/// Consistency/USC detector: builds the (possibly partial) state graph
/// and reports violations found on the explored prefix — those are
/// definite regardless of exhaustion.
pub fn detect_stg_inconsistency(mutant: &Stg) -> Option<(&'static str, String)> {
    let sg = match StateGraph::build_bounded(
        mutant,
        &BTreeMap::new(),
        &Budget::states(EXPLORE_BUDGET),
    ) {
        Bounded::Complete(sg) => sg,
        Bounded::Exhausted { partial, .. } => partial,
    };
    if let Some(v) = sg.consistency_violations().first() {
        return Some((
            "consistency",
            format!("{} fires with the signal already at {}", v.label, v.value),
        ));
    }
    let usc = sg.usc_violations();
    if let Some(v) = usc.first() {
        return Some((
            "usc/csc",
            format!("one encoding, two states: {} vs {}", v.first, v.second),
        ));
    }
    None
}

/// Receptiveness detector: the mutant against a fixed environment.
/// `Fails` on the explored prefix is definite; `Unknown` is not counted
/// as a detection.
pub fn detect_nonreceptive(mutant: &Stg, env: &Stg) -> Option<(&'static str, String)> {
    let verdict = cpn_core::check_receptiveness_bounded(
        mutant.net(),
        env.net(),
        &mutant.output_labels(),
        &env.output_labels(),
        &Budget::states(EXPLORE_BUDGET),
    )
    .ok()?;
    match verdict {
        Verdict::Fails(report) => {
            let first = report
                .failures
                .first()
                .map(|f| format!("{:?} output {} refused", f.producer, f.label))
                .unwrap_or_default();
            Some(("receptiveness", first))
        }
        Verdict::Holds | Verdict::Unknown(_) => None,
    }
}

/// Structural marked-graph detector: the mutant stopped being a marked
/// graph (each place one producer, one consumer).
pub fn detect_not_marked_graph<L: Label>(mutant: &PetriNet<L>) -> Option<(&'static str, String)> {
    let rep = mutant.structural();
    if rep.is_marked_graph {
        None
    } else {
        Some(("structural-mg", "not a marked graph anymore".to_owned()))
    }
}

/// Antichain detector: re-validates a mutated code set against its wire
/// list.
pub fn detect_code_cover(
    wires: &[Signal],
    codes: &[BTreeSet<usize>],
) -> Option<(&'static str, String)> {
    match DataEncoding::new(wires.to_vec(), codes.to_vec()) {
        Err(e @ EncodingError::CodeCovers { .. }) => Some(("antichain", e.to_string())),
        Err(e) => Some(("antichain", e.to_string())),
        Ok(_) => None,
    }
}

/// Probes whether the mutation preserved behavior: trace-language
/// equality against the original up to `BENIGN_DEPTH`. Both languages
/// must be extracted completely within budget for the proof to count.
pub fn behavior_preserved<L: Label>(orig: &PetriNet<L>, mutant: &PetriNet<L>) -> Option<String> {
    let budget = Budget::states(EXPLORE_BUDGET);
    let a = Language::from_net_bounded(orig, BENIGN_DEPTH, &budget).complete()?;
    let b = Language::from_net_bounded(mutant, BENIGN_DEPTH, &budget).complete()?;
    if a.eq_up_to(&b, BENIGN_DEPTH) {
        Some(format!("trace-equivalent up to depth {BENIGN_DEPTH}"))
    } else {
        None
    }
}

// ----------------------------------------------------------------------
// Sensitivity harness
// ----------------------------------------------------------------------

/// Per-(fault class, model) sensitivity statistics.
#[derive(Clone, Debug)]
pub struct SensitivityRow {
    /// The injected class.
    pub class: FaultClass,
    /// The model mutated.
    pub model: &'static str,
    /// The detector expected to flag this class on this model.
    pub detector: &'static str,
    /// Mutations attempted (trials where the class applied).
    pub trials: usize,
    /// Mutations flagged by a detector.
    pub detected: usize,
    /// Mutations proved behavior-preserving.
    pub benign: usize,
    /// Mutations neither flagged nor proved benign.
    pub missed: usize,
}

/// The full sensitivity matrix with every miss carried verbatim.
#[derive(Clone, Debug)]
pub struct SensitivityReport {
    /// One row per (class, model).
    pub rows: Vec<SensitivityRow>,
    /// Replay data for every miss: `(class, model, trial, fault)`.
    pub misses: Vec<(FaultClass, &'static str, u64, String)>,
    /// The root seed of the plan.
    pub seed: u64,
}

impl SensitivityReport {
    /// Whether every injected fault was detected or proved benign.
    pub fn all_accounted(&self) -> bool {
        self.misses.is_empty()
    }
}

impl fmt::Display for SensitivityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<11} {:<14} {:<14} {:>6} {:>9} {:>7} {:>7}",
            "fault", "model", "detector", "trials", "detected", "benign", "missed"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<11} {:<14} {:<14} {:>6} {:>9} {:>7} {:>7}",
                r.class.name(),
                r.model,
                r.detector,
                r.trials,
                r.detected,
                r.benign,
                r.missed
            )?;
        }
        for (class, model, trial, fault) in &self.misses {
            writeln!(
                f,
                "MISS: {class} on {model} (seed {}, trial {trial}): {fault}",
                self.seed
            )?;
        }
        Ok(())
    }
}

/// Resolves a mutant STG against the detector cascade: net-level
/// misbehavior, then consistency/USC, then (when an environment is
/// given) receptiveness, then the behavior-preservation probe.
pub fn judge_stg(orig: &Stg, mutant: &Stg, env: Option<&Stg>) -> Detection {
    if let Some((detector, evidence)) = detect_net_misbehavior(mutant.net()) {
        return Detection::Detected { detector, evidence };
    }
    if let Some((detector, evidence)) = detect_stg_inconsistency(mutant) {
        return Detection::Detected { detector, evidence };
    }
    if let Some(env) = env {
        if let Some((detector, evidence)) = detect_nonreceptive(mutant, env) {
            return Detection::Detected { detector, evidence };
        }
    }
    match behavior_preserved(orig.net(), mutant.net()) {
        Some(reason) => Detection::Benign { reason },
        None => Detection::Missed,
    }
}

/// Resolves a mutant marked-graph net against structural and behavioral
/// detectors.
pub fn judge_mg_net<L: Label>(orig: &PetriNet<L>, mutant: &PetriNet<L>) -> Detection {
    if let Some((detector, evidence)) = detect_not_marked_graph(mutant) {
        return Detection::Detected { detector, evidence };
    }
    if let Some((detector, evidence)) = detect_net_misbehavior(mutant) {
        return Detection::Detected { detector, evidence };
    }
    match behavior_preserved(orig, mutant) {
        Some(reason) => Detection::Benign { reason },
        None => Detection::Missed,
    }
}

/// Runs the full detector-sensitivity experiment: every fault class,
/// `trials` seeded mutations each, against the paper's known-good
/// models — the Figure 5–7 protocol STGs, live-safe marked-graph rings,
/// a 4-phase-expanded CIP system, and the Table 1 wire codes.
pub fn detector_sensitivity(seed: u64, trials: u64) -> SensitivityReport {
    let plan = FaultPlan::new(seed);
    let mut rows: Vec<SensitivityRow> = Vec::new();
    let mut misses = Vec::new();

    let mut run =
        |class: FaultClass,
         model: &'static str,
         detector: &'static str,
         mut one: Box<dyn FnMut(u64) -> Option<(Fault, Detection)> + '_>| {
            let mut row = SensitivityRow {
                class,
                model,
                detector,
                trials: 0,
                detected: 0,
                benign: 0,
                missed: 0,
            };
            for trial in 0..trials {
                let Some((fault, detection)) = one(trial) else {
                    continue;
                };
                row.trials += 1;
                match detection {
                    Detection::Detected { .. } => row.detected += 1,
                    Detection::Benign { .. } => row.benign += 1,
                    Detection::Missed => {
                        row.missed += 1;
                        misses.push((class, model, trial, fault.to_string()));
                    }
                }
            }
            rows.push(row);
        };

    // --- Figure 5–7 protocol STGs --------------------------------------
    let fig5 = cpn_stg::protocol::sender();
    let fig6 = cpn_stg::protocol::translator();
    let fig7 = cpn_stg::protocol::receiver();
    let stg_models: [(&'static str, &Stg, Option<&Stg>); 2] = [
        ("fig5-sender", &fig5, Some(&fig6)),
        ("fig7-receiver", &fig7, None),
    ];
    for (name, stg, env) in stg_models {
        for class in [
            FaultClass::TokenLoss,
            FaultClass::TokenDup,
            FaultClass::ArcDrop,
            FaultClass::ArcDup,
        ] {
            run(
                class,
                name,
                "liveness/safety",
                Box::new(|trial| {
                    let (mutant, fault) = plan.mutate_stg(class, stg, trial)?;
                    Some((fault, judge_stg(stg, &mutant, env)))
                }),
            );
        }
        for class in [FaultClass::EdgeFlip, FaultClass::Glitch] {
            run(
                class,
                name,
                "consistency",
                Box::new(|trial| {
                    let (mutant, fault) = plan.mutate_stg(class, stg, trial)?;
                    Some((fault, judge_stg(stg, &mutant, env)))
                }),
            );
        }
    }

    // --- Live-safe marked-graph rings ----------------------------------
    for class in [
        FaultClass::TokenLoss,
        FaultClass::TokenDup,
        FaultClass::ArcDrop,
        FaultClass::ArcDup,
    ] {
        run(
            class,
            "mg-ring",
            "structural-mg",
            Box::new(|trial| {
                let mut rng = plan.rng_for(class, trial);
                let n = 3 + rng.below(5);
                let ring = cpn_testkit::RawRing {
                    n,
                    marks: (0..n).map(|i| u32::from(i == 0)).collect(),
                };
                let net = ring.build();
                let (mutant, fault) = plan.mutate_net(class, &net, trial)?;
                Some((fault, judge_mg_net(&net, &mutant)))
            }),
        );
    }

    // --- Expanded CIP system (stuck handshake wires) -------------------
    let composed = expanded_control_pair();
    run(
        FaultClass::StuckWire,
        "cip-expanded",
        "liveness/safety",
        Box::new(|trial| {
            let (mutant, fault) = plan.mutate_stg(FaultClass::StuckWire, &composed, trial)?;
            Some((fault, judge_stg(&composed, &mutant, None)))
        }),
    );
    run(
        FaultClass::Glitch,
        "cip-expanded",
        "consistency",
        Box::new(|trial| {
            let (mutant, fault) = plan.mutate_stg(FaultClass::Glitch, &composed, trial)?;
            Some((fault, judge_stg(&composed, &mutant, None)))
        }),
    );

    // --- Table 1 wire codes (antichain) --------------------------------
    let enc = cpn_cip::protocol::cmd_encoding();
    let wires = enc.wires().to_vec();
    let codes: Vec<BTreeSet<usize>> = (0..enc.value_count())
        .map(|v| {
            enc.code(v)
                .expect("in-range value")
                .iter()
                .map(|w| wires.iter().position(|x| x == w).expect("own wire"))
                .collect()
        })
        .collect();
    run(
        FaultClass::CodeCover,
        "table1-codes",
        "antichain",
        Box::new(|trial| {
            let (mutated, fault) = plan.mutate_codes(FaultClass::CodeCover, &codes, trial)?;
            let detection = match detect_code_cover(&wires, &mutated) {
                Some((detector, evidence)) => Detection::Detected { detector, evidence },
                None => Detection::Missed,
            };
            Some((fault, detection))
        }),
    );

    SensitivityReport { rows, misses, seed }
}

/// A minimal known-good expanded CIP: one control channel between a
/// sender and a receiver module, 4-phase expansion, composed.
fn expanded_control_pair() -> Stg {
    let mut tx = cpn_cip::Module::new("tx");
    let p = tx.add_place("p");
    tx.add_send([p], "go", None, [p]).expect("tx send");
    tx.set_initial(p, 1);
    let mut rx = cpn_cip::Module::new("rx");
    let r = rx.add_place("r");
    rx.add_recv([r], "go", [r]).expect("rx recv");
    rx.set_initial(r, 1);
    let mut g = cpn_cip::CipGraph::new();
    let a = g.add_module(tx);
    let b = g.add_module(rx);
    g.add_channel_edge(a, b, cpn_cip::ChannelSpec::control("go"))
        .expect("edge");
    g.expand(cpn_cip::HandshakeProtocol::FourPhase)
        .expect("expansion")
        .compose_all()
        .expect("composition")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_named_and_listed() {
        assert_eq!(FaultClass::ALL.len(), 8);
        let names: BTreeSet<&str> = FaultClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 8, "names are distinct");
    }

    #[test]
    fn mutations_are_deterministic_in_the_seed() {
        let stg = cpn_stg::protocol::sender();
        let plan = FaultPlan::new(7);
        for class in FaultClass::ALL {
            let a = plan.mutate_stg(class, &stg, 3);
            let b = plan.mutate_stg(class, &stg, 3);
            match (a, b) {
                (Some((_, fa)), Some((_, fb))) => assert_eq!(fa.description, fb.description),
                (None, None) => {}
                _ => panic!("nondeterministic applicability for {class}"),
            }
        }
    }

    #[test]
    fn token_loss_kills_the_sender() {
        let stg = cpn_stg::protocol::sender();
        let plan = FaultPlan::new(11);
        let (mutant, _) = plan
            .mutate_stg(FaultClass::TokenLoss, &stg, 0)
            .expect("sender has a marked place");
        let (detector, _) = detect_net_misbehavior(mutant.net()).expect("token loss detected");
        assert_eq!(detector, "liveness/safety");
    }

    #[test]
    fn edge_flip_breaks_consistency() {
        let stg = cpn_stg::protocol::receiver();
        let plan = FaultPlan::new(13);
        let mut hits = 0;
        for trial in 0..5 {
            let (mutant, fault) = plan
                .mutate_stg(FaultClass::EdgeFlip, &stg, trial)
                .expect("receiver has flippable edges");
            let judged = judge_stg(&stg, &mutant, None);
            assert!(judged.is_accounted(), "missed {fault}");
            if matches!(judged, Detection::Detected { .. }) {
                hits += 1;
            }
        }
        assert!(hits > 0, "at least one flip must be flagged");
    }

    #[test]
    fn glitch_pulse_is_flagged() {
        let stg = cpn_stg::protocol::sender();
        let plan = FaultPlan::new(17);
        let (mutant, fault) = plan
            .mutate_stg(FaultClass::Glitch, &stg, 0)
            .expect("sender has signals");
        assert!(
            judge_stg(&stg, &mutant, None).is_accounted(),
            "missed {fault}"
        );
    }

    #[test]
    fn stuck_wire_deadlocks_the_expanded_system() {
        let composed = expanded_control_pair();
        let plan = FaultPlan::new(19);
        let (mutant, fault) = plan
            .mutate_stg(FaultClass::StuckWire, &composed, 0)
            .expect("handshake wires exist");
        let detection = judge_stg(&composed, &mutant, None);
        assert!(
            matches!(detection, Detection::Detected { .. }),
            "stuck wire must be detected, fault {fault}: {detection:?}"
        );
    }

    #[test]
    fn code_cover_rejected_by_antichain_validation() {
        let enc = cpn_cip::protocol::cmd_encoding();
        let wires = enc.wires().to_vec();
        let codes: Vec<BTreeSet<usize>> = (0..enc.value_count())
            .map(|v| {
                enc.code(v)
                    .unwrap()
                    .iter()
                    .map(|w| wires.iter().position(|x| x == w).unwrap())
                    .collect()
            })
            .collect();
        let plan = FaultPlan::new(23);
        for trial in 0..8 {
            let (mutated, fault) = plan
                .mutate_codes(FaultClass::CodeCover, &codes, trial)
                .expect("four values");
            assert!(
                detect_code_cover(&wires, &mutated).is_some(),
                "antichain validation must reject {fault}"
            );
        }
    }

    #[test]
    fn sensitivity_smoke_run_accounts_for_everything() {
        let report = detector_sensitivity(0xC1A0, 2);
        assert!(!report.rows.is_empty());
        assert!(report.all_accounted(), "unaccounted faults:\n{report}");
    }
}
