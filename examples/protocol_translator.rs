//! The paper's Section 6 design example end to end: the I²C-style
//! protocol-translation system (sender / translator / receiver), its
//! consistency verification, and the state-graph/logic view of each
//! block.
//!
//! Run with `cargo run --example protocol_translator`.

use cpn::petri::ReachabilityOptions;
use cpn::stg::protocol::{receiver, sender, translator, SENDER_COMMANDS};
use cpn::stg::{derive_logic, Signal, StateGraph};
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ReachabilityOptions::default();

    println!("=== Table 1(a): sender command translation ===");
    for (cmd, wa, wb) in SENDER_COMMANDS {
        println!("  {cmd}~  ->  {wa}+ {wb}+");
    }

    // Each block on its own (Figures 5-7).
    for (name, stg) in [
        ("sender (Fig 5)", sender()),
        ("translator (Fig 7)", translator()),
        ("receiver (Fig 6)", receiver()),
    ] {
        let rep = stg.classical_report(&opts)?;
        println!(
            "\n{name}: {} places, {} transitions | strongly-connected: {}, live: {}, safe: {}",
            stg.net().place_count(),
            stg.net().transition_count(),
            rep.strongly_connected,
            rep.live,
            rep.safe,
        );
    }

    // Consistent state assignment + logic for the receiver (smallest).
    let rx = receiver();
    let sg = StateGraph::build(&rx, &BTreeMap::new(), 1_000_000)?;
    println!(
        "\nreceiver state graph: {} states, consistent: {}",
        sg.state_count(),
        sg.is_consistent()
    );
    match derive_logic(&rx, &sg) {
        Ok(fns) => {
            println!("receiver next-state functions:");
            for f in &fns {
                println!(
                    "  {} : {} cubes, {} literals",
                    f.signal,
                    f.cover.len(),
                    f.literal_cost()
                );
            }
        }
        Err(e) => println!("receiver logic blocked: {e} (CSC refinement needed)"),
    }

    // The composed system (Figure 4): the Section 6 claim is that the
    // consistent blocks cooperate correctly.
    let system = sender()
        .compose(&translator())?
        .compose(&receiver())?
        .remove_dead(&opts)?;
    let rg = system.net().reachability(&opts)?;
    let analysis = system.net().analysis(&rg);
    println!(
        "\ncomposed system: {} places, {} transitions, {} states | safe: {}, deadlock-free: {}",
        system.net().place_count(),
        system.net().transition_count(),
        rg.state_count(),
        analysis.safe,
        analysis.deadlock_free,
    );

    // Pairwise consistency (receptiveness) of the composition.
    let report = sender().check_receptiveness(&translator(), &opts)?;
    println!("sender ↔ translator receptive: {}", report.is_receptive());
    let report = translator().check_receptiveness(&receiver(), &opts)?;
    println!("translator ↔ receiver receptive: {}", report.is_receptive());

    // Persist the models in the .cpn interchange format.
    let text = [
        cpn::format::write_stg("sender", &sender()),
        cpn::format::write_stg("translator", &translator()),
        cpn::format::write_stg("receiver", &receiver()),
    ]
    .join("\n");
    let reparsed = cpn::format::parse(&text)?;
    println!(
        "\nserialized round-trip: {} STGs, {} total lines of .cpn",
        reparsed.stgs.len(),
        text.lines().count()
    );
    let _ = Signal::new("demo");
    Ok(())
}
