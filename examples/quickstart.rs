//! Quickstart: build two small interface processes, compose them with
//! rendez-vous synchronization, hide the internal channel by net
//! contraction, and inspect the result — the whole Section 4 algebra in
//! thirty lines.
//!
//! Run with `cargo run --example quickstart`.

use cpn::core::{choice, hide_label, parallel, prefix};
use cpn::petri::{PetriNet, ReachabilityOptions};
use cpn::trace::Language;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A producer that works, then offers a rendez-vous on `sync`.
    let mut producer: PetriNet<&str> = PetriNet::new();
    let a = producer.add_place("ready");
    let b = producer.add_place("done");
    producer.add_transition([a], "work", [b])?;
    producer.add_transition([b], "sync", [a])?;
    producer.set_initial(a, 1);

    // A consumer that accepts the rendez-vous, then reports.
    let mut consumer: PetriNet<&str> = PetriNet::new();
    let c = consumer.add_place("idle");
    let d = consumer.add_place("got");
    consumer.add_transition([c], "sync", [d])?;
    consumer.add_transition([d], "report", [c])?;
    consumer.set_initial(c, 1);

    // Parallel composition fuses the `sync` transitions (Def 4.7).
    let composed = parallel(&producer, &consumer)?;
    println!("composed system:\n{composed}\n");

    // Hiding contracts the internal action away (Def 4.10) — no
    // relabeling to ε, the transition is gone.
    let system = hide_label(&composed, &"sync", 1_000)?;
    println!("after hiding `sync`:\n{system}\n");

    let lang = Language::from_net(&system, 4, 100_000)?;
    println!("traces up to depth 4:\n{lang}");
    assert!(lang.contains(&["work", "report", "work", "report"][..]));

    // The other operators: prefix and choice (Defs 4.3, 4.6).
    let init = prefix("boot", &system)?;
    let fallback = prefix("safe_mode", &cpn::core::nil())?;
    let either = choice(&init, &fallback)?;
    let lang = Language::from_net(&either, 3, 100_000)?;
    assert!(lang.contains(&["boot", "work", "report"][..]));
    assert!(lang.contains(&["safe_mode"][..]));
    println!(
        "\nwith boot/safe_mode choice: {} traces at depth 3",
        lang.len()
    );

    // Reachability analysis on the hidden system.
    let rg = system.reachability(&ReachabilityOptions::default())?;
    let analysis = system.analysis(&rg);
    println!(
        "\nreachable states: {}, safe: {}, live: {}",
        rg.state_count(),
        analysis.safe,
        analysis.live
    );
    Ok(())
}
