//! Structural analysis without state spaces: the "polynomial on the
//! net" toolbox Section 5.1 of the paper appeals to.
//!
//! * marked graphs — liveness via token-free cycles, per-place bounds
//!   via minimum cycle token counts;
//! * free-choice nets — Commoner's siphon/trap liveness condition;
//! * any net — P-semiflow boundedness certificates and Karp–Miller
//!   coverability.
//!
//! Run with `cargo run --example structural_analysis`.

use cpn::petri::invariant::covered_by_p_semiflows;
use cpn::petri::{
    commoner_live, mg_live_structural, mg_place_bounds, minimal_siphons, token_free_cycle,
    CoverabilityTree, PetriNet, ReachabilityOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A marked graph: fork/join with a feedback buffer of depth 2.
    let mut mg: PetriNet<&str> = PetriNet::new();
    let start = mg.add_place("start");
    let a = mg.add_place("a");
    let b = mg.add_place("b");
    let fb = mg.add_place("feedback");
    mg.add_transition([start], "fork", [a, b])?;
    mg.add_transition([a, b, fb], "join", [start, fb])?;
    mg.set_initial(start, 1);
    mg.set_initial(fb, 2);

    println!("marked graph:");
    println!("  live (no token-free cycle): {}", mg_live_structural(&mg)?);
    let bounds = mg_place_bounds(&mg)?;
    for (p, bound) in mg.place_ids().zip(&bounds) {
        println!("  bound of {:<9}: {:?}", mg.place(p).name(), bound);
    }
    // Compare with the exact analysis.
    let rg = mg.reachability(&ReachabilityOptions::default())?;
    println!(
        "  exact bound from reachability: {}",
        mg.analysis(&rg).bound
    );

    // 2. A free-choice net with a draining branch: Commoner catches it.
    let mut fc: PetriNet<&str> = PetriNet::new();
    let p = fc.add_place("p");
    let q = fc.add_place("q");
    let sink = fc.add_place("sink");
    fc.add_transition([p], "leak", [sink])?;
    fc.add_transition([p], "loop", [q])?;
    fc.add_transition([q], "back", [p])?;
    fc.add_transition([sink], "spin", [sink])?;
    fc.set_initial(p, 1);
    println!("\nfree-choice net with a draining branch:");
    println!("  commoner live: {}", commoner_live(&fc, 100_000)?);
    let siphons = minimal_siphons(&fc, 100_000)?;
    println!("  minimal siphons: {}", siphons.len());

    // 3. Boundedness certificates on an unbounded producer.
    let mut pump: PetriNet<&str> = PetriNet::new();
    let ctl = pump.add_place("ctl");
    let out = pump.add_place("out");
    pump.add_transition([ctl], "pump", [ctl, out])?;
    pump.set_initial(ctl, 1);
    println!("\nproducer net:");
    println!(
        "  covered by P-semiflows: {:?}",
        covered_by_p_semiflows(&pump, 10_000)
    );
    let tree =
        CoverabilityTree::build_bounded(&pump, &cpn::petri::Budget::states(10_000)).into_value();
    println!("  Karp–Miller: {:?}", tree.outcome());

    // 4. An unmarked cycle: the liveness witness is concrete.
    let mut dead_ring: PetriNet<&str> = PetriNet::new();
    let r1 = dead_ring.add_place("r1");
    let r2 = dead_ring.add_place("r2");
    dead_ring.add_transition([r1], "x", [r2])?;
    dead_ring.add_transition([r2], "y", [r1])?;
    println!("\nunmarked ring:");
    if let Some(cycle) = token_free_cycle(&dead_ring)? {
        let names: Vec<&str> = cycle.iter().map(|&p| dead_ring.place(p).name()).collect();
        println!("  token-free cycle through: {names:?} -> not live");
    }
    Ok(())
}
