//! Section 3: abstract channels and their automatic expansion.
//!
//! The same protocol-translation system as the signal-level example, but
//! specified the way the paper recommends — with `cmd!v` / `out!v`
//! rendez-vous events. The expansion generates the 4-phase wire protocol
//! (Table 1's pair encoding) mechanically, so the Figure 8 class of
//! inconsistencies cannot be written down at all.
//!
//! Run with `cargo run --example handshake_expansion`.

use cpn::cip::protocol::{protocol_cip, CMD_VALUES, OUT_VALUES};
use cpn::cip::{ChannelSpec, CipGraph, DataEncoding, HandshakeProtocol, Module};
use cpn::petri::ReachabilityOptions;
use cpn::stg::StgLabel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A minimal data channel first: one bit, dual-rail.
    let mut tx = Module::new("tx");
    let p = tx.add_place("p");
    let q = tx.add_place("q");
    tx.add_send([p], "bit", Some(1), [q])?;
    tx.add_send([q], "bit", Some(0), [p])?;
    tx.set_initial(p, 1);

    let mut rx = Module::new("rx");
    let r = rx.add_place("r");
    rx.add_recv([r], "bit", [r])?;
    rx.set_initial(r, 1);

    let mut cip = CipGraph::new();
    let tx = cip.add_module(tx);
    let rx = cip.add_module(rx);
    cip.add_channel_edge(
        tx,
        rx,
        ChannelSpec::data("bit", DataEncoding::dual_rail("bit", 1)),
    )?;
    cip.validate()?;

    let sys = cip.expand(HandshakeProtocol::FourPhase)?;
    println!("dual-rail bit channel, expanded modules:");
    for (name, stg) in sys.names().iter().zip(sys.stgs()) {
        println!(
            "  {name}: {} places, {} transitions, wires: {:?}",
            stg.net().place_count(),
            stg.net().transition_count(),
            stg.signals().keys().map(|s| s.name()).collect::<Vec<_>>()
        );
    }
    let composed = sys.compose_all()?;
    let lang = composed.language(2, 100_000)?;
    println!(
        "  first trace step options: {:?}",
        lang.iter()
            .filter(|t| t.len() == 1)
            .map(|t| t[0].to_string())
            .collect::<Vec<_>>()
    );
    // Sending `1` raises the true rail, never the false rail.
    assert!(lang.contains(&[StgLabel::signal("bit0_t", cpn::stg::Edge::Rise)][..]));

    // The full Section 6 system at the CIP level.
    println!("\nprotocol-translator system as a CIP (Figure 4):");
    println!("  cmd values: {CMD_VALUES:?}");
    println!("  out values: {OUT_VALUES:?}");
    let sys = protocol_cip()?.expand(HandshakeProtocol::FourPhase)?;
    for (name, stg) in sys.names().iter().zip(sys.stgs()) {
        println!(
            "  expanded {name}: {} places, {} transitions",
            stg.net().place_count(),
            stg.net().transition_count()
        );
    }
    let opts = ReachabilityOptions::default();
    let composed = sys.compose_all()?.remove_dead(&opts)?;
    let rg = composed.net().reachability(&opts)?;
    let analysis = composed.net().analysis(&rg);
    println!(
        "  composed: {} states, safe: {}, deadlock-free: {}",
        rg.state_count(),
        analysis.safe,
        analysis.deadlock_free
    );

    // Rendez-vous correctness is by construction (Section 3): every
    // module is receptive against the rest of the system.
    let reports = sys.verify_receptiveness(&opts)?;
    for (name, rep) in &reports {
        println!("  {name}: receptive = {}", rep.is_receptive());
        assert!(rep.is_receptive());
    }
    Ok(())
}
