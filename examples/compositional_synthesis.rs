//! Figure 9: deriving simplified blocks by compositional synthesis.
//!
//! If the sender never issues `rec` (Figure 9a), the translator does not
//! need its `rec`/DATA/STROBE machinery, and the receiver never sees a
//! `mute` command. Instead of re-specifying the blocks by hand, the
//! paper derives them: compose with the known environment, remove the
//! dead cross-product transitions, project back onto the block's own
//! signals (`N̄_tr = project(N_send ‖ N_tr, A_tr)`), and clean up.
//!
//! Run with `cargo run --example compositional_synthesis`.

use cpn::petri::ReachabilityOptions;
use cpn::stg::protocol::{receiver, sender_restricted, translator};
use cpn::stg::Signal;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ReachabilityOptions::default();

    let tr = translator();
    println!(
        "translator (Fig 7): {} places, {} transitions, signals: {}",
        tr.net().place_count(),
        tr.net().transition_count(),
        tr.signals().len()
    );

    // Figure 9(b): reduce against the restricted sender.
    let tr_reduced = tr.reduce_against(&sender_restricted(), &opts, 10_000)?;
    println!(
        "simplified translator (Fig 9b): {} places, {} transitions, signals: {}",
        tr_reduced.net().place_count(),
        tr_reduced.net().transition_count(),
        tr_reduced.signals().len()
    );
    assert!(!tr_reduced.signals().contains_key(&Signal::new("DATA")));
    assert!(!tr_reduced.signals().contains_key(&Signal::new("STROBE")));
    println!("  -> the DATA/STROBE sampling is gone, as the paper derives");

    // Theorem 5.1: the reduced behaviour is contained in the original's.
    let reduced_lang = tr_reduced.language(5, 1_000_000)?;
    let orig_lang = tr.language(7, 1_000_000)?;
    let contained = reduced_lang.subset_up_to(&orig_lang.project(&tr_reduced.net().alphabet()), 5);
    println!("  -> trace containment (Thm 5.1) up to depth 5: {contained}");

    // Figure 9(c): the receiver against the reduced translator. The
    // translator's internals form hidden cycles outside the contraction
    // class, so the derivation prunes dead transitions in place.
    let rx = receiver();
    let rx_reduced = rx.prune_against(&tr_reduced, &ReachabilityOptions::default())?;
    println!(
        "\nreceiver (Fig 6): {} transitions; simplified receiver (Fig 9c): {} transitions",
        rx.net().transition_count(),
        rx_reduced.net().transition_count()
    );
    assert!(!rx_reduced.signals().contains_key(&Signal::new("mute")));
    println!("  -> the mute~ branch is gone: the reduced translator never sends it");

    // What synthesis gains: compare the state graphs.
    let sg_full = rx.net().reachability(&opts)?;
    let sg_red = rx_reduced.net().reachability(&opts)?;
    println!(
        "\nstate-space: receiver {} states -> simplified {} states",
        sg_full.state_count(),
        sg_red.state_count()
    );
    Ok(())
}
