//! Figure 8: detecting an inconsistent specification.
//!
//! The broken sender raises and lowers its command wires without waiting
//! for the translator's acknowledge. Each block is perfectly fine in
//! isolation — the inconsistency only shows in the *composition*, which
//! is the paper's core motivation. Three detectors agree:
//!
//! 1. the exhaustive receptiveness check (Prop 5.5/5.6);
//! 2. the dynamic monitor (random token game);
//! 3. and for marked-graph compositions, the polynomial structural check
//!    of Theorem 5.7 (demonstrated here on a handshake fragment).
//!
//! Run with `cargo run --example inconsistent_sender`.

use cpn::core::check_receptiveness_structural_mg;
use cpn::petri::{PetriNet, ReachabilityOptions};
use cpn::sim::monitor_composition;
use cpn::stg::protocol::{sender, sender_inconsistent, translator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ReachabilityOptions::default();
    let tr = translator();

    // Both senders are well-formed on their own.
    for (name, s) in [
        ("consistent", sender()),
        ("inconsistent", sender_inconsistent()),
    ] {
        let rep = s.classical_report(&opts)?;
        println!(
            "{name} sender alone: live={}, safe={} (no local red flags)",
            rep.live, rep.safe
        );
    }

    // 1. Static, exhaustive (Prop 5.5).
    let good = sender().check_receptiveness(&tr, &opts)?;
    let bad = sender_inconsistent().check_receptiveness(&tr, &opts)?;
    println!("\nexhaustive check:");
    println!(
        "  consistent sender ‖ translator  : receptive = {}",
        good.is_receptive()
    );
    println!(
        "  inconsistent sender ‖ translator: receptive = {}",
        bad.is_receptive()
    );
    for f in bad.failures.iter().take(4) {
        println!(
            "    failure: {} produced by the {} side",
            f.label, f.producer
        );
    }

    // 2. Dynamic monitoring (random walk).
    let s = sender_inconsistent();
    let obs = monitor_composition(
        s.net(),
        tr.net(),
        &s.output_labels(),
        &tr.output_labels(),
        2024,
        100_000,
    );
    match obs {
        Some(f) => println!(
            "\ndynamic monitor: failure on {} after {} random steps",
            f.label, f.steps
        ),
        None => println!("\ndynamic monitor: no failure observed (unlucky walk)"),
    }

    // 3. Structural marked-graph check (Thm 5.7) on a handshake fragment:
    // a producer that can emit `req` twice against a strict alternator.
    let mut fast: PetriNet<&str> = PetriNet::new();
    let f0 = fast.add_place("f0");
    let f1 = fast.add_place("f1");
    fast.add_transition([f0], "req", [f1])?;
    fast.add_transition([f1], "ack", [f0])?;
    fast.set_initial(f0, 1);
    let mut slow = fast.clone();
    // Phase-shift the peer: it expects `ack` first.
    slow.set_initial(cpn::petri::PlaceId::from_index(0), 0);
    slow.set_initial(cpn::petri::PlaceId::from_index(1), 1);

    let verdict =
        check_receptiveness_structural_mg(&fast, &slow, &["req"].into(), &["ack"].into())?;
    println!(
        "\nstructural (Thm 5.7) on the phase-shifted handshake: receptive = {} \
         (no state space was built)",
        verdict.is_receptive()
    );
    Ok(())
}
