//! The arbiter: why the algebra must handle **general** Petri nets.
//!
//! Section 5.1 of the paper: marked graphs and free-choice nets make
//! many checks polynomial, "but important systems like arbiters cannot
//! be modeled in these subclasses". This example builds a two-user
//! mutual-exclusion arbiter (a genuine non-free-choice conflict),
//! composes it with two clients, and certifies mutual exclusion both
//! behaviourally (reachability) and structurally (a P-semiflow).
//!
//! Run with `cargo run --example arbiter`.

use cpn::petri::{semiflows_p, ReachabilityOptions};
use cpn::stg::arbiter::{arbiter, client, critical_section_places};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ReachabilityOptions::default();
    let a = arbiter();

    let rep = a.net().structural();
    println!(
        "arbiter: {} places, {} transitions — net class: {}",
        a.net().place_count(),
        a.net().transition_count(),
        rep.class
    );
    println!(
        "free-choice: {}, marked graph: {} (the paper's point: neither)",
        rep.is_free_choice, rep.is_marked_graph
    );

    let classical = a.classical_report(&opts)?;
    println!(
        "strongly-connected: {}, live: {}, safe: {}",
        classical.strongly_connected, classical.live, classical.safe
    );

    // Structural certificate: the critical-section invariant is a
    // P-semiflow — found without building any state space.
    let cs = critical_section_places(&a);
    let flows = semiflows_p(a.net(), 100_000).expect("semiflow budget");
    let invariant = flows.iter().find(|f| {
        let support = f.support();
        cs.iter().all(|p| support.contains(&p.index())) && support.len() == cs.len()
    });
    match invariant {
        Some(f) => {
            let names: Vec<&str> = f
                .support()
                .iter()
                .map(|&i| a.net().place(cpn::petri::PlaceId::from_index(i)).name())
                .collect();
            println!("mutual-exclusion semiflow: {} = 1", names.join(" + "));
        }
        None => println!("(semiflow not found — unexpected)"),
    }

    // Behavioural certificate on the full system with two clients.
    let env = client(1).compose(&client(2))?;
    let receptive = a.check_receptiveness(&env, &opts)?;
    println!("arbiter ↔ clients receptive: {}", receptive.is_receptive());

    let system = a.compose(&env)?;
    let rg = system.net().reachability(&opts)?;
    let granted: Vec<_> = system
        .net()
        .places()
        .filter(|(_, p)| p.name().contains("granted") || p.name().contains("done"))
        .map(|(id, _)| id)
        .collect();
    let violations = rg
        .state_ids()
        .filter(|&s| {
            granted
                .iter()
                .map(|&p| rg.marking(s).tokens(p))
                .sum::<u32>()
                > 1
        })
        .count();
    println!(
        "system: {} states, mutual-exclusion violations: {violations}",
        rg.state_count()
    );
    Ok(())
}
